/// Ablation: surrogate oracle vs genuine training. Trains a small set of
/// architecture corners on the synthetic dataset (real gradient descent,
/// 2-fold CV) and compares their ranking/trends against the oracle used
/// for the full sweep. This is the §5 "Duration of the NNI Experiments"
/// observation too: we time real trials and extrapolate to the paper's
/// 9h20m / 29h3m per input combination.

#include "bench_common.hpp"
#include "dcnas/common/stats.hpp"
#include "dcnas/nas/evaluator.hpp"

#include <chrono>

using namespace dcnas;

namespace {

std::vector<nas::TrialConfig> corner_configs() {
  // Four informative corners: winner, baseline, no-pool winner, wide-k7.
  nas::TrialConfig winner = nas::TrialConfig::baseline(5, 8);
  winner.initial_output_feature = 32;
  winner.kernel_size = 3;
  winner.padding = 1;
  nas::TrialConfig nopool = winner;
  nopool.pool_choice = 1;
  nas::TrialConfig wide = nas::TrialConfig::baseline(5, 8);
  return {winner, nopool, wide, nas::TrialConfig::baseline(5, 16)};
}

void BM_RealTrainingTrial(benchmark::State& state) {
  geodata::DatasetOptions d;
  d.scale = 1.0 / 200.0;
  d.chip_size = 16;
  d.scene_size = 128;
  d.channels = 5;
  const auto ds5 = geodata::build_dataset(d);
  d.channels = 7;
  const auto ds7 = geodata::build_dataset(d);
  nas::TrainingEvaluator::Options o;
  o.folds = 2;
  o.epochs = 2;
  nas::TrainingEvaluator eval(ds5, ds7, o);
  nas::TrialConfig cfg = nas::TrialConfig::baseline(5, 8);
  cfg.initial_output_feature = 32;
  cfg.kernel_size = 3;
  cfg.padding = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(cfg).mean_accuracy);
  }
  state.SetLabel("2-fold x 2-epoch trial, 60-chip dataset");
}
BENCHMARK(BM_RealTrainingTrial)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    std::printf("Ablation: calibrated oracle vs real training\n\n");
    geodata::DatasetOptions d;
    d.scale = 1.0 / 160.0;
    d.chip_size = 16;
    d.scene_size = 128;
    d.channels = 5;
    const auto ds5 = geodata::build_dataset(d);
    d.channels = 7;
    const auto ds7 = geodata::build_dataset(d);
    std::printf("dataset: %lld chips (1/160 of Table 1 scale)\n\n",
                static_cast<long long>(ds5.size()));

    nas::TrainingEvaluator::Options topt;
    topt.folds = 2;
    topt.epochs = 4;
    topt.lr = 0.02;
    nas::TrainingEvaluator trainer(ds5, ds7, topt);
    nas::OracleEvaluator oracle;

    std::vector<double> real, surrogate, seconds;
    std::printf("  %-52s %10s %10s %8s\n", "config", "real(%)", "oracle(%)",
                "sec");
    for (const auto& cfg : corner_configs()) {
      const auto t0 = std::chrono::steady_clock::now();
      const double r = trainer.evaluate(cfg).mean_accuracy;
      const double sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double o = oracle.evaluate(cfg).mean_accuracy;
      real.push_back(r);
      surrogate.push_back(o);
      seconds.push_back(sec);
      std::printf("  %-52s %10.2f %10.2f %8.1f\n", cfg.to_string().c_str(), r,
                  o, sec);
    }
    std::printf("\nspearman rank agreement (real vs oracle, 4 corners): "
                "%.2f\n", spearman(real, surrogate));
    const double mean_sec = mean(seconds);
    // The paper: 288 trials x 5 folds x 5 epochs on an A100 took 9h20m
    // (5ch/b8). Our per-trial cost at this scale extrapolates as:
    std::printf("mean real-trial cost here: %.1f s -> 288 trials ~ %.1f h on "
                "this host at 1/100\ndata scale and 6 epochs (the paper "
                "needed 9h20m-29h per combination on an A100\nat full scale "
                "— the motivation for the oracle substitution).\n",
                mean_sec, mean_sec * 288.0 / 3600.0);
  });
}
