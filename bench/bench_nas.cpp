/// Search-loop throughput: the parallel TrialScheduler vs the serial
/// Experiment::run_all reference, plus the determinism parity hash and the
/// median-stop pruning savings. Writes BENCH_nas.json.
///
/// Two load shapes, because "NAS search loop" stresses two different
/// resources:
///   - dispatch-bound: a deterministic evaluator whose folds block (sleep)
///     like the paper's NNI harness waiting on remote trials. Fold tasks
///     overlap regardless of core count, so this isolates scheduler
///     overhead; speedup should track the thread count.
///   - compute-bound: genuine k-fold training at reduced scale. Speedup is
///     bounded by physical cores — the honest number for local sweeps.
///
/// The parity hash is the FNV-1a of the scheduled run's trials CSV and must
/// equal the serial hash (scheduler.hpp's determinism contract); CI fails
/// the nas-bench job when parity_ok is false.

#include <chrono>
#include <map>
#include <thread>

#include "bench_common.hpp"
#include "dcnas/common/stats.hpp"
#include "dcnas/common/strings.hpp"
#include "dcnas/core/pipeline.hpp"
#include "dcnas/nas/scheduler.hpp"

using namespace dcnas;

namespace {

constexpr int kSleepFolds = 5;
constexpr double kSleepMsPerFold = 2.0;

/// Deterministic stand-in for a remote trial: accuracy is a pure hash of
/// (lattice_key, fold), cost is a fixed block per fold.
class SleepEvaluator : public nas::Evaluator {
 public:
  nas::EvalResult evaluate(const nas::TrialConfig& config) override {
    nas::verify_candidate(config);
    nas::EvalResult result;
    for (int f = 0; f < kSleepFolds; ++f) {
      result.fold_accuracies.push_back(evaluate_fold(config, f));
    }
    result.mean_accuracy = mean(result.fold_accuracies);
    return result;
  }

  int fold_count() const override { return kSleepFolds; }

  double evaluate_fold(const nas::TrialConfig& config, int fold) override {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        kSleepMsPerFold));
    const std::uint64_t h =
        fnv1a64(config.lattice_key() + "#" + std::to_string(fold));
    return 80.0 + static_cast<double>(h % 1000) / 100.0;  // 80.00..89.99
  }

  std::string name() const override { return "sleep"; }
};

std::vector<nas::TrialConfig> lattice_sample(std::size_t n) {
  auto configs = nas::SearchSpace::enumerate_all();
  Rng rng(11);
  rng.shuffle(configs);
  configs.resize(std::min(n, configs.size()));
  return configs;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ModeResult {
  double serial_s = 0.0;
  double parallel_s = 0.0;
  double speedup = 0.0;
  std::uint64_t serial_hash = 0;
  std::uint64_t parallel_hash = 0;
  bool parity_ok = false;
  std::size_t trials = 0;
  std::size_t threads = 0;
};

ModeResult run_mode(nas::Evaluator& evaluator,
                    const std::vector<nas::TrialConfig>& configs,
                    std::size_t threads) {
  const nas::Experiment experiment(evaluator, latency::NnMeter::shared());
  ModeResult r;
  r.trials = configs.size();

  auto t0 = std::chrono::steady_clock::now();
  const nas::TrialDatabase serial_db = experiment.run_all(configs);
  r.serial_s = seconds_since(t0);
  r.serial_hash = fnv1a64(serial_db.to_csv().to_string());

  nas::SchedulerOptions opt;
  opt.threads = threads;
  nas::TrialScheduler scheduler(experiment, opt);
  r.threads = scheduler.threads();
  t0 = std::chrono::steady_clock::now();
  const nas::TrialDatabase parallel_db = scheduler.run(configs);
  r.parallel_s = seconds_since(t0);
  r.parallel_hash = fnv1a64(parallel_db.to_csv().to_string());

  r.speedup = r.parallel_s > 0.0 ? r.serial_s / r.parallel_s : 0.0;
  r.parity_ok = r.serial_hash == r.parallel_hash;
  return r;
}

struct PruneResult {
  std::size_t total_trials = 0;
  std::size_t pruned_trials = 0;
  std::size_t folds_evaluated = 0;
  std::size_t folds_skipped = 0;
  double fold_savings_pct = 0.0;
  bool survivors_match_serial = false;
};

/// Pruning must only *remove* trials, never change a surviving trial's
/// recorded folds: every record the pruned run keeps is compared against
/// the serial record for the same lattice key.
PruneResult run_prune_mode(nas::Evaluator& evaluator,
                           const std::vector<nas::TrialConfig>& configs,
                           std::size_t threads) {
  const nas::Experiment experiment(evaluator, latency::NnMeter::shared());
  const nas::TrialDatabase serial_db = experiment.run_all(configs);

  nas::SchedulerOptions opt;
  opt.threads = threads;
  opt.pruner.enabled = true;
  opt.pruner.warmup_trials = 5;
  opt.pruner.min_folds = 2;
  nas::TrialScheduler scheduler(experiment, opt);
  const nas::TrialDatabase pruned_db = scheduler.run(configs);

  PruneResult r;
  r.total_trials = configs.size();
  r.pruned_trials = scheduler.stats().pruned;
  r.folds_evaluated = scheduler.stats().folds_evaluated;
  r.folds_skipped = scheduler.stats().folds_skipped;
  const double total_folds =
      static_cast<double>(r.folds_evaluated + r.folds_skipped);
  r.fold_savings_pct =
      total_folds > 0.0
          ? 100.0 * static_cast<double>(r.folds_skipped) / total_folds
          : 0.0;

  r.survivors_match_serial = true;
  std::map<std::string, const nas::TrialRecord*> serial_by_key;
  for (const auto& rec : serial_db.records()) {
    serial_by_key[rec.config.lattice_key()] = &rec;
  }
  for (const auto& rec : pruned_db.records()) {
    const auto it = serial_by_key.find(rec.config.lattice_key());
    if (it == serial_by_key.end() ||
        rec.fold_accuracies != it->second->fold_accuracies ||
        rec.accuracy != it->second->accuracy) {
      r.survivors_match_serial = false;
      break;
    }
  }
  return r;
}

ModeResult g_dispatch;
ModeResult g_compute;
PruneResult g_prune;
double g_resume_saved_pct = 0.0;

/// Pure dispatch overhead: oracle folds cost microseconds, so this measures
/// the scheduler's per-trial admission + fan-out + merge cost.
void BM_SchedulerDispatch(benchmark::State& state) {
  nas::OracleEvaluator oracle;
  const nas::Experiment experiment(oracle, latency::NnMeter::shared());
  nas::SchedulerOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  nas::TrialScheduler scheduler(experiment, opt);
  const auto configs = lattice_sample(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.run(configs).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_SchedulerDispatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void write_bench_nas_json() {
  std::FILE* f = std::fopen("BENCH_nas.json", "w");
  if (!f) {
    std::printf("WARNING: cannot write BENCH_nas.json\n");
    return;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", cores);
  std::fprintf(f,
               "  \"dispatch_bound\": {\"trials\": %zu, \"threads\": %zu, "
               "\"serial_s\": %.4f, \"parallel_s\": %.4f, \"speedup\": %.2f, "
               "\"serial_hash\": \"%016llx\", \"parallel_hash\": \"%016llx\", "
               "\"parity_ok\": %s},\n",
               g_dispatch.trials, g_dispatch.threads, g_dispatch.serial_s,
               g_dispatch.parallel_s, g_dispatch.speedup,
               static_cast<unsigned long long>(g_dispatch.serial_hash),
               static_cast<unsigned long long>(g_dispatch.parallel_hash),
               g_dispatch.parity_ok ? "true" : "false");
  std::fprintf(f,
               "  \"compute_bound\": {\"trials\": %zu, \"threads\": %zu, "
               "\"serial_s\": %.4f, \"parallel_s\": %.4f, \"speedup\": %.2f, "
               "\"serial_hash\": \"%016llx\", \"parallel_hash\": \"%016llx\", "
               "\"parity_ok\": %s},\n",
               g_compute.trials, g_compute.threads, g_compute.serial_s,
               g_compute.parallel_s, g_compute.speedup,
               static_cast<unsigned long long>(g_compute.serial_hash),
               static_cast<unsigned long long>(g_compute.parallel_hash),
               g_compute.parity_ok ? "true" : "false");
  std::fprintf(f,
               "  \"median_stop\": {\"trials\": %zu, \"pruned\": %zu, "
               "\"folds_evaluated\": %zu, \"folds_skipped\": %zu, "
               "\"fold_savings_pct\": %.1f, \"survivors_match_serial\": "
               "%s},\n",
               g_prune.total_trials, g_prune.pruned_trials,
               g_prune.folds_evaluated, g_prune.folds_skipped,
               g_prune.fold_savings_pct,
               g_prune.survivors_match_serial ? "true" : "false");
  std::fprintf(f, "  \"resume_saved_pct\": %.1f,\n", g_resume_saved_pct);
  // Headline numbers the CI gate greps for: the dispatch-bound speedup is
  // thread-count-limited (not core-limited), so it is the stable
  // scheduler-throughput signal across runner sizes.
  std::fprintf(f, "  \"speedup\": %.2f,\n", g_dispatch.speedup);
  std::fprintf(f, "  \"parity_ok\": %s\n",
               g_dispatch.parity_ok && g_compute.parity_ok &&
                       g_prune.survivors_match_serial
                   ? "true"
                   : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_nas.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = dcnas::bench::run(argc, argv, [] {
    (void)latency::NnMeter::shared();  // train predictors outside the timers
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("NAS search-loop throughput (host: %u cores)\n\n", cores);

    {
      SleepEvaluator sleeper;
      const auto configs = lattice_sample(64);
      g_dispatch = run_mode(sleeper, configs, 8);
      std::printf("dispatch-bound (%.0fms x %d folds x %zu trials): serial "
                  "%.2fs, %zu threads %.2fs -> %.2fx, parity %s\n",
                  kSleepMsPerFold, kSleepFolds, g_dispatch.trials,
                  g_dispatch.serial_s, g_dispatch.threads,
                  g_dispatch.parallel_s, g_dispatch.speedup,
                  g_dispatch.parity_ok ? "OK" : "MISMATCH");
    }

    {
      geodata::DatasetOptions ds;
      ds.scale = 1.0 / 256.0;
      ds.chip_size = 24;
      ds.scene_size = 160;
      ds.seed = 2023;
      ds.channels = 5;
      const auto dataset5 = geodata::build_dataset(ds);
      ds.channels = 7;
      const auto dataset7 = geodata::build_dataset(ds);
      nas::TrainingEvaluator::Options topt;
      topt.folds = 3;
      topt.epochs = 2;
      nas::TrainingEvaluator trainer(dataset5, dataset7, topt);
      g_compute = run_mode(trainer, lattice_sample(6), 0);
      std::printf("compute-bound (3-fold training x %zu trials): serial "
                  "%.2fs, %zu threads %.2fs -> %.2fx, parity %s\n",
                  g_compute.trials, g_compute.serial_s, g_compute.threads,
                  g_compute.parallel_s, g_compute.speedup,
                  g_compute.parity_ok ? "OK" : "MISMATCH");
    }

    {
      nas::OracleEvaluator oracle;
      g_prune = run_prune_mode(oracle, lattice_sample(96), 4);
      std::printf("median-stop: %zu/%zu trials pruned, %.1f%% of folds "
                  "skipped, survivors %s serial\n",
                  g_prune.pruned_trials, g_prune.total_trials,
                  g_prune.fold_savings_pct,
                  g_prune.survivors_match_serial ? "match" : "DIVERGE from");
    }

    {
      // Resume: journal half the trials, then re-run the full list.
      SleepEvaluator sleeper;
      const nas::Experiment experiment(sleeper, latency::NnMeter::shared());
      const auto configs = lattice_sample(32);
      const std::string journal = "bench_nas_journal.dcj";
      std::remove(journal.c_str());
      nas::SchedulerOptions opt;
      opt.threads = 8;
      opt.journal_path = journal;
      opt.fsync_journal = false;
      {
        nas::TrialScheduler warm(experiment, opt);
        (void)warm.run(std::vector<nas::TrialConfig>(
            configs.begin(), configs.begin() + 16));
      }
      nas::TrialScheduler resume(experiment, opt);
      const auto t0 = std::chrono::steady_clock::now();
      (void)resume.run(configs);
      const double resumed_s = seconds_since(t0);
      g_resume_saved_pct =
          100.0 * static_cast<double>(resume.stats().resumed) /
          static_cast<double>(configs.size());
      std::printf("resume: %zu/%zu trials served from the journal "
                  "(%.2fs for the rest)\n",
                  resume.stats().resumed, configs.size(), resumed_s);
      std::remove(journal.c_str());
    }
  });
  if (rc == 0) write_bench_nas_json();
  return rc;
}
