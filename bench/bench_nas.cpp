/// Search-loop throughput: the parallel TrialScheduler vs the serial
/// Experiment::run_all reference, plus the determinism parity hash and the
/// median-stop pruning savings. Writes BENCH_nas.json.
///
/// Two load shapes, because "NAS search loop" stresses two different
/// resources:
///   - dispatch-bound: a deterministic evaluator whose folds block (sleep)
///     like the paper's NNI harness waiting on remote trials. Fold tasks
///     overlap regardless of core count, so this isolates scheduler
///     overhead; speedup should track the thread count.
///   - compute-bound: genuine k-fold training at reduced scale. Speedup is
///     bounded by physical cores — the honest number for local sweeps.
///
/// The parity hash is the FNV-1a of the scheduled run's trials CSV and must
/// equal the serial hash (scheduler.hpp's determinism contract); CI fails
/// the nas-bench job when parity_ok is false.

#include <chrono>
#include <filesystem>
#include <map>
#include <thread>

#include "bench_common.hpp"
#include "dcnas/common/stats.hpp"
#include "dcnas/common/strings.hpp"
#include "dcnas/core/pipeline.hpp"
#include "dcnas/nas/scheduler.hpp"
#include "dcnas/nas/store/multiproc.hpp"
#include "dcnas/nas/store/trial_store.hpp"

using namespace dcnas;

namespace {

constexpr int kSleepFolds = 5;
constexpr double kSleepMsPerFold = 2.0;

/// Deterministic stand-in for a remote trial: accuracy is a pure hash of
/// (lattice_key, fold), cost is a fixed block per fold.
class SleepEvaluator : public nas::Evaluator {
 public:
  nas::EvalResult evaluate(const nas::TrialConfig& config) override {
    nas::verify_candidate(config);
    nas::EvalResult result;
    for (int f = 0; f < kSleepFolds; ++f) {
      result.fold_accuracies.push_back(evaluate_fold(config, f));
    }
    result.mean_accuracy = mean(result.fold_accuracies);
    return result;
  }

  int fold_count() const override { return kSleepFolds; }

  double evaluate_fold(const nas::TrialConfig& config, int fold) override {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        kSleepMsPerFold));
    const std::uint64_t h =
        fnv1a64(config.lattice_key() + "#" + std::to_string(fold));
    return 80.0 + static_cast<double>(h % 1000) / 100.0;  // 80.00..89.99
  }

  std::string name() const override { return "sleep"; }
};

std::vector<nas::TrialConfig> lattice_sample(std::size_t n) {
  auto configs = nas::SearchSpace::enumerate_all();
  Rng rng(11);
  rng.shuffle(configs);
  configs.resize(std::min(n, configs.size()));
  return configs;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ModeResult {
  double serial_s = 0.0;
  double parallel_s = 0.0;
  double speedup = 0.0;
  std::uint64_t serial_hash = 0;
  std::uint64_t parallel_hash = 0;
  bool parity_ok = false;
  std::size_t trials = 0;
  std::size_t threads = 0;
};

ModeResult run_mode(nas::Evaluator& evaluator,
                    const std::vector<nas::TrialConfig>& configs,
                    std::size_t threads) {
  const nas::Experiment experiment(evaluator, latency::NnMeter::shared());
  ModeResult r;
  r.trials = configs.size();

  auto t0 = std::chrono::steady_clock::now();
  const nas::TrialDatabase serial_db = experiment.run_all(configs);
  r.serial_s = seconds_since(t0);
  r.serial_hash = fnv1a64(serial_db.to_csv().to_string());

  nas::SchedulerOptions opt;
  opt.threads = threads;
  nas::TrialScheduler scheduler(experiment, opt);
  r.threads = scheduler.threads();
  t0 = std::chrono::steady_clock::now();
  const nas::TrialDatabase parallel_db = scheduler.run(configs);
  r.parallel_s = seconds_since(t0);
  r.parallel_hash = fnv1a64(parallel_db.to_csv().to_string());

  r.speedup = r.parallel_s > 0.0 ? r.serial_s / r.parallel_s : 0.0;
  r.parity_ok = r.serial_hash == r.parallel_hash;
  return r;
}

struct PruneResult {
  std::size_t threads = 0;
  std::size_t total_trials = 0;
  std::size_t pruned_trials = 0;
  std::size_t folds_evaluated = 0;
  std::size_t folds_skipped = 0;
  double fold_savings_pct = 0.0;
  bool survivors_match_serial = false;
};

/// Pruning must only *remove* trials, never change a surviving trial's
/// recorded folds: every record the pruned run keeps is compared against
/// the serial record for the same lattice key.
PruneResult run_prune_mode(nas::Evaluator& evaluator,
                           const std::vector<nas::TrialConfig>& configs,
                           std::size_t threads) {
  const nas::Experiment experiment(evaluator, latency::NnMeter::shared());
  const nas::TrialDatabase serial_db = experiment.run_all(configs);

  nas::SchedulerOptions opt;
  opt.threads = threads;
  opt.pruner.enabled = true;
  opt.pruner.warmup_trials = 5;
  opt.pruner.min_folds = 2;
  nas::TrialScheduler scheduler(experiment, opt);
  const nas::TrialDatabase pruned_db = scheduler.run(configs);

  PruneResult r;
  r.threads = scheduler.threads();
  r.total_trials = configs.size();
  r.pruned_trials = scheduler.stats().pruned;
  r.folds_evaluated = scheduler.stats().folds_evaluated;
  r.folds_skipped = scheduler.stats().folds_skipped;
  const double total_folds =
      static_cast<double>(r.folds_evaluated + r.folds_skipped);
  r.fold_savings_pct =
      total_folds > 0.0
          ? 100.0 * static_cast<double>(r.folds_skipped) / total_folds
          : 0.0;

  r.survivors_match_serial = true;
  std::map<std::string, const nas::TrialRecord*> serial_by_key;
  for (const auto& rec : serial_db.records()) {
    serial_by_key[rec.config.lattice_key()] = &rec;
  }
  for (const auto& rec : pruned_db.records()) {
    const auto it = serial_by_key.find(rec.config.lattice_key());
    if (it == serial_by_key.end() ||
        rec.fold_accuracies != it->second->fold_accuracies ||
        rec.accuracy != it->second->accuracy) {
      r.survivors_match_serial = false;
      break;
    }
  }
  return r;
}

struct StoreResult {
  // Single-process store commit/replay throughput.
  std::size_t append_records = 0;
  double append_s = 0.0;
  double append_per_s = 0.0;
  double replay_s = 0.0;
  double replay_per_s = 0.0;
  // Multi-process wide-lattice sweep vs the serial reference.
  std::int64_t lattice_points = 0;  ///< raw wide-lattice size
  std::size_t trials = 0;           ///< buildable trials actually swept
  int workers = 0;
  std::size_t worker_threads = 0;
  double serial_s = 0.0;
  double multiproc_s = 0.0;
  double speedup = 0.0;
  std::uint64_t serial_hash = 0;
  std::uint64_t store_hash = 0;
  bool hash_ok = false;
  bool pareto_ok = false;
};

/// Store throughput + the tentpole parity claim: a 2-process sweep of the
/// full wide lattice, replayed from the store in lattice order, must hash
/// byte-identically to the serial sweep and carry the identical Pareto
/// front. fsync is off in both paths (crash-safety is covered by tests;
/// this measures the mmap/locking machinery).
StoreResult run_store_mode(const std::string& dir) {
  namespace fs = std::filesystem;
  StoreResult r;
  fs::create_directories(dir);  // TrialStore mkdirs only the leaf
  nas::OracleEvaluator oracle;
  const nas::Experiment experiment(oracle, latency::NnMeter::shared());

  // Append throughput: one record per paper-lattice config.
  {
    const auto configs = nas::SearchSpace::enumerate_all();
    std::vector<nas::JournalEntry> entries;
    entries.reserve(configs.size());
    for (const auto& c : configs) {
      nas::JournalEntry e;
      e.record = experiment.run_trial(c);
      for (std::size_t f = 0; f < e.record.fold_accuracies.size(); ++f) {
        e.fold_indices.push_back(static_cast<int>(f));
      }
      entries.push_back(std::move(e));
    }
    const std::string append_dir = dir + "/append";
    fs::remove_all(append_dir);
    nas::TrialStoreOptions sopt;
    sopt.fsync_each = false;
    nas::TrialStore store(append_dir, sopt);
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& e : entries) store.append(e);
    r.append_s = seconds_since(t0);
    r.append_records = entries.size();
    r.append_per_s =
        r.append_s > 0.0 ? static_cast<double>(entries.size()) / r.append_s
                         : 0.0;

    // Replay throughput: a cold handle mmaps the chunks and decodes every
    // committed record into the read view.
    t0 = std::chrono::steady_clock::now();
    nas::TrialStore replay(append_dir, sopt);
    const nas::TrialDatabase db = replay.to_database();
    r.replay_s = seconds_since(t0);
    r.replay_per_s =
        r.replay_s > 0.0 ? static_cast<double>(db.size()) / r.replay_s : 0.0;
    fs::remove_all(append_dir);
  }

  // Multi-process wide-lattice sweep vs serial (the PR parity acceptance).
  {
    const nas::SearchSpaceSpec spec = nas::SearchSpaceSpec::wide();
    r.lattice_points = spec.size();
    const auto configs = spec.enumerate();
    r.trials = configs.size();

    auto t0 = std::chrono::steady_clock::now();
    const nas::TrialDatabase serial_db = experiment.run_all(configs);
    r.serial_s = seconds_since(t0);
    const std::string serial_csv = serial_db.to_csv().to_string();
    r.serial_hash = fnv1a64(serial_csv);

    const std::string sweep_dir = dir + "/wide";
    fs::remove_all(sweep_dir);
    nas::MultiProcSweepOptions mp;
    mp.workers = 2;
    mp.scheduler.threads = 1;  // speedup isolates *process* parallelism
    mp.scheduler.fsync_store = false;
    r.worker_threads = mp.scheduler.threads;
    t0 = std::chrono::steady_clock::now();
    const nas::MultiProcSweepStats stats =
        nas::run_multiprocess_sweep(experiment, spec, sweep_dir, mp);
    r.multiproc_s = seconds_since(t0);
    r.workers = stats.workers;
    r.speedup = r.multiproc_s > 0.0 ? r.serial_s / r.multiproc_s : 0.0;

    nas::TrialStoreOptions sopt;
    sopt.lattice_fingerprint = spec.fingerprint();
    sopt.fsync_each = false;
    const nas::TrialStore store(sweep_dir, sopt);
    const nas::TrialDatabase replayed = store.assemble(configs);
    const std::string store_csv = replayed.to_csv().to_string();
    r.store_hash = fnv1a64(store_csv);
    r.hash_ok = r.serial_hash == r.store_hash;

    // Identical Pareto set: same front indices over both databases.
    r.pareto_ok =
        core::HwNasPipeline::front_of(serial_db,
                                      pareto::DominanceMode::kWeak) ==
        core::HwNasPipeline::front_of(replayed, pareto::DominanceMode::kWeak);
    fs::remove_all(sweep_dir);
  }
  fs::remove_all(dir);
  return r;
}

ModeResult g_dispatch;
ModeResult g_compute;
PruneResult g_prune;
StoreResult g_store;
double g_resume_saved_pct = 0.0;
std::size_t g_resume_threads = 0;

/// Pure dispatch overhead: oracle folds cost microseconds, so this measures
/// the scheduler's per-trial admission + fan-out + merge cost.
void BM_SchedulerDispatch(benchmark::State& state) {
  nas::OracleEvaluator oracle;
  const nas::Experiment experiment(oracle, latency::NnMeter::shared());
  nas::SchedulerOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  nas::TrialScheduler scheduler(experiment, opt);
  const auto configs = lattice_sample(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.run(configs).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_SchedulerDispatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void write_bench_nas_json() {
  std::FILE* f = std::fopen("BENCH_nas.json", "w");
  if (!f) {
    std::printf("WARNING: cannot write BENCH_nas.json\n");
    return;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", cores);
  std::fprintf(f,
               "  \"dispatch_bound\": {\"trials\": %zu, \"threads\": %zu, "
               "\"serial_s\": %.4f, \"parallel_s\": %.4f, \"speedup\": %.2f, "
               "\"serial_hash\": \"%016llx\", \"parallel_hash\": \"%016llx\", "
               "\"parity_ok\": %s},\n",
               g_dispatch.trials, g_dispatch.threads, g_dispatch.serial_s,
               g_dispatch.parallel_s, g_dispatch.speedup,
               static_cast<unsigned long long>(g_dispatch.serial_hash),
               static_cast<unsigned long long>(g_dispatch.parallel_hash),
               g_dispatch.parity_ok ? "true" : "false");
  std::fprintf(f,
               "  \"compute_bound\": {\"trials\": %zu, \"threads\": %zu, "
               "\"serial_s\": %.4f, \"parallel_s\": %.4f, \"speedup\": %.2f, "
               "\"serial_hash\": \"%016llx\", \"parallel_hash\": \"%016llx\", "
               "\"parity_ok\": %s},\n",
               g_compute.trials, g_compute.threads, g_compute.serial_s,
               g_compute.parallel_s, g_compute.speedup,
               static_cast<unsigned long long>(g_compute.serial_hash),
               static_cast<unsigned long long>(g_compute.parallel_hash),
               g_compute.parity_ok ? "true" : "false");
  std::fprintf(f,
               "  \"median_stop\": {\"trials\": %zu, \"threads\": %zu, "
               "\"pruned\": %zu, "
               "\"folds_evaluated\": %zu, \"folds_skipped\": %zu, "
               "\"fold_savings_pct\": %.1f, \"survivors_match_serial\": "
               "%s},\n",
               g_prune.total_trials, g_prune.threads, g_prune.pruned_trials,
               g_prune.folds_evaluated, g_prune.folds_skipped,
               g_prune.fold_savings_pct,
               g_prune.survivors_match_serial ? "true" : "false");
  std::fprintf(f, "  \"resume_threads\": %zu,\n", g_resume_threads);
  std::fprintf(f, "  \"resume_saved_pct\": %.1f,\n", g_resume_saved_pct);
  std::fprintf(f,
               "  \"store\": {\"append_records\": %zu, "
               "\"append_records_per_s\": %.0f, \"replay_records_per_s\": "
               "%.0f, \"wide_lattice_points\": %lld, \"wide_trials\": %zu, "
               "\"workers\": %d, \"threads_per_worker\": %zu, "
               "\"serial_s\": %.1f, \"multiproc_s\": %.1f, "
               "\"multiproc_speedup\": %.2f, \"serial_hash\": \"%016llx\", "
               "\"store_hash\": \"%016llx\", \"pareto_front_match\": %s},\n",
               g_store.append_records, g_store.append_per_s,
               g_store.replay_per_s,
               static_cast<long long>(g_store.lattice_points), g_store.trials,
               g_store.workers, g_store.worker_threads, g_store.serial_s,
               g_store.multiproc_s, g_store.speedup,
               static_cast<unsigned long long>(g_store.serial_hash),
               static_cast<unsigned long long>(g_store.store_hash),
               g_store.pareto_ok ? "true" : "false");
  // Headline numbers the CI gates grep for: the dispatch-bound speedup is
  // thread-count-limited (not core-limited), so it is the stable
  // scheduler-throughput signal across runner sizes; store_parity_ok is the
  // tentpole claim (multi-process wide-lattice sweep replays byte-identical
  // to serial, same Pareto front).
  std::fprintf(f, "  \"speedup\": %.2f,\n", g_dispatch.speedup);
  std::fprintf(f, "  \"store_parity_ok\": %s,\n",
               g_store.hash_ok && g_store.pareto_ok ? "true" : "false");
  std::fprintf(f, "  \"parity_ok\": %s\n",
               g_dispatch.parity_ok && g_compute.parity_ok &&
                       g_prune.survivors_match_serial && g_store.hash_ok &&
                       g_store.pareto_ok
                   ? "true"
                   : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_nas.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = dcnas::bench::run(argc, argv, [] {
    (void)latency::NnMeter::shared();  // train predictors outside the timers
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("NAS search-loop throughput (host: %u cores)\n\n", cores);

    {
      SleepEvaluator sleeper;
      const auto configs = lattice_sample(64);
      g_dispatch = run_mode(sleeper, configs, 8);
      std::printf("dispatch-bound (%.0fms x %d folds x %zu trials): serial "
                  "%.2fs, %zu threads %.2fs -> %.2fx, parity %s\n",
                  kSleepMsPerFold, kSleepFolds, g_dispatch.trials,
                  g_dispatch.serial_s, g_dispatch.threads,
                  g_dispatch.parallel_s, g_dispatch.speedup,
                  g_dispatch.parity_ok ? "OK" : "MISMATCH");
    }

    {
      geodata::DatasetOptions ds;
      ds.scale = 1.0 / 256.0;
      ds.chip_size = 24;
      ds.scene_size = 160;
      ds.seed = 2023;
      ds.channels = 5;
      const auto dataset5 = geodata::build_dataset(ds);
      ds.channels = 7;
      const auto dataset7 = geodata::build_dataset(ds);
      nas::TrainingEvaluator::Options topt;
      topt.folds = 3;
      topt.epochs = 2;
      nas::TrainingEvaluator trainer(dataset5, dataset7, topt);
      g_compute = run_mode(trainer, lattice_sample(6), 0);
      std::printf("compute-bound (3-fold training x %zu trials): serial "
                  "%.2fs, %zu threads %.2fs -> %.2fx, parity %s\n",
                  g_compute.trials, g_compute.serial_s, g_compute.threads,
                  g_compute.parallel_s, g_compute.speedup,
                  g_compute.parity_ok ? "OK" : "MISMATCH");
    }

    {
      nas::OracleEvaluator oracle;
      g_prune = run_prune_mode(oracle, lattice_sample(96), 4);
      std::printf("median-stop: %zu/%zu trials pruned, %.1f%% of folds "
                  "skipped, survivors %s serial\n",
                  g_prune.pruned_trials, g_prune.total_trials,
                  g_prune.fold_savings_pct,
                  g_prune.survivors_match_serial ? "match" : "DIVERGE from");
    }

    {
      // Resume: journal half the trials, then re-run the full list.
      SleepEvaluator sleeper;
      const nas::Experiment experiment(sleeper, latency::NnMeter::shared());
      const auto configs = lattice_sample(32);
      const std::string journal = "bench_nas_journal.dcj";
      std::remove(journal.c_str());
      nas::SchedulerOptions opt;
      opt.threads = 8;
      opt.journal_path = journal;
      opt.fsync_journal = false;
      {
        nas::TrialScheduler warm(experiment, opt);
        (void)warm.run(std::vector<nas::TrialConfig>(
            configs.begin(), configs.begin() + 16));
      }
      nas::TrialScheduler resume(experiment, opt);
      g_resume_threads = resume.threads();
      const auto t0 = std::chrono::steady_clock::now();
      (void)resume.run(configs);
      const double resumed_s = seconds_since(t0);
      g_resume_saved_pct =
          100.0 * static_cast<double>(resume.stats().resumed) /
          static_cast<double>(configs.size());
      std::printf("resume: %zu/%zu trials served from the journal "
                  "(%.2fs for the rest)\n",
                  resume.stats().resumed, configs.size(), resumed_s);
      std::remove(journal.c_str());
    }

    {
      std::printf("store: sweeping the wide lattice serially and with 2 "
                  "worker processes (several minutes)...\n");
      g_store = run_store_mode("bench_nas_store");
      std::printf("store: append %.0f records/s, replay %.0f records/s; "
                  "wide lattice %zu trials serial %.1fs vs %d-proc %.1fs -> "
                  "%.2fx, hash %s, pareto %s\n",
                  g_store.append_per_s, g_store.replay_per_s, g_store.trials,
                  g_store.serial_s, g_store.workers, g_store.multiproc_s,
                  g_store.speedup, g_store.hash_ok ? "OK" : "MISMATCH",
                  g_store.pareto_ok ? "OK" : "MISMATCH");
    }
  });
  if (rc == 0) write_bench_nas_json();
  return rc;
}
