#pragma once
/// Shared scaffolding for the reproduction benches: every bench binary
/// first prints the table/figure it regenerates (the reproduction payload),
/// then runs its google-benchmark microbenchmarks (the performance payload).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>

namespace dcnas::bench {

/// Prints the reproduction block, then dispatches to google-benchmark.
inline int run(int argc, char** argv,
               const std::function<void()>& print_report) {
  std::printf("================================================================\n");
  print_report();
  std::printf("================================================================\n\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace dcnas::bench
