/// bench_serve — measured serving performance of the deployed DCNX artifact.
///
/// Reproduction payload: trains/saves a small drainage model, then drives
/// the src/serve subsystem (registry -> dynamic batcher -> workers) with 64
/// requests per batching policy, sweeping max_batch 1..32 through BOTH
/// serving paths: the compiled-plan executor (fused kernels + static arena,
/// the default) and the op-by-op GraphExecutor baseline. A direct-run
/// section measures per-image latency of each path at batch 1 and batch 8,
/// and a steady-state section asserts the plan path performs zero arena
/// allocations after warmup ("plan_alloc_ok" — the serve-bench CI gate).
/// Emits a table of throughput (img/s) and p50/p95/p99 end-to-end latency
/// per policy, plus BENCH_serve.json for downstream tooling. The
/// nn-Meter-style predicted latency for the same architecture is printed
/// alongside, so the paper's analytic latency objective can be compared
/// against a real runtime.

#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "dcnas/geodata/dataset.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/latency/predictor.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/trainer.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/plan/executor.hpp"
#include "dcnas/serve/server.hpp"

namespace {

using namespace dcnas;

constexpr std::int64_t kChipSize = 24;
constexpr int kRequestsPerPolicy = 64;
constexpr std::size_t kWorkers = 2;

struct ServeBenchContext {
  nas::TrialConfig cfg;
  std::shared_ptr<serve::ModelRegistry> registry;
  std::shared_ptr<const graph::GraphExecutor> exec;
  std::shared_ptr<const plan::PlanExecutor> plan;
  std::vector<Tensor> inputs;
};

/// Trains the small model once, registers it, and pre-generates inputs.
ServeBenchContext& ctx() {
  static ServeBenchContext c = [] {
    ServeBenchContext out;
    geodata::DatasetOptions dopt;
    dopt.scale = 1.0 / 128.0;
    dopt.chip_size = kChipSize;
    dopt.scene_size = 160;
    dopt.channels = 5;
    const auto ds = geodata::build_dataset(dopt);

    out.cfg = nas::TrialConfig::baseline(5, 8);
    out.cfg.initial_output_feature = 32;
    out.cfg.kernel_size = 3;
    out.cfg.padding = 1;
    Rng rng(17);
    nn::ConfigurableResNet model(out.cfg.to_resnet_config(), rng);
    nn::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = out.cfg.batch;
    topt.lr = 0.02;
    nn::fit(model, ds.images, ds.labels, topt);
    model.set_training(false);

    graph::GraphExecutor exec(
        graph::build_resnet_graph(out.cfg.to_resnet_config(), kChipSize),
        model);
    exec.fold_batchnorm();
    const std::string path =
        (std::filesystem::temp_directory_path() / "bench_serve.dcnx").string();
    graph::save_model(exec, path);

    out.registry = std::make_shared<serve::ModelRegistry>();
    out.registry->load("drainage", path);
    std::filesystem::remove(path);
    const serve::ModelSnapshot snap = out.registry->snapshot("drainage");
    out.exec = snap.exec;
    out.plan = snap.plan;

    Rng request_rng(4242);
    for (int i = 0; i < kRequestsPerPolicy; ++i) {
      out.inputs.push_back(Tensor::rand_uniform(
          {1, 5, kChipSize, kChipSize}, request_rng, -1.0f, 1.0f));
    }
    return out;
  }();
  return c;
}

struct PolicyResult {
  std::int64_t max_batch = 0;
  bool via_plan = true;
  double throughput = 0.0;
  serve::LatencySummary latency;
  std::int64_t errors = 0;
};

PolicyResult run_policy(std::int64_t max_batch, bool use_plans) {
  ServeBenchContext& c = ctx();
  serve::ServerOptions sopt;
  sopt.num_workers = kWorkers;
  sopt.batch.max_batch = max_batch;
  sopt.batch.max_delay = std::chrono::microseconds(2000);
  sopt.use_plans = use_plans;
  serve::Server server(c.registry, sopt);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<Tensor>> futures;
  futures.reserve(c.inputs.size());
  for (const Tensor& input : c.inputs) {
    futures.push_back(server.submit("drainage", input));
  }
  for (auto& f : futures) f.get();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  PolicyResult r;
  r.max_batch = max_batch;
  r.via_plan = use_plans;
  r.throughput = static_cast<double>(c.inputs.size()) / seconds;
  r.latency = server.metrics().latency_summary("drainage");
  r.errors = server.metrics().error_count("drainage");
  server.shutdown();
  return r;
}

/// Direct (no batcher) per-image latency of one serving path at one batch
/// size: mean over \p iters timed runs after a small warmup.
struct DirectResult {
  std::int64_t batch = 0;
  double graph_ms_per_img = 0.0;
  double plan_ms_per_img = 0.0;
  double plan_speedup = 0.0;
};

DirectResult run_direct(std::int64_t batch, int iters = 30) {
  ServeBenchContext& c = ctx();
  Rng rng(7 + static_cast<unsigned>(batch));
  const Tensor input = Tensor::rand_uniform({batch, 5, kChipSize, kChipSize},
                                            rng, -1.0f, 1.0f);
  auto time_path = [&](auto&& run) {
    for (int i = 0; i < 3; ++i) run(input);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) run(input);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return ms / static_cast<double>(iters) / static_cast<double>(batch);
  };
  DirectResult r;
  r.batch = batch;
  r.graph_ms_per_img = time_path([&](const Tensor& x) { c.exec->run(x); });
  r.plan_ms_per_img = time_path([&](const Tensor& x) { c.plan->run(x); });
  r.plan_speedup = r.graph_ms_per_img / r.plan_ms_per_img;
  return r;
}

/// The zero-allocation gate: after warming the plan executor's arena pool
/// across every batch size and concurrency level the measurement phase
/// uses, `plan.exec.allocs` must not move. Returns the steady-state delta
/// (0 on pass) — CI fails the serve-bench job when "plan_alloc_ok" is
/// false.
std::int64_t steady_state_allocs() {
  ServeBenchContext& c = ctx();
  auto& allocs = obs::MetricsRegistry::global().counter("plan.exec.allocs");
  Rng rng(99);
  const Tensor big =
      Tensor::rand_uniform({32, 5, kChipSize, kChipSize}, rng, -1.0f, 1.0f);
  const Tensor small =
      Tensor::rand_uniform({1, 5, kChipSize, kChipSize}, rng, -1.0f, 1.0f);

  auto burst = [&] {
    serve::ServerOptions sopt;
    sopt.num_workers = kWorkers;
    sopt.batch.max_batch = 8;
    sopt.batch.max_delay = std::chrono::microseconds(500);
    serve::Server server(c.registry, sopt);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(server.submit(
          "drainage", c.inputs[static_cast<std::size_t>(i)]));
    }
    for (auto& f : futures) f.get();
    server.shutdown();
  };

  // Warmup: largest direct batch first (so pooled arenas have enough
  // capacity for everything below), then two concurrent bursts (so the
  // pool holds one arena per worker).
  c.plan->run(big);
  burst();
  burst();
  c.plan->run(big);

  const std::int64_t before = allocs.value();
  for (int i = 0; i < 5; ++i) {
    c.plan->run(big);
    c.plan->run(small);
  }
  burst();
  burst();
  return allocs.value() - before;
}

void write_json(const std::vector<PolicyResult>& results,
                const std::vector<DirectResult>& direct,
                std::int64_t steady_allocs, double pred_mean_ms,
                double pred_std_ms) {
  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (!f) {
    std::printf("WARNING: cannot write BENCH_serve.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"model\": \"drainage-24px-fold\",\n");
  std::fprintf(f, "  \"workers\": %zu,\n", kWorkers);
  std::fprintf(f, "  \"requests_per_policy\": %d,\n", kRequestsPerPolicy);
  std::fprintf(f,
               "  \"predicted_latency_224_ms\": {\"mean\": %.4f, \"std\": "
               "%.4f},\n",
               pred_mean_ms, pred_std_ms);
  std::fprintf(f, "  \"direct_run\": [\n");
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const DirectResult& d = direct[i];
    std::fprintf(f,
                 "    {\"batch\": %lld, \"graph_ms_per_img\": %.4f, "
                 "\"plan_ms_per_img\": %.4f, \"plan_speedup\": %.3f}%s\n",
                 static_cast<long long>(d.batch), d.graph_ms_per_img,
                 d.plan_ms_per_img, d.plan_speedup,
                 i + 1 < direct.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"plan_allocs_steady\": %lld,\n",
               static_cast<long long>(steady_allocs));
  std::fprintf(f, "  \"plan_alloc_ok\": %s,\n",
               steady_allocs == 0 ? "true" : "false");
  std::fprintf(f, "  \"policies\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PolicyResult& r = results[i];
    std::fprintf(f,
                 "    {\"max_batch\": %lld, \"path\": \"%s\", "
                 "\"throughput_img_per_s\": %.2f, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"mean_ms\": %.3f, \"errors\": %lld}%s\n",
                 static_cast<long long>(r.max_batch),
                 r.via_plan ? "plan" : "graph", r.throughput,
                 r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms,
                 r.latency.mean_ms, static_cast<long long>(r.errors),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_serve.json\n");
}

/// Dumps the process-wide metrics registry (admission/flush counters, batch
/// size histogram, profiler phases) accumulated over the whole sweep.
void write_metrics_snapshot() {
  const std::string json = obs::MetricsRegistry::global().to_json();
  std::FILE* f = std::fopen("BENCH_serve_metrics.json", "w");
  if (!f) {
    std::printf("WARNING: cannot write BENCH_serve_metrics.json\n");
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote BENCH_serve_metrics.json\n");
}

void print_report() {
  std::printf("bench_serve: dynamic-batching throughput/latency sweep\n");
  std::printf("(%d requests per policy, %zu workers, 2ms max queue delay)\n\n",
              kRequestsPerPolicy, kWorkers);
  ServeBenchContext& c = ctx();

  std::vector<PolicyResult> results;
  std::printf(
      "path   max_batch  throughput(img/s)   p50ms   p95ms   p99ms  errors\n");
  for (const bool use_plans : {true, false}) {
    for (const std::int64_t max_batch : {1, 2, 4, 8, 16, 32}) {
      const PolicyResult r = run_policy(max_batch, use_plans);
      std::printf("%-6s %9lld %18.1f %7.2f %7.2f %7.2f %7lld\n",
                  r.via_plan ? "plan" : "graph",
                  static_cast<long long>(r.max_batch), r.throughput,
                  r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms,
                  static_cast<long long>(r.errors));
      results.push_back(r);
    }
  }

  std::printf("\ndirect run (no batcher), per-image latency:\n");
  std::printf("batch  graph(ms/img)  plan(ms/img)  speedup\n");
  std::vector<DirectResult> direct;
  for (const std::int64_t batch : {1, 8}) {
    const DirectResult d = run_direct(batch);
    std::printf("%5lld %14.4f %13.4f %8.3fx\n",
                static_cast<long long>(d.batch), d.graph_ms_per_img,
                d.plan_ms_per_img, d.plan_speedup);
    direct.push_back(d);
  }

  const std::int64_t steady_allocs = steady_state_allocs();
  std::printf("\nsteady-state plan arena allocations: %lld (%s)\n",
              static_cast<long long>(steady_allocs),
              steady_allocs == 0 ? "ok" : "FAIL: hot path allocated");

  const auto pred = latency::NnMeter::shared().predict_graph(
      graph::build_resnet_graph(c.cfg.to_resnet_config()));
  std::printf("\npredicted deployment latency (224px, 4 edge devices): "
              "mean %.2f ms, std %.2f ms\n", pred.mean_ms, pred.std_ms);
  std::printf("(measured numbers above are 24px end-to-end serving latency "
              "on this host — the runtime the predictor's ranking claims "
              "are checked against)\n");
  write_json(results, direct, steady_allocs, pred.mean_ms, pred.std_ms);
  write_metrics_snapshot();
}

void BM_DirectRunBatch(benchmark::State& state) {
  ServeBenchContext& c = ctx();
  const std::int64_t batch = state.range(0);
  Rng rng(7);
  const Tensor input = Tensor::rand_uniform({batch, 5, kChipSize, kChipSize},
                                            rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.exec->run(input));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DirectRunBatch)->Arg(1)->Arg(8)->Arg(32);

void BM_DirectRunPlanBatch(benchmark::State& state) {
  ServeBenchContext& c = ctx();
  const std::int64_t batch = state.range(0);
  Rng rng(7);
  const Tensor input = Tensor::rand_uniform({batch, 5, kChipSize, kChipSize},
                                            rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.plan->run(input));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DirectRunPlanBatch)->Arg(1)->Arg(8)->Arg(32);

void BM_ServeRoundTripUnbatched(benchmark::State& state) {
  ServeBenchContext& c = ctx();
  serve::ServerOptions sopt;
  sopt.num_workers = kWorkers;
  sopt.batch.max_batch = 1;
  sopt.batch.max_delay = std::chrono::microseconds(0);
  serve::Server server(c.registry, sopt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.submit("drainage", c.inputs.front()).get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeRoundTripUnbatched);

void BM_ServeBurstBatch8(benchmark::State& state) {
  ServeBenchContext& c = ctx();
  serve::ServerOptions sopt;
  sopt.num_workers = kWorkers;
  sopt.batch.max_batch = 8;
  sopt.batch.max_delay = std::chrono::microseconds(500);
  serve::Server server(c.registry, sopt);
  for (auto _ : state) {
    std::vector<std::future<Tensor>> futures;
    futures.reserve(16);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(
          server.submit("drainage",
                        c.inputs[static_cast<std::size_t>(i)]));
    }
    for (auto& f : futures) f.get();
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ServeBurstBatch8);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, print_report);
}
