/// Figure 4 reproduction: radar plots of the non-dominated solutions —
/// normalized objective axes plus configuration axes — as text bars and
/// fig4_radar.csv, with export microbenchmarks.

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"

using namespace dcnas;

namespace {

const core::SweepResult& shared_sweep() {
  static const core::SweepResult sweep = [] {
    core::HwNasPipeline pipeline;
    return pipeline.run_full_sweep();
  }();
  return sweep;
}

void BM_RadarRows(benchmark::State& state) {
  const auto& sweep = shared_sweep();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fig4_rows(sweep).size());
  }
}
BENCHMARK(BM_RadarRows)->Unit(benchmark::kMicrosecond);

void BM_RadarText(benchmark::State& state) {
  const auto rows = core::fig4_rows(shared_sweep());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::radar_text(rows).size());
  }
}
BENCHMARK(BM_RadarText)->Unit(benchmark::kMicrosecond);

void BM_CrowdingDistance(benchmark::State& state) {
  const auto& sweep = shared_sweep();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pareto::crowding_distances(sweep.objectives, sweep.front_indices)
            .size());
  }
}
BENCHMARK(BM_CrowdingDistance)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    const auto& sweep = shared_sweep();
    std::printf("%s", core::fig4_text(sweep).c_str());
    pareto::radar_csv(core::fig4_rows(sweep)).save("fig4_radar.csv");
    std::printf("radar data written to fig4_radar.csv\n");
    std::printf("\nshared traits across winners (paper: smallest kernel, "
                "fewest channels per\nmemory class, larger stride, minimal "
                "padding):\n");
    int k3 = 0, s2 = 0, p12 = 0, w32 = 0;
    for (std::size_t i : sweep.front_indices) {
      const auto& c = sweep.trials.record(i).config;
      k3 += c.kernel_size == 3;
      s2 += c.stride == 2;
      p12 += c.padding <= 2;
      w32 += c.initial_output_feature == 32;
    }
    const auto n = sweep.front_indices.size();
    std::printf("  kernel==3: %d/%zu  stride==2: %d/%zu  padding<=2: %d/%zu  "
                "width==32: %d/%zu\n", k3, n, s2, n, p12, n, w32, n);
  });
}
