/// bench_load — open-loop load harness for the wire-serving stack.
///
/// Drives a replicated Server through the WireServer front-end (unix-domain
/// socket) the way an external fleet would: C client connections, each an
/// independent Poisson arrival process, so the superposed offered load is
/// Poisson at the target rate. Unlike the closed-loop sweep in bench_serve
/// (where clients wait for responses before sending more, so the system
/// sets its own arrival rate), open-loop arrivals keep coming during a
/// stall — which is what exposes queueing collapse, deadline sheds, and
/// tail-latency blowup under overload.
///
/// Protocol per run:
///   1. closed-loop calibration: C connections send back-to-back for a few
///      seconds; the measured goodput is the capacity estimate.
///   2. open-loop sweep: offered rates at fixed multipliers of capacity
///      (below saturation, near saturation, past it). Every request carries
///      a deadline tag, so overload resolves as typed sheds, not unbounded
///      queueing. Latency is measured from the *scheduled* arrival time, so
///      a client that falls behind its schedule charges the delay to the
///      system (true open-loop accounting).
///
/// Results (p50/p95/p99 sojourn, goodput, shed/reject rates) are printed
/// and merged as a "load" section into BENCH_serve.json, whose "load_ok"
/// field the serve-bench CI job gates on: false when any request died with
/// an internal error or a rate produced no goodput at all.
///
/// Flags: --smoke (CI: short runs), --connections N, --deadline-ms N,
///        --duration-s N, --replicas N, --workers N, --epochs N

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dcnas/common/cli.hpp"
#include "dcnas/geodata/dataset.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/trainer.hpp"
#include "dcnas/serve/wire.hpp"

namespace {

using namespace dcnas;
using steady_clock = std::chrono::steady_clock;

constexpr std::int64_t kChipSize = 24;

std::string train_artifact(int epochs) {
  geodata::DatasetOptions dopt;
  dopt.scale = 1.0 / 128.0;
  dopt.chip_size = kChipSize;
  dopt.scene_size = 160;
  dopt.channels = 5;
  const auto ds = geodata::build_dataset(dopt);

  nas::TrialConfig cfg = nas::TrialConfig::baseline(5, 8);
  cfg.initial_output_feature = 32;
  cfg.kernel_size = 3;
  cfg.padding = 1;
  Rng rng(17);
  nn::ConfigurableResNet model(cfg.to_resnet_config(), rng);
  nn::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = cfg.batch;
  topt.lr = 0.02;
  nn::fit(model, ds.images, ds.labels, topt);
  model.set_training(false);

  graph::GraphExecutor exec(
      graph::build_resnet_graph(cfg.to_resnet_config(), kChipSize), model);
  exec.fold_batchnorm();
  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_load.dcnx").string();
  graph::save_model(exec, path);
  return path;
}

/// Per-connection tally, merged after join.
struct ClientStats {
  std::vector<double> ok_latency_ms;  ///< scheduled-arrival -> response
  std::int64_t ok = 0;
  std::int64_t shed = 0;      ///< kShedOverload | kDeadlineExpired
  std::int64_t rejected = 0;  ///< kQueueFull | kShutdown
  std::int64_t errors = 0;    ///< kBadRequest | kInternalError | transport

  void merge(const ClientStats& other) {
    ok_latency_ms.insert(ok_latency_ms.end(), other.ok_latency_ms.begin(),
                         other.ok_latency_ms.end());
    ok += other.ok;
    shed += other.shed;
    rejected += other.rejected;
    errors += other.errors;
  }
};

void record(ClientStats& stats, const serve::WireResponse& response,
            steady_clock::time_point scheduled) {
  switch (response.status) {
    case serve::WireStatus::kOk:
      ++stats.ok;
      stats.ok_latency_ms.push_back(
          std::chrono::duration<double, std::milli>(steady_clock::now() -
                                                    scheduled)
              .count());
      break;
    case serve::WireStatus::kShedOverload:
    case serve::WireStatus::kDeadlineExpired:
      ++stats.shed;
      break;
    case serve::WireStatus::kQueueFull:
    case serve::WireStatus::kShutdown:
      ++stats.rejected;
      break;
    default:
      ++stats.errors;
      break;
  }
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct RunResult {
  std::string mode;  ///< "closed" or "open"
  double rate_multiplier = 0.0;  ///< of calibrated capacity (open only)
  double offered_img_per_s = 0.0;
  double goodput_img_per_s = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::int64_t ok = 0, shed = 0, rejected = 0, errors = 0;
  double shed_rate = 0.0;  ///< (shed + rejected) / sent
};

RunResult summarize(ClientStats& stats, double seconds) {
  RunResult r;
  std::sort(stats.ok_latency_ms.begin(), stats.ok_latency_ms.end());
  r.p50_ms = percentile(stats.ok_latency_ms, 0.50);
  r.p95_ms = percentile(stats.ok_latency_ms, 0.95);
  r.p99_ms = percentile(stats.ok_latency_ms, 0.99);
  r.ok = stats.ok;
  r.shed = stats.shed;
  r.rejected = stats.rejected;
  r.errors = stats.errors;
  r.goodput_img_per_s = static_cast<double>(stats.ok) / seconds;
  const std::int64_t sent = stats.ok + stats.shed + stats.rejected +
                            stats.errors;
  r.offered_img_per_s = static_cast<double>(sent) / seconds;
  r.shed_rate = sent > 0 ? static_cast<double>(stats.shed + stats.rejected) /
                               static_cast<double>(sent)
                         : 0.0;
  return r;
}

/// Closed loop: every connection sends back-to-back until the deadline; the
/// aggregate goodput is the capacity the open-loop rates are scaled from.
RunResult run_closed_loop(const std::string& socket_path,
                          std::size_t connections, double seconds,
                          std::uint32_t deadline_us) {
  std::vector<ClientStats> stats(connections);
  std::vector<std::thread> clients;
  const auto end_at =
      steady_clock::now() + std::chrono::duration<double>(seconds);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      serve::WireClient client =
          serve::WireClient::connect_unix(socket_path);
      Rng rng(static_cast<unsigned>(1000 + c));
      const Tensor input = Tensor::rand_uniform(
          {1, 5, kChipSize, kChipSize}, rng, -1.0f, 1.0f);
      while (steady_clock::now() < end_at) {
        const auto scheduled = steady_clock::now();
        try {
          record(stats[c], client.infer_raw("drainage", input, deadline_us),
                 scheduled);
        } catch (const std::exception&) {
          ++stats[c].errors;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  ClientStats total;
  for (auto& s : stats) total.merge(s);
  RunResult r = summarize(total, seconds);
  r.mode = "closed";
  return r;
}

/// Open loop: each connection is an independent Poisson process at
/// rate/connections, with exponential inter-arrival draws from a seeded
/// generator. Sends happen at the scheduled instants regardless of how the
/// previous request fared (up to head-of-line blocking on one connection —
/// with C connections the coupling is 1/C of the load and the superposition
/// stays effectively open-loop).
RunResult run_open_loop(const std::string& socket_path,
                        std::size_t connections, double seconds,
                        double rate_img_per_s, std::uint32_t deadline_us) {
  std::vector<ClientStats> stats(connections);
  std::vector<std::thread> clients;
  const auto start = steady_clock::now();
  const auto end_at = start + std::chrono::duration<double>(seconds);
  const double per_conn_rate =
      rate_img_per_s / static_cast<double>(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      serve::WireClient client =
          serve::WireClient::connect_unix(socket_path);
      std::mt19937 gen(static_cast<unsigned>(9000 + 7 * c));
      std::exponential_distribution<double> interarrival(per_conn_rate);
      Rng rng(static_cast<unsigned>(2000 + c));
      const Tensor input = Tensor::rand_uniform(
          {1, 5, kChipSize, kChipSize}, rng, -1.0f, 1.0f);
      auto next = start + std::chrono::duration_cast<steady_clock::duration>(
                              std::chrono::duration<double>(
                                  interarrival(gen)));
      while (next < end_at) {
        std::this_thread::sleep_until(next);
        try {
          record(stats[c], client.infer_raw("drainage", input, deadline_us),
                 next);
        } catch (const std::exception&) {
          ++stats[c].errors;
          return;
        }
        next += std::chrono::duration_cast<steady_clock::duration>(
            std::chrono::duration<double>(interarrival(gen)));
      }
    });
  }
  for (auto& t : clients) t.join();
  ClientStats total;
  for (auto& s : stats) total.merge(s);
  RunResult r = summarize(total, seconds);
  r.mode = "open";
  return r;
}

std::string load_section_json(const std::vector<RunResult>& runs,
                              std::size_t connections, double deadline_ms,
                              double capacity, bool load_ok) {
  std::ostringstream out;
  char buf[512];
  out << "\"load\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"protocol\": \"unix\",\n"
                "    \"connections\": %zu,\n"
                "    \"deadline_ms\": %.1f,\n"
                "    \"closed_loop_img_per_s\": %.2f,\n"
                "    \"runs\": [\n",
                connections, deadline_ms, capacity);
  out << buf;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"mode\": \"%s\", \"rate_multiplier\": %.2f, "
        "\"offered_img_per_s\": %.2f, \"goodput_img_per_s\": %.2f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"ok\": %lld, \"shed\": %lld, \"rejected\": %lld, "
        "\"errors\": %lld, \"shed_rate\": %.4f}%s\n",
        r.mode.c_str(), r.rate_multiplier, r.offered_img_per_s,
        r.goodput_img_per_s, r.p50_ms, r.p95_ms, r.p99_ms,
        static_cast<long long>(r.ok), static_cast<long long>(r.shed),
        static_cast<long long>(r.rejected), static_cast<long long>(r.errors),
        r.shed_rate, i + 1 < runs.size() ? "," : "");
    out << buf;
  }
  out << "    ],\n    \"load_ok\": " << (load_ok ? "true" : "false")
      << "\n  }";
  return out.str();
}

/// Merges the load section into BENCH_serve.json: bench_serve owns the rest
/// of the file, bench_load owns (and replaces) the trailing "load" key. If
/// the file is absent bench_load writes a minimal one, so the harness also
/// works standalone.
void write_json(const std::string& section) {
  std::string body;
  {
    std::ifstream in("BENCH_serve.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      body = ss.str();
    }
  }
  if (body.empty()) {
    body = "{\n  \"bench\": \"serve\"\n}\n";
  }
  // Strip a previous load section: it is always the last key, inserted
  // right before the final brace, so cutting from its marker to the end
  // restores the pre-merge file shape.
  const std::string marker = ",\n  \"load\": {";
  if (const auto pos = body.find(marker); pos != std::string::npos) {
    body.erase(pos);
    body += "\n}\n";
  }
  const auto close = body.rfind('}');
  if (close == std::string::npos) {
    std::printf("WARNING: BENCH_serve.json is malformed, not writing\n");
    return;
  }
  body = body.substr(0, close);
  while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
    body.pop_back();
  }
  body += ",\n  " + section + "\n}\n";
  std::ofstream out("BENCH_serve.json", std::ios::trunc);
  out << body;
  std::printf("merged load section into BENCH_serve.json\n");
}

void print_run(const RunResult& r) {
  std::printf("%-6s %7.2fx %10.1f %10.1f %8.2f %8.2f %8.2f %7lld %7lld %7lld\n",
              r.mode.c_str(), r.rate_multiplier, r.offered_img_per_s,
              r.goodput_img_per_s, r.p50_ms, r.p95_ms, r.p99_ms,
              static_cast<long long>(r.ok + r.shed + r.rejected + r.errors),
              static_cast<long long>(r.shed + r.rejected),
              static_cast<long long>(r.errors));
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_flag("smoke");
  // Enough connections that overload builds a real server-side queue: each
  // blocking connection caps its own in-flight at 1, so C bounds total
  // outstanding work — too few connections and the clients throttle
  // themselves before the batcher's deadline shed ever engages.
  const auto connections =
      static_cast<std::size_t>(args.get_int("connections", 32));
  const double duration_s =
      args.get_double("duration-s", smoke ? 2.0 : 5.0);
  const double deadline_ms = args.get_double("deadline-ms", 25.0);
  const auto deadline_us = static_cast<std::uint32_t>(deadline_ms * 1000.0);

  std::printf("bench_load: open-loop Poisson load sweep over the wire "
              "front-end%s\n", smoke ? " (smoke)" : "");
  const std::string path =
      train_artifact(static_cast<int>(args.get_int("epochs", 1)));
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->load("drainage", path);
  std::filesystem::remove(path);

  serve::ServerOptions sopt;
  sopt.num_replicas = static_cast<std::size_t>(args.get_int("replicas", 2));
  sopt.num_workers = static_cast<std::size_t>(args.get_int("workers", 2));
  sopt.batch.max_batch = 8;
  sopt.batch.max_delay = std::chrono::microseconds(2000);
  serve::Server server(registry, sopt);

  serve::WireServerOptions wopt;
  wopt.unix_path = (std::filesystem::temp_directory_path() /
                    "bench_load.sock").string();
  serve::WireServer wire(server, wopt);
  std::printf("%zu replica(s) x %zu worker(s), max_batch 8, %zu client "
              "connection(s), %.0fms deadline tags\n\n",
              sopt.num_replicas, sopt.num_workers, connections, deadline_ms);

  std::printf("mode      rate    offered    goodput    p50ms    p95ms    "
              "p99ms    sent    shed  errors\n");

  // Warm the serving path (first requests hit cold arenas/caches), then
  // calibrate capacity closed-loop.
  run_closed_loop(wopt.unix_path, connections, smoke ? 0.5 : 1.0,
                  deadline_us);
  std::vector<RunResult> runs;
  runs.push_back(run_closed_loop(wopt.unix_path, connections,
                                 smoke ? 1.5 : 3.0, deadline_us));
  const double capacity = runs.back().goodput_img_per_s;
  print_run(runs.back());

  const std::vector<double> multipliers =
      smoke ? std::vector<double>{0.5, 1.5}
            : std::vector<double>{0.5, 0.8, 1.1, 1.5};
  for (const double m : multipliers) {
    RunResult r = run_open_loop(wopt.unix_path, connections, duration_s,
                                m * capacity, deadline_us);
    r.rate_multiplier = m;
    print_run(r);
    runs.push_back(r);
  }

  wire.stop();
  server.shutdown();

  // The CI gate: transport/internal errors are bugs; a rate with zero
  // goodput means the serving path collapsed outright; shed_rate must be a
  // valid fraction. Sheds themselves are healthy overload behavior.
  bool load_ok = true;
  for (const RunResult& r : runs) {
    if (r.errors != 0 || r.ok == 0 || r.shed_rate < 0.0 ||
        r.shed_rate > 1.0) {
      load_ok = false;
    }
  }
  std::printf("\ncalibrated capacity: %.1f img/s; load_ok: %s\n", capacity,
              load_ok ? "true" : "false");
  write_json(load_section_json(runs, connections, deadline_ms, capacity,
                               load_ok));
  return load_ok ? 0 : 1;
}
