/// Figure 2 reproduction: the NAS search-space inventory and its lattice
/// arithmetic (288 per combination, 1,728 total, 180 unique), plus
/// enumeration microbenchmarks.

#include <set>

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"

using namespace dcnas;

namespace {

void BM_EnumerateLattice(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nas::SearchSpace::enumerate_all().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          nas::SearchSpace::lattice_size());
}
BENCHMARK(BM_EnumerateLattice)->Unit(benchmark::kMicrosecond);

void BM_CanonicalDedup(benchmark::State& state) {
  const auto all = nas::SearchSpace::enumerate_all();
  for (auto _ : state) {
    std::set<std::string> keys;
    for (const auto& c : all) keys.insert(c.canonical_arch_key());
    benchmark::DoNotOptimize(keys.size());
  }
}
BENCHMARK(BM_CanonicalDedup)->Unit(benchmark::kMillisecond);

void BM_ConfigToModelGraph(benchmark::State& state) {
  const auto cfg = nas::TrialConfig::baseline(7, 16);
  for (auto _ : state) {
    const auto g = graph::build_resnet_graph(cfg.to_resnet_config());
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_ConfigToModelGraph)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    std::printf("%s", core::fig2_text().c_str());
    // Per-combination dedup accounting.
    std::set<std::string> unique;
    for (const auto& c : nas::SearchSpace::enumerate_all()) {
      unique.insert(std::to_string(c.batch) + "|" + c.canonical_arch_key());
    }
    std::printf("  unique (architecture x input combination) pairs: %zu of "
                "1728 lattice trials\n", unique.size());
  });
}
