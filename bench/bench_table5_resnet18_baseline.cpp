/// Table 5 reproduction: stock ResNet-18 on the six input variants, plus
/// microbenchmarks of our actual C++ training/inference substrate on the
/// baseline model (the compute the paper ran on an A100).

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"
#include "dcnas/nn/trainer.hpp"

using namespace dcnas;

namespace {

void BM_BaselineForward(benchmark::State& state) {
  Rng rng(1);
  nn::ConfigurableResNet model(nn::ResNetConfig::baseline(5), rng);
  model.set_training(false);
  const auto hw = state.range(0);
  const Tensor x = Tensor::rand_uniform({1, 5, hw, hw}, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x).data());
  }
  state.SetLabel("batch-1 inference on this host");
}
BENCHMARK(BM_BaselineForward)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_BaselineTrainStep(benchmark::State& state) {
  Rng rng(2);
  nn::ConfigurableResNet model(nn::ResNetConfig::baseline(5), rng);
  nn::Sgd opt(model.parameters(), 0.01, 0.9, 5e-4);
  nn::SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::rand_uniform({4, 5, 32, 32}, rng, -1.0f, 1.0f);
  const std::vector<int> y = {0, 1, 0, 1};
  for (auto _ : state) {
    const Tensor logits = model.forward(x);
    const double l = loss.forward(logits, y);
    benchmark::DoNotOptimize(l);
    opt.zero_grad();
    model.backward(loss.backward());
    opt.step();
  }
  state.SetLabel("fwd+bwd+step, batch 4 @32px");
}
BENCHMARK(BM_BaselineTrainStep)->Unit(benchmark::kMillisecond);

void BM_NarrowVsWideForward(benchmark::State& state) {
  Rng rng(3);
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = state.range(0);
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  nn::ConfigurableResNet model(cfg, rng);
  model.set_training(false);
  const Tensor x = Tensor::rand_uniform({1, 5, 64, 64}, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x).data());
  }
}
BENCHMARK(BM_NarrowVsWideForward)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    core::HwNasPipeline pipeline;
    std::printf("%s\n", core::table5_text(pipeline.run_baselines()).c_str());
    std::printf("(paper: 5ch rows 92.90/93.60/89.67%% at 31.91 ms; 7ch rows "
                "94.76/95.37/94.51%% at 32.46 ms; 44.71-44.73 MB)\n");
  });
}
