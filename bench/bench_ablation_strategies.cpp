/// Ablation: sample efficiency of search strategies over the Figure 2
/// space. The paper grids all 288 points per input combination; this bench
/// measures how many trials random search and regularized evolution need
/// to reach within 0.25 points of the grid's best oracle accuracy.

#include "bench_common.hpp"
#include "dcnas/common/stats.hpp"
#include "dcnas/nas/oracle.hpp"
#include "dcnas/nas/strategies.hpp"

using namespace dcnas;

namespace {

int trials_to_target(nas::SearchStrategy& strategy,
                     const nas::AccuracyOracle& oracle, double target,
                     int budget) {
  double best = 0.0;
  for (int t = 1; t <= budget; ++t) {
    if (strategy.exhausted()) return t - 1;
    const nas::TrialConfig c = strategy.ask();
    const double fitness = mean(oracle.fold_accuracies(c));
    strategy.tell(c, fitness);
    best = std::max(best, fitness);
    if (best >= target) return t;
  }
  return budget + 1;  // did not reach target
}

void BM_GridSearch288(benchmark::State& state) {
  const nas::AccuracyOracle oracle{nas::OracleOptions{}};
  for (auto _ : state) {
    nas::GridStrategy grid(7, 16);
    double best = 0.0;
    while (!grid.exhausted()) {
      best = std::max(best, mean(oracle.fold_accuracies(grid.ask())));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetLabel("exhaustive, 288 trials");
}
BENCHMARK(BM_GridSearch288)->Unit(benchmark::kMillisecond);

void BM_EvolutionSearch(benchmark::State& state) {
  const nas::AccuracyOracle oracle{nas::OracleOptions{}};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    nas::EvolutionStrategy::Options opt;
    opt.seed = seed++;
    nas::EvolutionStrategy evo(7, 16, opt);
    benchmark::DoNotOptimize(trials_to_target(evo, oracle, 96.0, 288));
  }
}
BENCHMARK(BM_EvolutionSearch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    const nas::AccuracyOracle oracle{nas::OracleOptions{}};
    // Grid's best over the (7,16) combination.
    nas::GridStrategy grid(7, 16);
    double grid_best = 0.0;
    while (!grid.exhausted()) {
      grid_best = std::max(grid_best, mean(oracle.fold_accuracies(grid.ask())));
    }
    const double target = grid_best - 0.25;
    std::printf("Ablation: trials needed to reach grid_best-0.25 = %.2f%% "
                "(grid best %.2f%% in 288 trials)\n\n", target, grid_best);

    for (const char* name : {"random", "evolution"}) {
      std::vector<double> counts;
      for (std::uint64_t seed = 1; seed <= 15; ++seed) {
        int t = 0;
        if (std::string(name) == "random") {
          nas::RandomStrategy s(7, 16, seed);
          t = trials_to_target(s, oracle, target, 288);
        } else {
          nas::EvolutionStrategy::Options opt;
          opt.seed = seed;
          nas::EvolutionStrategy s(7, 16, opt);
          t = trials_to_target(s, oracle, target, 288);
        }
        counts.push_back(static_cast<double>(t));
      }
      const auto s = summarize(counts);
      std::printf("  %-10s median-ish mean %.0f trials (min %.0f, max %.0f "
                  "over 15 seeds, budget 288)\n",
                  name, s.mean, s.min, s.max);
    }
    std::printf("\nregularized evolution reaches near-optimal configurations "
                "in a fraction of\nthe paper's exhaustive 288-trial grid — "
                "the 'more resource-efficient NAS'\ndirection its Discussion "
                "section proposes.\n");
  });
}
