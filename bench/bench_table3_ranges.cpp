/// Table 3 reproduction: objective value ranges over the full 1,728-trial
/// sweep, plus sweep-throughput microbenchmarks.

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"

using namespace dcnas;

namespace {

void BM_SingleTrial(benchmark::State& state) {
  nas::OracleEvaluator eval;
  const nas::Experiment exp(eval, latency::NnMeter::shared());
  const auto cfg = nas::TrialConfig::baseline(7, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp.run_trial(cfg).accuracy);
  }
  state.SetLabel("oracle accuracy + 4-device latency + memory");
}
BENCHMARK(BM_SingleTrial)->Unit(benchmark::kMicrosecond);

void BM_FullSweep(benchmark::State& state) {
  core::HwNasPipeline pipeline;
  for (auto _ : state) {
    const auto sweep = pipeline.run_full_sweep();
    benchmark::DoNotOptimize(sweep.front_indices.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          nas::SearchSpace::lattice_size());
  state.SetLabel("1728 trials incl. Pareto filter");
}
BENCHMARK(BM_FullSweep)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    core::HwNasPipeline pipeline;
    const auto sweep = pipeline.run_full_sweep();
    std::printf("%s\n", core::table3_text(sweep).c_str());
    std::printf("note: the latency maximum comes from nn-Meter-style "
                "*predictions*, which\nsaturate outside the predictor "
                "training range — see EXPERIMENTS.md.\n");
  });
}
