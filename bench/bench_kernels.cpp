/// Microbenchmarks of the tensor substrate's hot kernels: GEMM, im2col,
/// convolution forward/backward, pooling, batchnorm — the C++ compute that
/// replaces the paper's PyTorch/A100 stack.

#include <vector>

#include "bench_common.hpp"
#include "dcnas/common/rng.hpp"
#include "dcnas/nn/batchnorm.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/tensor/gemm.hpp"
#include "dcnas/tensor/im2col.hpp"
#include "dcnas/tensor/ops.hpp"

using namespace dcnas;

namespace {

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_Im2Col(benchmark::State& state) {
  const std::int64_t hw = state.range(0);
  Rng rng(2);
  const std::int64_t c = 32, k = 3, s = 1, p = 1;
  std::vector<float> im(static_cast<std::size_t>(c * hw * hw));
  for (auto& v : im) v = static_cast<float>(rng.uniform(-1, 1));
  const std::int64_t out = conv_out_size(hw, k, s, p);
  std::vector<float> col(static_cast<std::size_t>(c * k * k * out * out));
  for (auto _ : state) {
    im2col(im.data(), c, hw, hw, k, s, p, col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(col.size()));
}
BENCHMARK(BM_Im2Col)->Arg(28)->Arg(56)->Unit(benchmark::kMicrosecond);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(32, 32, 3, 1, 1, false, rng);
  conv.set_training(false);
  const Tensor x =
      Tensor::rand_uniform({1, 32, state.range(0), state.range(0)}, rng,
                           -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x).data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(28)->Arg(56)->Unit(benchmark::kMicrosecond);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(4);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, rng);
  const Tensor x = Tensor::rand_uniform({2, 16, 28, 28}, rng, -1.0f, 1.0f);
  const Tensor y = conv.forward(x);
  const Tensor g = Tensor::rand_uniform(y.shape(), rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(g).data());
  }
}
BENCHMARK(BM_ConvBackward)->Unit(benchmark::kMicrosecond);

void BM_MaxPool(benchmark::State& state) {
  Rng rng(5);
  const Tensor x = Tensor::rand_uniform({1, 64, 112, 112}, rng, -1.0f, 1.0f);
  std::vector<std::int64_t> argmax;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maxpool2d_forward(x, 3, 2, 1, &argmax).data());
  }
}
BENCHMARK(BM_MaxPool)->Unit(benchmark::kMicrosecond);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(6);
  nn::BatchNorm2d bn(64);
  const Tensor x = Tensor::rand_uniform({8, 64, 28, 28}, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn.forward(x).data());
  }
}
BENCHMARK(BM_BatchNormForward)->Unit(benchmark::kMicrosecond);

void BM_Softmax(benchmark::State& state) {
  Rng rng(7);
  const Tensor logits = Tensor::rand_uniform({256, 2}, rng, -3.0f, 3.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(logits).data());
  }
}
BENCHMARK(BM_Softmax);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    std::printf("Tensor-substrate kernel microbenchmarks (GEMM, im2col, "
                "conv fwd/bwd, pooling,\nbatchnorm, softmax). items_per_"
                "second for BM_Gemm is FLOP/s.\n");
  });
}
