/// Microbenchmarks of the tensor substrate's hot kernels: GEMM, im2col,
/// convolution forward/backward, pooling, batchnorm — the C++ compute that
/// replaces the paper's PyTorch/A100 stack.
///
/// Besides the google-benchmark suite, this binary self-times the packed
/// register-blocked GEMM against a verbatim copy of the seed scalar kernel
/// and records the trajectory in BENCH_kernels.json (GFLOP/s per shape,
/// conv forward/backward microseconds). CI uploads that file as an
/// artifact, so every commit carries its kernel-perf before/after.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "dcnas/common/rng.hpp"
#include "dcnas/nn/batchnorm.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/tensor/gemm.hpp"
#include "dcnas/tensor/gemm_s8.hpp"
#include "dcnas/tensor/im2col.hpp"
#include "dcnas/tensor/ops.hpp"

using namespace dcnas;

namespace {

/// Verbatim copy of the seed's scalar GEMM (pre-rewrite src/tensor/src/
/// gemm.cpp): serial k-blocked ikj loop with the axpy-style inner loop and
/// the zero-skip fast path. Kept here as the performance baseline every
/// BENCH_kernels.json entry is measured against.
void seed_gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  constexpr std::int64_t kBlockK = 256;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
    const std::int64_t k_end = std::min(kk + kBlockK, k);
    for (std::int64_t i = 0; i < m; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (std::int64_t p = kk; p < k_end; ++p) {
        const float aip = alpha * a_row[p];
        if (aip == 0.0f) continue;
        const float* b_row = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) c_row[j] += aip * b_row[j];
      }
    }
  }
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_GemmSeed(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    seed_gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
}
BENCHMARK(BM_GemmSeed)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_GemmS8(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<std::int8_t> a(static_cast<std::size_t>(n * n));
  std::vector<std::int8_t> b(static_cast<std::size_t>(n * n));
  std::vector<float> scale(static_cast<std::size_t>(n), 0.01f);
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  QuantEpilogue epi;
  epi.scale = scale.data();
  for (auto _ : state) {
    gemm_s8(n, n, n, a.data(), b.data(), epi, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  // int8 MAC counted like a FLOP so items_per_second compares with BM_Gemm.
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmS8)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_GemmBt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(8);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> bt(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : bt) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    gemm_bt(n, n, n, 1.0f, a.data(), bt.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBt)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_GemmAt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(9);
  std::vector<float> at(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : at) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    gemm_at(n, n, n, 1.0f, at.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmAt)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_Im2Col(benchmark::State& state) {
  const std::int64_t hw = state.range(0);
  Rng rng(2);
  const std::int64_t c = 32, k = 3, s = 1, p = 1;
  std::vector<float> im(static_cast<std::size_t>(c * hw * hw));
  for (auto& v : im) v = static_cast<float>(rng.uniform(-1, 1));
  const std::int64_t out = conv_out_size(hw, k, s, p);
  std::vector<float> col(static_cast<std::size_t>(c * k * k * out * out));
  for (auto _ : state) {
    im2col(im.data(), c, hw, hw, k, s, p, col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(col.size()));
}
BENCHMARK(BM_Im2Col)->Arg(28)->Arg(56)->Unit(benchmark::kMicrosecond);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(32, 32, 3, 1, 1, false, rng);
  conv.set_training(false);
  const Tensor x =
      Tensor::rand_uniform({1, 32, state.range(0), state.range(0)}, rng,
                           -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x).data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(28)->Arg(56)->Unit(benchmark::kMicrosecond);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(4);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, rng);
  const Tensor x = Tensor::rand_uniform({2, 16, 28, 28}, rng, -1.0f, 1.0f);
  const Tensor y = conv.forward(x);
  const Tensor g = Tensor::rand_uniform(y.shape(), rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(g).data());
  }
}
BENCHMARK(BM_ConvBackward)->Unit(benchmark::kMicrosecond);

void BM_MaxPool(benchmark::State& state) {
  Rng rng(5);
  const Tensor x = Tensor::rand_uniform({1, 64, 112, 112}, rng, -1.0f, 1.0f);
  std::vector<std::int64_t> argmax;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maxpool2d_forward(x, 3, 2, 1, &argmax).data());
  }
}
BENCHMARK(BM_MaxPool)->Unit(benchmark::kMicrosecond);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(6);
  nn::BatchNorm2d bn(64);
  const Tensor x = Tensor::rand_uniform({8, 64, 28, 28}, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn.forward(x).data());
  }
}
BENCHMARK(BM_BatchNormForward)->Unit(benchmark::kMicrosecond);

void BM_Softmax(benchmark::State& state) {
  Rng rng(7);
  const Tensor logits = Tensor::rand_uniform({256, 2}, rng, -3.0f, 3.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(logits).data());
  }
}
BENCHMARK(BM_Softmax);

// ---- BENCH_kernels.json ----------------------------------------------------

using GemmFn = void (*)(std::int64_t, std::int64_t, std::int64_t, float,
                        const float*, const float*, float, float*);

double time_gemm_gflops(GemmFn fn, std::int64_t n) {
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  fn(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());  // warmup
  // Enough iterations for ~0.3 s of work; best-of-3 to shrug off scheduler
  // noise on shared CI machines.
  const int iters = std::max(3, static_cast<int>(3.0e8 / flops));
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      fn(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count() / iters;
    best = std::max(best, flops / sec / 1e9);
  }
  return best;
}

double time_gemm_s8_gops(std::int64_t n) {
  Rng rng(1);
  std::vector<std::int8_t> a(static_cast<std::size_t>(n * n));
  std::vector<std::int8_t> b(static_cast<std::size_t>(n * n));
  std::vector<float> scale(static_cast<std::size_t>(n), 0.01f);
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  QuantEpilogue epi;
  epi.scale = scale.data();
  const double ops = 2.0 * static_cast<double>(n) * n * n;
  gemm_s8(n, n, n, a.data(), b.data(), epi, c.data());  // warmup
  const int iters = std::max(3, static_cast<int>(3.0e8 / ops));
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      gemm_s8(n, n, n, a.data(), b.data(), epi, c.data());
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count() / iters;
    best = std::max(best, ops / sec / 1e9);
  }
  return best;
}

template <typename Fn>
double time_us(Fn&& fn, int iters) {
  fn();  // warmup
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double>(t1 - t0).count() / iters * 1e6);
  }
  return best;
}

void write_bench_kernels_json() {
  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (!f) {
    std::printf("WARNING: cannot write BENCH_kernels.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"gemm\": [\n");
  const std::int64_t shapes[] = {64, 128, 256};
  bool first = true;
  for (const std::int64_t n : shapes) {
    const double packed = time_gemm_gflops(&gemm, n);
    const double seed = time_gemm_gflops(&seed_gemm, n);
    std::printf("BM_Gemm/%lld: packed %.2f GFLOP/s, seed %.2f GFLOP/s "
                "(%.2fx)\n",
                static_cast<long long>(n), packed, seed, packed / seed);
    std::fprintf(f,
                 "%s    {\"shape\": \"%lldx%lldx%lld\", "
                 "\"packed_gflops\": %.3f, \"seed_gflops\": %.3f, "
                 "\"speedup\": %.3f}",
                 first ? "" : ",\n", static_cast<long long>(n),
                 static_cast<long long>(n), static_cast<long long>(n), packed,
                 seed, packed / seed);
    first = false;
  }
  std::fprintf(f, "\n  ],\n  \"gemm_s8\": [\n");
  // Int8 vs fp32 at the same shapes, measured back-to-back in the same run
  // so the speedup column is self-consistent (README's perf table and the
  // kernels-bench CI gate read these numbers). An int8 MAC counts as one
  // "op", so the ratio is a true wall-clock speedup.
  first = true;
  for (const std::int64_t n : shapes) {
    const double int8_gops = time_gemm_s8_gops(n);
    const double fp32 = time_gemm_gflops(&gemm, n);
    std::printf("BM_GemmS8/%lld [%s]: int8 %.2f GOPS, fp32 %.2f GFLOP/s "
                "(%.2fx)\n",
                static_cast<long long>(n), gemm_s8_kernel_name(), int8_gops,
                fp32, int8_gops / fp32);
    std::fprintf(f,
                 "%s    {\"shape\": \"%lldx%lldx%lld\", "
                 "\"int8_gops\": %.3f, \"fp32_gflops\": %.3f, "
                 "\"speedup\": %.3f, \"kernel\": \"%s\"}",
                 first ? "" : ",\n", static_cast<long long>(n),
                 static_cast<long long>(n), static_cast<long long>(n),
                 int8_gops, fp32, int8_gops / fp32, gemm_s8_kernel_name());
    first = false;
  }
  std::fprintf(f, "\n  ],\n");

  {
    Rng rng(3);
    nn::Conv2d conv(32, 32, 3, 1, 1, false, rng);
    conv.set_training(false);
    const Tensor x = Tensor::rand_uniform({1, 32, 56, 56}, rng, -1.0f, 1.0f);
    const double fwd_us =
        time_us([&] { benchmark::DoNotOptimize(conv.forward(x).data()); }, 50);
    Rng rng2(4);
    nn::Conv2d conv_b(16, 16, 3, 1, 1, false, rng2);
    const Tensor xb = Tensor::rand_uniform({2, 16, 28, 28}, rng2, -1.0f, 1.0f);
    const Tensor y = conv_b.forward(xb);
    const Tensor g = Tensor::rand_uniform(y.shape(), rng2, -1.0f, 1.0f);
    const double bwd_us = time_us(
        [&] { benchmark::DoNotOptimize(conv_b.backward(g).data()); }, 50);
    std::printf("conv fwd (32x32x3, 56x56): %.1f us; conv bwd (16x16x3, "
                "2x28x28): %.1f us\n",
                fwd_us, bwd_us);
    std::fprintf(f,
                 "  \"conv_forward_us\": %.2f,\n  \"conv_backward_us\": %.2f\n",
                 fwd_us, bwd_us);
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_kernels.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = dcnas::bench::run(argc, argv, [] {
    std::printf("Tensor-substrate kernel microbenchmarks (GEMM, im2col, "
                "conv fwd/bwd, pooling,\nbatchnorm, softmax). items_per_"
                "second for BM_Gemm is FLOP/s.\nBM_GemmSeed is the "
                "pre-rewrite scalar kernel kept as the baseline the\n"
                "packed kernel is gated against (BENCH_kernels.json).\n");
  });
  if (rc == 0) write_bench_kernels_json();
  return rc;
}
