/// Ablation: NSGA-II multi-objective search vs random sampling at the same
/// unique-trial budget vs the paper's exhaustive 1,728-trial grid. Reports
/// front hypervolume and best accuracy per approach — quantifying the
/// "resource-efficient NAS" the paper's Discussion proposes.

#include "bench_common.hpp"
#include "dcnas/core/pipeline.hpp"
#include "dcnas/nas/nsga2.hpp"

using namespace dcnas;

namespace {

const pareto::Objectives kReference{70.0, 500.0, 50.0};

double front_hypervolume(const nas::TrialDatabase& db,
                         const std::vector<std::size_t>& front) {
  std::vector<pareto::Objectives> pts;
  for (std::size_t i : front) {
    const auto& r = db.record(i);
    if (r.accuracy >= kReference.accuracy &&
        r.latency_ms <= kReference.latency_ms &&
        r.memory_mb <= kReference.memory_mb) {
      pts.push_back({r.accuracy, r.latency_ms, r.memory_mb});
    }
  }
  return pts.empty() ? 0.0 : pareto::hypervolume(pts, kReference);
}

void BM_Nsga2Search(benchmark::State& state) {
  nas::OracleEvaluator eval;
  const nas::Experiment experiment(eval, latency::NnMeter::shared());
  std::uint64_t seed = 1;
  for (auto _ : state) {
    nas::Nsga2Options opt;
    opt.population_size = 24;
    opt.generations = 10;
    opt.seed = seed++;
    nas::Nsga2 search(experiment, opt);
    benchmark::DoNotOptimize(search.run().unique_evaluations);
  }
}
BENCHMARK(BM_Nsga2Search)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    nas::OracleEvaluator eval;
    const nas::Experiment experiment(eval, latency::NnMeter::shared());

    // NSGA-II, each generation batch-evaluated through the parallel
    // scheduler (same database as the serial constructor).
    nas::Nsga2Options opt;
    opt.population_size = 24;
    opt.generations = 10;
    opt.seed = 7;
    nas::TrialScheduler scheduler(experiment);
    nas::Nsga2 search(experiment, scheduler, opt);
    const nas::Nsga2Result evo = search.run();
    const double evo_hv = front_hypervolume(evo.evaluated, evo.front);

    // Random baseline with the same number of unique trials.
    Rng rng(7);
    auto lattice = nas::SearchSpace::enumerate_all();
    rng.shuffle(lattice);
    lattice.resize(evo.unique_evaluations);
    const nas::TrialDatabase random_db = experiment.run_all(lattice);
    std::vector<pareto::Objectives> random_pts;
    for (const auto& r : random_db.records()) {
      random_pts.push_back({r.accuracy, r.latency_ms, r.memory_mb});
    }
    const auto random_front =
        pareto::non_dominated_indices(random_pts, pareto::DominanceMode::kWeak);
    const double random_hv = front_hypervolume(random_db, random_front);

    // Exhaustive grid (the paper's protocol).
    core::HwNasPipeline pipeline;
    const auto grid = pipeline.run_full_sweep();
    std::vector<std::size_t> grid_front = grid.front_indices;
    const double grid_hv = front_hypervolume(grid.trials, grid_front);

    std::printf("Ablation: NSGA-II vs random vs exhaustive grid\n\n");
    std::printf("  %-12s %10s %12s %14s %10s\n", "search", "trials", "front",
                "hypervolume", "best acc");
    std::printf("  %-12s %10zu %12zu %14.0f %10.2f\n", "NSGA-II",
                evo.unique_evaluations, evo.front.size(), evo_hv,
                evo.evaluated.best_accuracy().accuracy);
    std::printf("  %-12s %10zu %12zu %14.0f %10.2f\n", "random",
                random_db.size(), random_front.size(), random_hv,
                random_db.best_accuracy().accuracy);
    std::printf("  %-12s %10zu %12zu %14.0f %10.2f\n", "grid (paper)",
                grid.trials.size(), grid_front.size(), grid_hv,
                grid.trials.best_accuracy().accuracy);
    std::printf("\nhypervolume progression (NSGA-II, per generation):");
    for (double hv : evo.hypervolume_history) std::printf(" %.0f", hv);
    std::printf("\n\nNSGA-II recovers ~%.0f%% of the grid's front "
                "hypervolume with ~%.0f%% of its trials.\n",
                100.0 * evo_hv / grid_hv,
                100.0 * static_cast<double>(evo.unique_evaluations) / 1728.0);
  });
}
