/// Ablation: kernel fusion's effect on predicted latency — nn-Meter's core
/// design claim. We compare the fused kernel sequence against a naive
/// per-operator decomposition (every Conv/BN/ReLU/Add dispatched alone) on
/// each device simulator.

#include "bench_common.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/latency/simulator.hpp"
#include "dcnas/nas/search_space.hpp"

using namespace dcnas;

namespace {

/// Unfused view: one kernel per graph op (what a runtime without operator
/// fusion would execute).
std::vector<graph::FusedKernel> unfused_kernels(const graph::ModelGraph& g) {
  std::vector<graph::FusedKernel> out;
  for (const auto& n : g.nodes()) {
    if (n.kind == graph::OpKind::kInput || n.kind == graph::OpKind::kOutput) {
      continue;
    }
    graph::FusedKernel k;
    k.name = n.name;
    k.in_shape = n.in_shape;
    k.out_shape = n.out_shape;
    k.attrs = n.attrs;
    k.flops = n.flops;
    k.params = n.params;
    switch (n.kind) {
      case graph::OpKind::kConv: k.kind = graph::KernelKind::kConv; break;
      case graph::OpKind::kBatchNorm:
        k.kind = graph::KernelKind::kBatchNorm;
        break;
      case graph::OpKind::kRelu: k.kind = graph::KernelKind::kRelu; break;
      case graph::OpKind::kMaxPool:
        k.kind = graph::KernelKind::kMaxPool;
        break;
      case graph::OpKind::kGlobalAvgPool:
        k.kind = graph::KernelKind::kGlobalAvgPool;
        break;
      case graph::OpKind::kAdd: k.kind = graph::KernelKind::kAdd; break;
      case graph::OpKind::kLinear: k.kind = graph::KernelKind::kLinear; break;
      default: continue;
    }
    out.push_back(std::move(k));
  }
  return out;
}

void BM_FuseGraph(benchmark::State& state) {
  const auto g = graph::build_resnet_graph(nn::ResNetConfig::baseline(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::fuse_graph(g).size());
  }
}
BENCHMARK(BM_FuseGraph)->Unit(benchmark::kMicrosecond);

void BM_SimulateFused(benchmark::State& state) {
  const auto g = graph::build_resnet_graph(nn::ResNetConfig::baseline(5));
  const auto kernels = graph::fuse_graph(g);
  const auto& device = latency::device_by_name("cortexA76cpu");
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency::simulate_model_ms(device, kernels));
  }
}
BENCHMARK(BM_SimulateFused)->Unit(benchmark::kMicrosecond);

void BM_SimulateUnfused(benchmark::State& state) {
  const auto g = graph::build_resnet_graph(nn::ResNetConfig::baseline(5));
  const auto kernels = unfused_kernels(g);
  const auto& device = latency::device_by_name("cortexA76cpu");
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency::simulate_model_ms(device, kernels));
  }
}
BENCHMARK(BM_SimulateUnfused)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    std::printf("Ablation: operator fusion vs naive per-op execution\n\n");
    for (const bool small : {false, true}) {
      nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
      if (small) {
        cfg.init_width = 32;
        cfg.conv1_kernel = 3;
        cfg.conv1_padding = 1;
      }
      const auto g = graph::build_resnet_graph(cfg);
      const auto fused = graph::fuse_graph(g);
      const auto naive = unfused_kernels(g);
      std::printf("%s: %zu ops -> %zu fused kernels\n",
                  small ? "width-32 winner" : "stock ResNet-18", naive.size(),
                  fused.size());
      for (const auto& device : latency::edge_device_zoo()) {
        const double f = latency::simulate_model_ms(device, fused);
        const double n = latency::simulate_model_ms(device, naive);
        std::printf("  %-14s fused %8.2f ms   unfused %8.2f ms   "
                    "(fusion saves %.0f%%)\n",
                    device.name.c_str(), f, n, 100.0 * (n - f) / n);
      }
    }
    std::printf("\nfusion-aware kernel decomposition is what makes "
                "kernel-level latency\nprediction match device behaviour "
                "(nn-Meter, MobiSys'21).\n");
  });
}
