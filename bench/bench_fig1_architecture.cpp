/// Figure 1 reproduction: the ResNet-18 architecture with 5- and 7-channel
/// inputs, plus model-construction and graph-building microbenchmarks.

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"
#include "dcnas/graph/serialize.hpp"

using namespace dcnas;

namespace {

void BM_ModelConstruction(benchmark::State& state) {
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = state.range(0);
  for (auto _ : state) {
    Rng rng(1);
    nn::ConfigurableResNet model(cfg, rng);
    benchmark::DoNotOptimize(model.num_params());
  }
}
BENCHMARK(BM_ModelConstruction)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_GraphBuild(benchmark::State& state) {
  const auto cfg = nn::ResNetConfig::baseline(7);
  for (auto _ : state) {
    const auto g = graph::build_resnet_graph(cfg);
    benchmark::DoNotOptimize(g.total_flops());
  }
}
BENCHMARK(BM_GraphBuild)->Unit(benchmark::kMicrosecond);

void BM_SerializedSize(benchmark::State& state) {
  const auto g = graph::build_resnet_graph(nn::ResNetConfig::baseline(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::serialized_size(g).total_bytes());
  }
}
BENCHMARK(BM_SerializedSize);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    std::printf("%s", core::fig1_text().c_str());
    const auto g5 = graph::build_resnet_graph(nn::ResNetConfig::baseline(5));
    const auto g7 = graph::build_resnet_graph(nn::ResNetConfig::baseline(7));
    std::printf("serialized model: %.2f MB (5ch) / %.2f MB (7ch) — paper "
                "Table 5: 44.71 / 44.73 MB\n",
                graph::model_memory_mb(g5), graph::model_memory_mb(g7));
  });
}
