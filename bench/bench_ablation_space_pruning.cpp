/// Ablation for §5 observation (2): "confining the padding size to 1 can
/// effectively curtail the combination permutations" — we run the full
/// sweep and the padding-1-restricted sweep and compare front quality,
/// best accuracy, and trial counts.

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"

using namespace dcnas;

namespace {

std::vector<nas::TrialConfig> padding1_lattice() {
  std::vector<nas::TrialConfig> out;
  for (const auto& c : nas::SearchSpace::enumerate_all()) {
    if (c.padding == 1) out.push_back(c);
  }
  return out;
}

void BM_FullLatticeSweep(benchmark::State& state) {
  core::HwNasPipeline pipeline;
  const auto configs = nas::SearchSpace::enumerate_all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run_sweep(configs).front_indices.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_FullLatticeSweep)->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_PrunedLatticeSweep(benchmark::State& state) {
  core::HwNasPipeline pipeline;
  const auto configs = padding1_lattice();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run_sweep(configs).front_indices.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_PrunedLatticeSweep)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    core::HwNasPipeline pipeline;
    const auto full = pipeline.run_full_sweep();
    const auto pruned = pipeline.run_sweep(padding1_lattice());

    auto best_of = [](const core::SweepResult& s) {
      return s.trials.best_accuracy().accuracy;
    };
    auto fastest_of = [](const core::SweepResult& s) {
      double f = 1e18;
      for (auto i : s.front_indices) {
        f = std::min(f, s.trials.record(i).latency_ms);
      }
      return f;
    };
    std::printf("Ablation: search-space pruning (padding fixed to 1)\n\n");
    std::printf("  %-22s %10s %10s %12s %12s\n", "space", "trials", "front",
                "best acc(%)", "fastest(ms)");
    std::printf("  %-22s %10zu %10zu %12.2f %12.2f\n", "full (Fig. 2)",
                full.trials.size(), full.front_indices.size(), best_of(full),
                fastest_of(full));
    std::printf("  %-22s %10zu %10zu %12.2f %12.2f\n", "padding==1",
                pruned.trials.size(), pruned.front_indices.size(),
                best_of(pruned), fastest_of(pruned));
    std::printf("\npruning removes 2/3 of the lattice while keeping best "
                "accuracy within %.2f points\nand the fastest Pareto model "
                "within %.2f ms — supporting the paper's Discussion.\n",
                best_of(full) - best_of(pruned),
                fastest_of(pruned) - fastest_of(full));
  });
}
