/// Table 2 reproduction: ±10% accuracy of the four nn-Meter-style latency
/// predictors against the device simulators, plus microbenchmarks of
/// predictor training and inference.

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"
#include "dcnas/latency/features.hpp"
#include "dcnas/latency/simulator.hpp"

using namespace dcnas;

namespace {

void BM_PredictorTraining(benchmark::State& state) {
  const auto& device = latency::edge_device_zoo()[
      static_cast<std::size_t>(state.range(0))];
  latency::PredictorTrainOptions opt;
  opt.samples_per_kind = 300;  // reduced for the microbenchmark
  for (auto _ : state) {
    latency::LatencyPredictor p(device);
    p.train(opt);
    benchmark::DoNotOptimize(p.trained());
  }
  state.SetLabel(device.name);
}
BENCHMARK(BM_PredictorTraining)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_KernelPrediction(benchmark::State& state) {
  const auto& p = latency::NnMeter::shared().predictor("cortexA76cpu");
  Rng rng(7);
  const auto kernel =
      latency::sample_kernel(graph::KernelKind::kConvBnRelu, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.predict_kernel_ms(kernel));
  }
}
BENCHMARK(BM_KernelPrediction);

void BM_ModelPrediction(benchmark::State& state) {
  const auto kernels = graph::fuse_graph(
      graph::build_resnet_graph(nn::ResNetConfig::baseline(5)));
  const auto& meter = latency::NnMeter::shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(meter.predict_kernels(kernels).mean_ms);
  }
  state.SetLabel("stock ResNet-18, 4 devices");
}
BENCHMARK(BM_ModelPrediction)->Unit(benchmark::kMicrosecond);

void BM_DeviceSimulation(benchmark::State& state) {
  const auto kernels = graph::fuse_graph(
      graph::build_resnet_graph(nn::ResNetConfig::baseline(5)));
  const auto& device = latency::device_by_name("myriadvpu");
  for (auto _ : state) {
    benchmark::DoNotOptimize(latency::simulate_model_ms(device, kernels));
  }
}
BENCHMARK(BM_DeviceSimulation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    std::printf("%s\n",
                core::table2_text(latency::NnMeter::shared(), 150).c_str());
    std::printf("RMSPE per predictor (held-out kernels):\n");
    for (const auto& p : latency::NnMeter::shared().predictors()) {
      const auto acc = p.evaluate_kernel_level(150, 424242);
      std::printf("  %-14s rmspe %.3f over %zu kernels\n",
                  p.device().name.c_str(), acc.rmspe, acc.num_samples);
    }
  });
}
