/// Table 4 reproduction: the non-dominated solutions of the three-objective
/// Pareto analysis, under both dominance relations (see pareto.hpp for why
/// the paper's five winners imply a strict-all-style filter), plus Pareto
/// machinery microbenchmarks.

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"

using namespace dcnas;

namespace {

std::vector<pareto::Objectives> sweep_objectives() {
  static const std::vector<pareto::Objectives> objectives = [] {
    core::HwNasPipeline pipeline;
    return pipeline.run_full_sweep().objectives;
  }();
  return objectives;
}

void BM_NonDominatedFilter(benchmark::State& state) {
  const auto pts = sweep_objectives();
  const auto mode = state.range(0) == 0 ? pareto::DominanceMode::kWeak
                                        : pareto::DominanceMode::kStrictAll;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::non_dominated_indices(pts, mode).size());
  }
  state.SetLabel(state.range(0) == 0 ? "weak" : "strict-all");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_NonDominatedFilter)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FastNonDominatedSort(benchmark::State& state) {
  const auto pts = sweep_objectives();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pareto::fast_non_dominated_sort(pts, pareto::DominanceMode::kWeak)
            .size());
  }
}
BENCHMARK(BM_FastNonDominatedSort)->Unit(benchmark::kMillisecond);

void BM_Hypervolume(benchmark::State& state) {
  const auto pts = sweep_objectives();
  const auto front =
      pareto::non_dominated_indices(pts, pareto::DominanceMode::kWeak);
  std::vector<pareto::Objectives> front_pts;
  for (auto i : front) front_pts.push_back(pts[i]);
  const pareto::Objectives ref{70.0, 500.0, 50.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::hypervolume(front_pts, ref));
  }
}
BENCHMARK(BM_Hypervolume)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    core::HwNasPipeline pipeline;
    const auto sweep = pipeline.run_full_sweep();
    std::printf("%s\n", core::table4_text(sweep).c_str());
    const auto strict = pareto::non_dominated_indices(
        sweep.objectives, pareto::DominanceMode::kStrictAll);
    const auto front_pts = [&] {
      std::vector<pareto::Objectives> v;
      for (auto i : sweep.front_indices) v.push_back(sweep.objectives[i]);
      return v;
    }();
    std::printf("dominance comparison: weak front %zu members, strict-all "
                "front %zu members\n(the paper reports 5; its memory "
                "objective was byte-continuous file size)\n",
                sweep.front_indices.size(), strict.size());
    std::printf("front hypervolume vs ref(acc 70%%, 500 ms, 50 MB): %.1f\n",
                pareto::hypervolume(front_pts,
                                    pareto::Objectives{70.0, 500.0, 50.0}));
  });
}
