/// Figure 3 reproduction: the three-objective scatter with the
/// non-dominated points highlighted — ASCII projections here, full data in
/// fig3_scatter.csv — plus normalization/export microbenchmarks.

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"

using namespace dcnas;

namespace {

const core::SweepResult& shared_sweep() {
  static const core::SweepResult sweep = [] {
    // Full 1,728-trial sweep through the parallel scheduler; pruning stays
    // off, so the result is byte-identical to the serial path.
    core::PipelineOptions options;
    options.use_scheduler = true;
    core::HwNasPipeline pipeline(options);
    return pipeline.run_full_sweep();
  }();
  return sweep;
}

void BM_Normalize(benchmark::State& state) {
  const auto& pts = shared_sweep().objectives;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto::normalize(pts).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_Normalize)->Unit(benchmark::kMicrosecond);

void BM_ScatterCsv(benchmark::State& state) {
  const auto& sweep = shared_sweep();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pareto::scatter_csv(sweep.objectives, sweep.front_indices)
            .num_rows());
  }
}
BENCHMARK(BM_ScatterCsv)->Unit(benchmark::kMillisecond);

void BM_AsciiScatter(benchmark::State& state) {
  const auto& sweep = shared_sweep();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pareto::ascii_scatter(sweep.objectives, sweep.front_indices,
                              "latency-accuracy")
            .size());
  }
}
BENCHMARK(BM_AsciiScatter)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    const auto& sweep = shared_sweep();
    std::printf("%s", core::fig3_text(sweep).c_str());
    pareto::scatter_csv(sweep.objectives, sweep.front_indices)
        .save("fig3_scatter.csv");
    std::printf("full scatter written to fig3_scatter.csv (%zu rows)\n",
                sweep.objectives.size());
  });
}
