/// Table 1 reproduction: study regions, data sources, and chip counts —
/// plus microbenchmarks of the synthetic data substrate that stands in for
/// the HRDEM/NAIP downloads.

#include "bench_common.hpp"
#include "dcnas/core/report.hpp"
#include "dcnas/geodata/dataset.hpp"

using namespace dcnas;

namespace {

void BM_SceneSynthesis(benchmark::State& state) {
  geodata::SceneOptions opt;
  opt.size = state.range(0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto scene = geodata::synthesize_scene(opt, seed++);
    benchmark::DoNotOptimize(scene.crossings.size());
  }
  state.SetItemsProcessed(state.iterations() * opt.size * opt.size);
}
BENCHMARK(BM_SceneSynthesis)->Arg(128)->Arg(192)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_FlowAccumulation(benchmark::State& state) {
  geodata::TerrainOptions topt;
  topt.height = state.range(0);
  topt.width = state.range(0);
  const auto dem = geodata::synthesize_dem(topt, 3);
  for (auto _ : state) {
    const auto acc = geodata::flow_accumulation(dem);
    benchmark::DoNotOptimize(acc.data().data());
  }
  state.SetItemsProcessed(state.iterations() * topt.height * topt.width);
}
BENCHMARK(BM_FlowAccumulation)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_DatasetBuild(benchmark::State& state) {
  geodata::DatasetOptions opt;
  opt.scale = 1.0 / 256.0;
  opt.chip_size = 24;
  opt.scene_size = 160;
  for (auto _ : state) {
    const auto ds = geodata::build_dataset(opt);
    benchmark::DoNotOptimize(ds.size());
    state.counters["chips"] = static_cast<double>(ds.size());
  }
}
BENCHMARK(BM_DatasetBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dcnas::bench::run(argc, argv, [] {
    std::printf("%s\n", core::table1_text().c_str());
    // Demonstrate the scaled synthetic build that mirrors these counts.
    geodata::DatasetOptions opt;
    opt.scale = 1.0 / 64.0;
    opt.chip_size = 24;
    opt.scene_size = 160;
    const auto ds = geodata::build_dataset(opt);
    std::printf("synthetic build at scale 1/64 (chips of %lldpx, %d "
                "channels):\n",
                static_cast<long long>(ds.chip_size), ds.channels);
    for (const auto& r : ds.per_region) {
      std::printf("  %-14s %4lld true / %4lld false\n", r.name.c_str(),
                  static_cast<long long>(r.true_chips),
                  static_cast<long long>(r.false_chips));
    }
    std::printf("  total %lld chips (paper: 12,068 at full scale)\n",
                static_cast<long long>(ds.size()));
  });
}
