# CMake generated Testfile for 
# Source directory: /root/repo/tests/geodata
# Build directory: /root/repo/build/tests/geodata
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geodata/test_geodata[1]_include.cmake")
