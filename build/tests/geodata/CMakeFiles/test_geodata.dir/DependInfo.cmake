
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geodata/augment_test.cpp" "tests/geodata/CMakeFiles/test_geodata.dir/augment_test.cpp.o" "gcc" "tests/geodata/CMakeFiles/test_geodata.dir/augment_test.cpp.o.d"
  "/root/repo/tests/geodata/dataset_test.cpp" "tests/geodata/CMakeFiles/test_geodata.dir/dataset_test.cpp.o" "gcc" "tests/geodata/CMakeFiles/test_geodata.dir/dataset_test.cpp.o.d"
  "/root/repo/tests/geodata/hydrology_test.cpp" "tests/geodata/CMakeFiles/test_geodata.dir/hydrology_test.cpp.o" "gcc" "tests/geodata/CMakeFiles/test_geodata.dir/hydrology_test.cpp.o.d"
  "/root/repo/tests/geodata/kfold_test.cpp" "tests/geodata/CMakeFiles/test_geodata.dir/kfold_test.cpp.o" "gcc" "tests/geodata/CMakeFiles/test_geodata.dir/kfold_test.cpp.o.d"
  "/root/repo/tests/geodata/scene_test.cpp" "tests/geodata/CMakeFiles/test_geodata.dir/scene_test.cpp.o" "gcc" "tests/geodata/CMakeFiles/test_geodata.dir/scene_test.cpp.o.d"
  "/root/repo/tests/geodata/terrain_test.cpp" "tests/geodata/CMakeFiles/test_geodata.dir/terrain_test.cpp.o" "gcc" "tests/geodata/CMakeFiles/test_geodata.dir/terrain_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geodata/CMakeFiles/dcnas_geodata.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
