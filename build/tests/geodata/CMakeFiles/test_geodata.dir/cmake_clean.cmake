file(REMOVE_RECURSE
  "CMakeFiles/test_geodata.dir/augment_test.cpp.o"
  "CMakeFiles/test_geodata.dir/augment_test.cpp.o.d"
  "CMakeFiles/test_geodata.dir/dataset_test.cpp.o"
  "CMakeFiles/test_geodata.dir/dataset_test.cpp.o.d"
  "CMakeFiles/test_geodata.dir/hydrology_test.cpp.o"
  "CMakeFiles/test_geodata.dir/hydrology_test.cpp.o.d"
  "CMakeFiles/test_geodata.dir/kfold_test.cpp.o"
  "CMakeFiles/test_geodata.dir/kfold_test.cpp.o.d"
  "CMakeFiles/test_geodata.dir/scene_test.cpp.o"
  "CMakeFiles/test_geodata.dir/scene_test.cpp.o.d"
  "CMakeFiles/test_geodata.dir/terrain_test.cpp.o"
  "CMakeFiles/test_geodata.dir/terrain_test.cpp.o.d"
  "test_geodata"
  "test_geodata.pdb"
  "test_geodata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geodata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
