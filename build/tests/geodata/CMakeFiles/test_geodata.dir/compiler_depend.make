# Empty compiler generated dependencies file for test_geodata.
# This may be replaced when dependencies are built.
