# CMake generated Testfile for 
# Source directory: /root/repo/tests/latency
# Build directory: /root/repo/build/tests/latency
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/latency/test_latency[1]_include.cmake")
