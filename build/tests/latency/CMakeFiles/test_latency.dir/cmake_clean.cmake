file(REMOVE_RECURSE
  "CMakeFiles/test_latency.dir/calibration_test.cpp.o"
  "CMakeFiles/test_latency.dir/calibration_test.cpp.o.d"
  "CMakeFiles/test_latency.dir/device_test.cpp.o"
  "CMakeFiles/test_latency.dir/device_test.cpp.o.d"
  "CMakeFiles/test_latency.dir/forest_test.cpp.o"
  "CMakeFiles/test_latency.dir/forest_test.cpp.o.d"
  "CMakeFiles/test_latency.dir/model_space_property_test.cpp.o"
  "CMakeFiles/test_latency.dir/model_space_property_test.cpp.o.d"
  "CMakeFiles/test_latency.dir/persistence_test.cpp.o"
  "CMakeFiles/test_latency.dir/persistence_test.cpp.o.d"
  "CMakeFiles/test_latency.dir/predictor_test.cpp.o"
  "CMakeFiles/test_latency.dir/predictor_test.cpp.o.d"
  "CMakeFiles/test_latency.dir/simulator_test.cpp.o"
  "CMakeFiles/test_latency.dir/simulator_test.cpp.o.d"
  "test_latency"
  "test_latency.pdb"
  "test_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
