
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor/gemm_test.cpp" "tests/tensor/CMakeFiles/test_tensor.dir/gemm_test.cpp.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/gemm_test.cpp.o.d"
  "/root/repo/tests/tensor/im2col_test.cpp" "tests/tensor/CMakeFiles/test_tensor.dir/im2col_test.cpp.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/im2col_test.cpp.o.d"
  "/root/repo/tests/tensor/ops_test.cpp" "tests/tensor/CMakeFiles/test_tensor.dir/ops_test.cpp.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/ops_test.cpp.o.d"
  "/root/repo/tests/tensor/tensor_test.cpp" "tests/tensor/CMakeFiles/test_tensor.dir/tensor_test.cpp.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
