file(REMOVE_RECURSE
  "CMakeFiles/test_pareto.dir/export_test.cpp.o"
  "CMakeFiles/test_pareto.dir/export_test.cpp.o.d"
  "CMakeFiles/test_pareto.dir/pareto_test.cpp.o"
  "CMakeFiles/test_pareto.dir/pareto_test.cpp.o.d"
  "test_pareto"
  "test_pareto.pdb"
  "test_pareto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
