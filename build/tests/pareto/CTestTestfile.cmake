# CMake generated Testfile for 
# Source directory: /root/repo/tests/pareto
# Build directory: /root/repo/build/tests/pareto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pareto/test_pareto[1]_include.cmake")
