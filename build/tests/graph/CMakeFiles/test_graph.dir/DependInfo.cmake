
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/builder_test.cpp" "tests/graph/CMakeFiles/test_graph.dir/builder_test.cpp.o" "gcc" "tests/graph/CMakeFiles/test_graph.dir/builder_test.cpp.o.d"
  "/root/repo/tests/graph/executor_test.cpp" "tests/graph/CMakeFiles/test_graph.dir/executor_test.cpp.o" "gcc" "tests/graph/CMakeFiles/test_graph.dir/executor_test.cpp.o.d"
  "/root/repo/tests/graph/fusion_test.cpp" "tests/graph/CMakeFiles/test_graph.dir/fusion_test.cpp.o" "gcc" "tests/graph/CMakeFiles/test_graph.dir/fusion_test.cpp.o.d"
  "/root/repo/tests/graph/ir_test.cpp" "tests/graph/CMakeFiles/test_graph.dir/ir_test.cpp.o" "gcc" "tests/graph/CMakeFiles/test_graph.dir/ir_test.cpp.o.d"
  "/root/repo/tests/graph/model_file_test.cpp" "tests/graph/CMakeFiles/test_graph.dir/model_file_test.cpp.o" "gcc" "tests/graph/CMakeFiles/test_graph.dir/model_file_test.cpp.o.d"
  "/root/repo/tests/graph/serialize_test.cpp" "tests/graph/CMakeFiles/test_graph.dir/serialize_test.cpp.o" "gcc" "tests/graph/CMakeFiles/test_graph.dir/serialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dcnas_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
