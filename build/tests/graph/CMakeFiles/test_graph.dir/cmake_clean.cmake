file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/builder_test.cpp.o"
  "CMakeFiles/test_graph.dir/builder_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/executor_test.cpp.o"
  "CMakeFiles/test_graph.dir/executor_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/fusion_test.cpp.o"
  "CMakeFiles/test_graph.dir/fusion_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/ir_test.cpp.o"
  "CMakeFiles/test_graph.dir/ir_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/model_file_test.cpp.o"
  "CMakeFiles/test_graph.dir/model_file_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/serialize_test.cpp.o"
  "CMakeFiles/test_graph.dir/serialize_test.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
