file(REMOVE_RECURSE
  "CMakeFiles/test_nas.dir/evaluator_test.cpp.o"
  "CMakeFiles/test_nas.dir/evaluator_test.cpp.o.d"
  "CMakeFiles/test_nas.dir/experiment_test.cpp.o"
  "CMakeFiles/test_nas.dir/experiment_test.cpp.o.d"
  "CMakeFiles/test_nas.dir/nsga2_test.cpp.o"
  "CMakeFiles/test_nas.dir/nsga2_test.cpp.o.d"
  "CMakeFiles/test_nas.dir/oracle_test.cpp.o"
  "CMakeFiles/test_nas.dir/oracle_test.cpp.o.d"
  "CMakeFiles/test_nas.dir/search_space_test.cpp.o"
  "CMakeFiles/test_nas.dir/search_space_test.cpp.o.d"
  "CMakeFiles/test_nas.dir/strategies_test.cpp.o"
  "CMakeFiles/test_nas.dir/strategies_test.cpp.o.d"
  "test_nas"
  "test_nas.pdb"
  "test_nas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
