
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nas/evaluator_test.cpp" "tests/nas/CMakeFiles/test_nas.dir/evaluator_test.cpp.o" "gcc" "tests/nas/CMakeFiles/test_nas.dir/evaluator_test.cpp.o.d"
  "/root/repo/tests/nas/experiment_test.cpp" "tests/nas/CMakeFiles/test_nas.dir/experiment_test.cpp.o" "gcc" "tests/nas/CMakeFiles/test_nas.dir/experiment_test.cpp.o.d"
  "/root/repo/tests/nas/nsga2_test.cpp" "tests/nas/CMakeFiles/test_nas.dir/nsga2_test.cpp.o" "gcc" "tests/nas/CMakeFiles/test_nas.dir/nsga2_test.cpp.o.d"
  "/root/repo/tests/nas/oracle_test.cpp" "tests/nas/CMakeFiles/test_nas.dir/oracle_test.cpp.o" "gcc" "tests/nas/CMakeFiles/test_nas.dir/oracle_test.cpp.o.d"
  "/root/repo/tests/nas/search_space_test.cpp" "tests/nas/CMakeFiles/test_nas.dir/search_space_test.cpp.o" "gcc" "tests/nas/CMakeFiles/test_nas.dir/search_space_test.cpp.o.d"
  "/root/repo/tests/nas/strategies_test.cpp" "tests/nas/CMakeFiles/test_nas.dir/strategies_test.cpp.o" "gcc" "tests/nas/CMakeFiles/test_nas.dir/strategies_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nas/CMakeFiles/dcnas_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/latency/CMakeFiles/dcnas_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcnas_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/geodata/CMakeFiles/dcnas_geodata.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/dcnas_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
