# CMake generated Testfile for 
# Source directory: /root/repo/tests/nas
# Build directory: /root/repo/build/tests/nas
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nas/test_nas[1]_include.cmake")
