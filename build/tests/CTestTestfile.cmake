# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("nn")
subdirs("graph")
subdirs("latency")
subdirs("geodata")
subdirs("nas")
subdirs("pareto")
subdirs("core")
