
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/conv_reference_test.cpp" "tests/nn/CMakeFiles/test_nn.dir/conv_reference_test.cpp.o" "gcc" "tests/nn/CMakeFiles/test_nn.dir/conv_reference_test.cpp.o.d"
  "/root/repo/tests/nn/gradcheck_test.cpp" "tests/nn/CMakeFiles/test_nn.dir/gradcheck_test.cpp.o" "gcc" "tests/nn/CMakeFiles/test_nn.dir/gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn/layers_test.cpp" "tests/nn/CMakeFiles/test_nn.dir/layers_test.cpp.o" "gcc" "tests/nn/CMakeFiles/test_nn.dir/layers_test.cpp.o.d"
  "/root/repo/tests/nn/loss_optim_test.cpp" "tests/nn/CMakeFiles/test_nn.dir/loss_optim_test.cpp.o" "gcc" "tests/nn/CMakeFiles/test_nn.dir/loss_optim_test.cpp.o.d"
  "/root/repo/tests/nn/metrics_test.cpp" "tests/nn/CMakeFiles/test_nn.dir/metrics_test.cpp.o" "gcc" "tests/nn/CMakeFiles/test_nn.dir/metrics_test.cpp.o.d"
  "/root/repo/tests/nn/resnet_test.cpp" "tests/nn/CMakeFiles/test_nn.dir/resnet_test.cpp.o" "gcc" "tests/nn/CMakeFiles/test_nn.dir/resnet_test.cpp.o.d"
  "/root/repo/tests/nn/trainer_test.cpp" "tests/nn/CMakeFiles/test_nn.dir/trainer_test.cpp.o" "gcc" "tests/nn/CMakeFiles/test_nn.dir/trainer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dcnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
