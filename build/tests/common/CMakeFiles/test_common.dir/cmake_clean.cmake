file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/cli_test.cpp.o"
  "CMakeFiles/test_common.dir/cli_test.cpp.o.d"
  "CMakeFiles/test_common.dir/csv_test.cpp.o"
  "CMakeFiles/test_common.dir/csv_test.cpp.o.d"
  "CMakeFiles/test_common.dir/profiler_test.cpp.o"
  "CMakeFiles/test_common.dir/profiler_test.cpp.o.d"
  "CMakeFiles/test_common.dir/rng_test.cpp.o"
  "CMakeFiles/test_common.dir/rng_test.cpp.o.d"
  "CMakeFiles/test_common.dir/stats_test.cpp.o"
  "CMakeFiles/test_common.dir/stats_test.cpp.o.d"
  "CMakeFiles/test_common.dir/strings_test.cpp.o"
  "CMakeFiles/test_common.dir/strings_test.cpp.o.d"
  "CMakeFiles/test_common.dir/thread_pool_test.cpp.o"
  "CMakeFiles/test_common.dir/thread_pool_test.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
