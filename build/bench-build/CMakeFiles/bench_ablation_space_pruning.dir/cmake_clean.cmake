file(REMOVE_RECURSE
  "../bench/bench_ablation_space_pruning"
  "../bench/bench_ablation_space_pruning.pdb"
  "CMakeFiles/bench_ablation_space_pruning.dir/bench_ablation_space_pruning.cpp.o"
  "CMakeFiles/bench_ablation_space_pruning.dir/bench_ablation_space_pruning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_space_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
