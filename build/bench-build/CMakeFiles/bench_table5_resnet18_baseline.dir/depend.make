# Empty dependencies file for bench_table5_resnet18_baseline.
# This may be replaced when dependencies are built.
