file(REMOVE_RECURSE
  "../bench/bench_table5_resnet18_baseline"
  "../bench/bench_table5_resnet18_baseline.pdb"
  "CMakeFiles/bench_table5_resnet18_baseline.dir/bench_table5_resnet18_baseline.cpp.o"
  "CMakeFiles/bench_table5_resnet18_baseline.dir/bench_table5_resnet18_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_resnet18_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
