
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_dataset.cpp" "bench-build/CMakeFiles/bench_table1_dataset.dir/bench_table1_dataset.cpp.o" "gcc" "bench-build/CMakeFiles/bench_table1_dataset.dir/bench_table1_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcnas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/dcnas_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/latency/CMakeFiles/dcnas_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcnas_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/geodata/CMakeFiles/dcnas_geodata.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/dcnas_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
