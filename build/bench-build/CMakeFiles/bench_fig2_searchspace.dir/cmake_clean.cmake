file(REMOVE_RECURSE
  "../bench/bench_fig2_searchspace"
  "../bench/bench_fig2_searchspace.pdb"
  "CMakeFiles/bench_fig2_searchspace.dir/bench_fig2_searchspace.cpp.o"
  "CMakeFiles/bench_fig2_searchspace.dir/bench_fig2_searchspace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_searchspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
