file(REMOVE_RECURSE
  "../bench/bench_table2_predictors"
  "../bench/bench_table2_predictors.pdb"
  "CMakeFiles/bench_table2_predictors.dir/bench_table2_predictors.cpp.o"
  "CMakeFiles/bench_table2_predictors.dir/bench_table2_predictors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
