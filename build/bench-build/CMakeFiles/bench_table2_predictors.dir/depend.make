# Empty dependencies file for bench_table2_predictors.
# This may be replaced when dependencies are built.
