file(REMOVE_RECURSE
  "../bench/bench_fig3_pareto_scatter"
  "../bench/bench_fig3_pareto_scatter.pdb"
  "CMakeFiles/bench_fig3_pareto_scatter.dir/bench_fig3_pareto_scatter.cpp.o"
  "CMakeFiles/bench_fig3_pareto_scatter.dir/bench_fig3_pareto_scatter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pareto_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
