# Empty dependencies file for bench_ablation_nsga2.
# This may be replaced when dependencies are built.
