file(REMOVE_RECURSE
  "../bench/bench_ablation_nsga2"
  "../bench/bench_ablation_nsga2.pdb"
  "CMakeFiles/bench_ablation_nsga2.dir/bench_ablation_nsga2.cpp.o"
  "CMakeFiles/bench_ablation_nsga2.dir/bench_ablation_nsga2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nsga2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
