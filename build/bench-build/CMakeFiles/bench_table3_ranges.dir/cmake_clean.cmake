file(REMOVE_RECURSE
  "../bench/bench_table3_ranges"
  "../bench/bench_table3_ranges.pdb"
  "CMakeFiles/bench_table3_ranges.dir/bench_table3_ranges.cpp.o"
  "CMakeFiles/bench_table3_ranges.dir/bench_table3_ranges.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
