file(REMOVE_RECURSE
  "../bench/bench_fig4_radar"
  "../bench/bench_fig4_radar.pdb"
  "CMakeFiles/bench_fig4_radar.dir/bench_fig4_radar.cpp.o"
  "CMakeFiles/bench_fig4_radar.dir/bench_fig4_radar.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
