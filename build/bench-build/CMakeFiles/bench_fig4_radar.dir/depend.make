# Empty dependencies file for bench_fig4_radar.
# This may be replaced when dependencies are built.
