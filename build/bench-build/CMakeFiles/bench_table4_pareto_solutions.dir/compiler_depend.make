# Empty compiler generated dependencies file for bench_table4_pareto_solutions.
# This may be replaced when dependencies are built.
