file(REMOVE_RECURSE
  "../bench/bench_table4_pareto_solutions"
  "../bench/bench_table4_pareto_solutions.pdb"
  "CMakeFiles/bench_table4_pareto_solutions.dir/bench_table4_pareto_solutions.cpp.o"
  "CMakeFiles/bench_table4_pareto_solutions.dir/bench_table4_pareto_solutions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_pareto_solutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
