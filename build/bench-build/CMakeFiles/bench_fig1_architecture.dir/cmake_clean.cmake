file(REMOVE_RECURSE
  "../bench/bench_fig1_architecture"
  "../bench/bench_fig1_architecture.pdb"
  "CMakeFiles/bench_fig1_architecture.dir/bench_fig1_architecture.cpp.o"
  "CMakeFiles/bench_fig1_architecture.dir/bench_fig1_architecture.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
