# Empty compiler generated dependencies file for train_real_model.
# This may be replaced when dependencies are built.
