file(REMOVE_RECURSE
  "CMakeFiles/train_real_model.dir/train_real_model.cpp.o"
  "CMakeFiles/train_real_model.dir/train_real_model.cpp.o.d"
  "train_real_model"
  "train_real_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_real_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
