# Empty compiler generated dependencies file for drainage_pipeline.
# This may be replaced when dependencies are built.
