# Empty dependencies file for drainage_pipeline.
# This may be replaced when dependencies are built.
