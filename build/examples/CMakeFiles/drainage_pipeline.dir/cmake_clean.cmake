file(REMOVE_RECURSE
  "CMakeFiles/drainage_pipeline.dir/drainage_pipeline.cpp.o"
  "CMakeFiles/drainage_pipeline.dir/drainage_pipeline.cpp.o.d"
  "drainage_pipeline"
  "drainage_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drainage_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
