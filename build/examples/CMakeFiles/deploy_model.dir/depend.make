# Empty dependencies file for deploy_model.
# This may be replaced when dependencies are built.
