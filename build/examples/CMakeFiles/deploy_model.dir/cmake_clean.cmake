file(REMOVE_RECURSE
  "CMakeFiles/deploy_model.dir/deploy_model.cpp.o"
  "CMakeFiles/deploy_model.dir/deploy_model.cpp.o.d"
  "deploy_model"
  "deploy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
