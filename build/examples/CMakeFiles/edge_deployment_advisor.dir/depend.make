# Empty dependencies file for edge_deployment_advisor.
# This may be replaced when dependencies are built.
