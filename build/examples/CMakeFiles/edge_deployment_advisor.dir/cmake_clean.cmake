file(REMOVE_RECURSE
  "CMakeFiles/edge_deployment_advisor.dir/edge_deployment_advisor.cpp.o"
  "CMakeFiles/edge_deployment_advisor.dir/edge_deployment_advisor.cpp.o.d"
  "edge_deployment_advisor"
  "edge_deployment_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_deployment_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
