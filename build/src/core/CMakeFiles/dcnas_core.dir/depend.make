# Empty dependencies file for dcnas_core.
# This may be replaced when dependencies are built.
