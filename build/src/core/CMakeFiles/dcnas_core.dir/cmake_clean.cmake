file(REMOVE_RECURSE
  "CMakeFiles/dcnas_core.dir/src/pipeline.cpp.o"
  "CMakeFiles/dcnas_core.dir/src/pipeline.cpp.o.d"
  "CMakeFiles/dcnas_core.dir/src/report.cpp.o"
  "CMakeFiles/dcnas_core.dir/src/report.cpp.o.d"
  "libdcnas_core.a"
  "libdcnas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
