file(REMOVE_RECURSE
  "libdcnas_core.a"
)
