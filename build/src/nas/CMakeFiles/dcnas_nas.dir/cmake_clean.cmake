file(REMOVE_RECURSE
  "CMakeFiles/dcnas_nas.dir/src/evaluator.cpp.o"
  "CMakeFiles/dcnas_nas.dir/src/evaluator.cpp.o.d"
  "CMakeFiles/dcnas_nas.dir/src/experiment.cpp.o"
  "CMakeFiles/dcnas_nas.dir/src/experiment.cpp.o.d"
  "CMakeFiles/dcnas_nas.dir/src/nsga2.cpp.o"
  "CMakeFiles/dcnas_nas.dir/src/nsga2.cpp.o.d"
  "CMakeFiles/dcnas_nas.dir/src/oracle.cpp.o"
  "CMakeFiles/dcnas_nas.dir/src/oracle.cpp.o.d"
  "CMakeFiles/dcnas_nas.dir/src/search_space.cpp.o"
  "CMakeFiles/dcnas_nas.dir/src/search_space.cpp.o.d"
  "CMakeFiles/dcnas_nas.dir/src/strategies.cpp.o"
  "CMakeFiles/dcnas_nas.dir/src/strategies.cpp.o.d"
  "libdcnas_nas.a"
  "libdcnas_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
