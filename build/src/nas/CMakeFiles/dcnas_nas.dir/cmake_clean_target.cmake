file(REMOVE_RECURSE
  "libdcnas_nas.a"
)
