# Empty dependencies file for dcnas_nas.
# This may be replaced when dependencies are built.
