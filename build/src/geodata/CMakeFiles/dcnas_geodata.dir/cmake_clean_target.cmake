file(REMOVE_RECURSE
  "libdcnas_geodata.a"
)
