file(REMOVE_RECURSE
  "CMakeFiles/dcnas_geodata.dir/src/augment.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/augment.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/dataset.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/dataset.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/grid.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/grid.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/hydrology.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/hydrology.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/indices.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/indices.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/infrastructure.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/infrastructure.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/kfold.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/kfold.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/ortho.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/ortho.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/region.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/region.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/scene.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/scene.cpp.o.d"
  "CMakeFiles/dcnas_geodata.dir/src/terrain.cpp.o"
  "CMakeFiles/dcnas_geodata.dir/src/terrain.cpp.o.d"
  "libdcnas_geodata.a"
  "libdcnas_geodata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_geodata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
