# Empty compiler generated dependencies file for dcnas_geodata.
# This may be replaced when dependencies are built.
