
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geodata/src/augment.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/augment.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/augment.cpp.o.d"
  "/root/repo/src/geodata/src/dataset.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/dataset.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/dataset.cpp.o.d"
  "/root/repo/src/geodata/src/grid.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/grid.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/grid.cpp.o.d"
  "/root/repo/src/geodata/src/hydrology.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/hydrology.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/hydrology.cpp.o.d"
  "/root/repo/src/geodata/src/indices.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/indices.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/indices.cpp.o.d"
  "/root/repo/src/geodata/src/infrastructure.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/infrastructure.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/infrastructure.cpp.o.d"
  "/root/repo/src/geodata/src/kfold.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/kfold.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/kfold.cpp.o.d"
  "/root/repo/src/geodata/src/ortho.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/ortho.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/ortho.cpp.o.d"
  "/root/repo/src/geodata/src/region.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/region.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/region.cpp.o.d"
  "/root/repo/src/geodata/src/scene.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/scene.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/scene.cpp.o.d"
  "/root/repo/src/geodata/src/terrain.cpp" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/terrain.cpp.o" "gcc" "src/geodata/CMakeFiles/dcnas_geodata.dir/src/terrain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
