file(REMOVE_RECURSE
  "libdcnas_tensor.a"
)
