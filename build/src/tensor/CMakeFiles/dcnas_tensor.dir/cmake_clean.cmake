file(REMOVE_RECURSE
  "CMakeFiles/dcnas_tensor.dir/src/gemm.cpp.o"
  "CMakeFiles/dcnas_tensor.dir/src/gemm.cpp.o.d"
  "CMakeFiles/dcnas_tensor.dir/src/im2col.cpp.o"
  "CMakeFiles/dcnas_tensor.dir/src/im2col.cpp.o.d"
  "CMakeFiles/dcnas_tensor.dir/src/ops.cpp.o"
  "CMakeFiles/dcnas_tensor.dir/src/ops.cpp.o.d"
  "CMakeFiles/dcnas_tensor.dir/src/tensor.cpp.o"
  "CMakeFiles/dcnas_tensor.dir/src/tensor.cpp.o.d"
  "libdcnas_tensor.a"
  "libdcnas_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
