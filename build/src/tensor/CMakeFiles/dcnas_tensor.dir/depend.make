# Empty dependencies file for dcnas_tensor.
# This may be replaced when dependencies are built.
