# Empty dependencies file for dcnas_pareto.
# This may be replaced when dependencies are built.
