file(REMOVE_RECURSE
  "libdcnas_pareto.a"
)
