
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pareto/src/export.cpp" "src/pareto/CMakeFiles/dcnas_pareto.dir/src/export.cpp.o" "gcc" "src/pareto/CMakeFiles/dcnas_pareto.dir/src/export.cpp.o.d"
  "/root/repo/src/pareto/src/pareto.cpp" "src/pareto/CMakeFiles/dcnas_pareto.dir/src/pareto.cpp.o" "gcc" "src/pareto/CMakeFiles/dcnas_pareto.dir/src/pareto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
