file(REMOVE_RECURSE
  "CMakeFiles/dcnas_pareto.dir/src/export.cpp.o"
  "CMakeFiles/dcnas_pareto.dir/src/export.cpp.o.d"
  "CMakeFiles/dcnas_pareto.dir/src/pareto.cpp.o"
  "CMakeFiles/dcnas_pareto.dir/src/pareto.cpp.o.d"
  "libdcnas_pareto.a"
  "libdcnas_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
