file(REMOVE_RECURSE
  "libdcnas_nn.a"
)
