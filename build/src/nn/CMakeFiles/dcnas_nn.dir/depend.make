# Empty dependencies file for dcnas_nn.
# This may be replaced when dependencies are built.
