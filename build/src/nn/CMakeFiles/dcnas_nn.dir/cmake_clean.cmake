file(REMOVE_RECURSE
  "CMakeFiles/dcnas_nn.dir/src/activations.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/activations.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/batchnorm.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/batchnorm.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/conv.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/conv.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/init.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/init.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/linear.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/linear.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/loss.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/loss.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/metrics.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/metrics.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/module.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/module.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/optim.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/optim.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/pooling.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/pooling.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/residual.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/residual.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/resnet.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/resnet.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/sequential.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/sequential.cpp.o.d"
  "CMakeFiles/dcnas_nn.dir/src/trainer.cpp.o"
  "CMakeFiles/dcnas_nn.dir/src/trainer.cpp.o.d"
  "libdcnas_nn.a"
  "libdcnas_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
