
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/src/activations.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/activations.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/activations.cpp.o.d"
  "/root/repo/src/nn/src/batchnorm.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/batchnorm.cpp.o.d"
  "/root/repo/src/nn/src/conv.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/conv.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/conv.cpp.o.d"
  "/root/repo/src/nn/src/init.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/init.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/init.cpp.o.d"
  "/root/repo/src/nn/src/linear.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/linear.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/linear.cpp.o.d"
  "/root/repo/src/nn/src/loss.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/loss.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/loss.cpp.o.d"
  "/root/repo/src/nn/src/metrics.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/metrics.cpp.o.d"
  "/root/repo/src/nn/src/module.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/module.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/module.cpp.o.d"
  "/root/repo/src/nn/src/optim.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/optim.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/optim.cpp.o.d"
  "/root/repo/src/nn/src/pooling.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/pooling.cpp.o.d"
  "/root/repo/src/nn/src/residual.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/residual.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/residual.cpp.o.d"
  "/root/repo/src/nn/src/resnet.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/resnet.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/resnet.cpp.o.d"
  "/root/repo/src/nn/src/sequential.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/sequential.cpp.o.d"
  "/root/repo/src/nn/src/trainer.cpp" "src/nn/CMakeFiles/dcnas_nn.dir/src/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/dcnas_nn.dir/src/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
