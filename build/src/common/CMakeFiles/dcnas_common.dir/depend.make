# Empty dependencies file for dcnas_common.
# This may be replaced when dependencies are built.
