file(REMOVE_RECURSE
  "CMakeFiles/dcnas_common.dir/src/cli.cpp.o"
  "CMakeFiles/dcnas_common.dir/src/cli.cpp.o.d"
  "CMakeFiles/dcnas_common.dir/src/csv.cpp.o"
  "CMakeFiles/dcnas_common.dir/src/csv.cpp.o.d"
  "CMakeFiles/dcnas_common.dir/src/logging.cpp.o"
  "CMakeFiles/dcnas_common.dir/src/logging.cpp.o.d"
  "CMakeFiles/dcnas_common.dir/src/profiler.cpp.o"
  "CMakeFiles/dcnas_common.dir/src/profiler.cpp.o.d"
  "CMakeFiles/dcnas_common.dir/src/stats.cpp.o"
  "CMakeFiles/dcnas_common.dir/src/stats.cpp.o.d"
  "CMakeFiles/dcnas_common.dir/src/strings.cpp.o"
  "CMakeFiles/dcnas_common.dir/src/strings.cpp.o.d"
  "CMakeFiles/dcnas_common.dir/src/thread_pool.cpp.o"
  "CMakeFiles/dcnas_common.dir/src/thread_pool.cpp.o.d"
  "libdcnas_common.a"
  "libdcnas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
