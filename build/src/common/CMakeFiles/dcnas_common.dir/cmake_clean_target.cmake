file(REMOVE_RECURSE
  "libdcnas_common.a"
)
