file(REMOVE_RECURSE
  "CMakeFiles/dcnas_graph.dir/src/builder.cpp.o"
  "CMakeFiles/dcnas_graph.dir/src/builder.cpp.o.d"
  "CMakeFiles/dcnas_graph.dir/src/executor.cpp.o"
  "CMakeFiles/dcnas_graph.dir/src/executor.cpp.o.d"
  "CMakeFiles/dcnas_graph.dir/src/fusion.cpp.o"
  "CMakeFiles/dcnas_graph.dir/src/fusion.cpp.o.d"
  "CMakeFiles/dcnas_graph.dir/src/ir.cpp.o"
  "CMakeFiles/dcnas_graph.dir/src/ir.cpp.o.d"
  "CMakeFiles/dcnas_graph.dir/src/model_file.cpp.o"
  "CMakeFiles/dcnas_graph.dir/src/model_file.cpp.o.d"
  "CMakeFiles/dcnas_graph.dir/src/serialize.cpp.o"
  "CMakeFiles/dcnas_graph.dir/src/serialize.cpp.o.d"
  "libdcnas_graph.a"
  "libdcnas_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
