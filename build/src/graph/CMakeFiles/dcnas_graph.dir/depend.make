# Empty dependencies file for dcnas_graph.
# This may be replaced when dependencies are built.
