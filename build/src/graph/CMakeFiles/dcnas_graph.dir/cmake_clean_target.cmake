file(REMOVE_RECURSE
  "libdcnas_graph.a"
)
