
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/src/builder.cpp" "src/graph/CMakeFiles/dcnas_graph.dir/src/builder.cpp.o" "gcc" "src/graph/CMakeFiles/dcnas_graph.dir/src/builder.cpp.o.d"
  "/root/repo/src/graph/src/executor.cpp" "src/graph/CMakeFiles/dcnas_graph.dir/src/executor.cpp.o" "gcc" "src/graph/CMakeFiles/dcnas_graph.dir/src/executor.cpp.o.d"
  "/root/repo/src/graph/src/fusion.cpp" "src/graph/CMakeFiles/dcnas_graph.dir/src/fusion.cpp.o" "gcc" "src/graph/CMakeFiles/dcnas_graph.dir/src/fusion.cpp.o.d"
  "/root/repo/src/graph/src/ir.cpp" "src/graph/CMakeFiles/dcnas_graph.dir/src/ir.cpp.o" "gcc" "src/graph/CMakeFiles/dcnas_graph.dir/src/ir.cpp.o.d"
  "/root/repo/src/graph/src/model_file.cpp" "src/graph/CMakeFiles/dcnas_graph.dir/src/model_file.cpp.o" "gcc" "src/graph/CMakeFiles/dcnas_graph.dir/src/model_file.cpp.o.d"
  "/root/repo/src/graph/src/serialize.cpp" "src/graph/CMakeFiles/dcnas_graph.dir/src/serialize.cpp.o" "gcc" "src/graph/CMakeFiles/dcnas_graph.dir/src/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dcnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
