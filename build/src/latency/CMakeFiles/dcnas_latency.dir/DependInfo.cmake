
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/latency/src/device.cpp" "src/latency/CMakeFiles/dcnas_latency.dir/src/device.cpp.o" "gcc" "src/latency/CMakeFiles/dcnas_latency.dir/src/device.cpp.o.d"
  "/root/repo/src/latency/src/features.cpp" "src/latency/CMakeFiles/dcnas_latency.dir/src/features.cpp.o" "gcc" "src/latency/CMakeFiles/dcnas_latency.dir/src/features.cpp.o.d"
  "/root/repo/src/latency/src/forest.cpp" "src/latency/CMakeFiles/dcnas_latency.dir/src/forest.cpp.o" "gcc" "src/latency/CMakeFiles/dcnas_latency.dir/src/forest.cpp.o.d"
  "/root/repo/src/latency/src/persistence.cpp" "src/latency/CMakeFiles/dcnas_latency.dir/src/persistence.cpp.o" "gcc" "src/latency/CMakeFiles/dcnas_latency.dir/src/persistence.cpp.o.d"
  "/root/repo/src/latency/src/predictor.cpp" "src/latency/CMakeFiles/dcnas_latency.dir/src/predictor.cpp.o" "gcc" "src/latency/CMakeFiles/dcnas_latency.dir/src/predictor.cpp.o.d"
  "/root/repo/src/latency/src/simulator.cpp" "src/latency/CMakeFiles/dcnas_latency.dir/src/simulator.cpp.o" "gcc" "src/latency/CMakeFiles/dcnas_latency.dir/src/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dcnas_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcnas_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcnas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
