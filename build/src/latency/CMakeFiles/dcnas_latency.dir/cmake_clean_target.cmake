file(REMOVE_RECURSE
  "libdcnas_latency.a"
)
