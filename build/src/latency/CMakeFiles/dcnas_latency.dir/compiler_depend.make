# Empty compiler generated dependencies file for dcnas_latency.
# This may be replaced when dependencies are built.
