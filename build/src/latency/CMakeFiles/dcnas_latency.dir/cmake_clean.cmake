file(REMOVE_RECURSE
  "CMakeFiles/dcnas_latency.dir/src/device.cpp.o"
  "CMakeFiles/dcnas_latency.dir/src/device.cpp.o.d"
  "CMakeFiles/dcnas_latency.dir/src/features.cpp.o"
  "CMakeFiles/dcnas_latency.dir/src/features.cpp.o.d"
  "CMakeFiles/dcnas_latency.dir/src/forest.cpp.o"
  "CMakeFiles/dcnas_latency.dir/src/forest.cpp.o.d"
  "CMakeFiles/dcnas_latency.dir/src/persistence.cpp.o"
  "CMakeFiles/dcnas_latency.dir/src/persistence.cpp.o.d"
  "CMakeFiles/dcnas_latency.dir/src/predictor.cpp.o"
  "CMakeFiles/dcnas_latency.dir/src/predictor.cpp.o.d"
  "CMakeFiles/dcnas_latency.dir/src/simulator.cpp.o"
  "CMakeFiles/dcnas_latency.dir/src/simulator.cpp.o.d"
  "libdcnas_latency.a"
  "libdcnas_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnas_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
