#pragma once
/// \file device.hpp
/// \brief Parameterized edge-device models — the hardware the paper's four
/// nn-Meter predictors target (Table 2).
///
/// Each device is a roofline-style executor: a kernel's time is the max of
/// its compute time (FLOPs over utilization-scaled peak throughput) and its
/// memory time (bytes over bandwidth), plus a launch overhead. Utilization
/// grows with kernel size (small kernels cannot fill the machine), lanes
/// quantize the channel dimension, and a deterministic per-shape jitter
/// stands in for measurement noise. The Myriad VPU additionally models
/// compiler "mode switches" (unsupported shapes falling back to slow paths),
/// which is what makes its latency the hardest to predict — exactly the
/// effect behind nn-Meter's 83.4% accuracy on myriadvpu vs ~99% elsewhere.

#include <cstdint>
#include <string>
#include <vector>

namespace dcnas::latency {

struct DeviceSpec {
  std::string name;
  std::string device_label;     ///< e.g. "Pixel4"
  std::string framework;        ///< e.g. "TFLite v2.1"
  std::string processor;        ///< e.g. "CortexA76 CPU"
  double peak_gflops = 100.0;   ///< compute roof (fp32-equivalent)
  /// Int8 compute roof in GOPS for quantized conv kernels (QUANTIZATION.md).
  /// 0 means the runtime has no int8 fast path and quantized kernels run at
  /// the fp32 roof. Real edge stacks land at 2-4x the fp32 figure: dot
  /// product ISAs (SDOT/DP4A) process 4 int8 MACs per lane-cycle but the
  /// requantization epilogue and fp32 activation traffic eat part of it.
  double int8_peak_gops = 0.0;
  double mem_bw_gbps = 10.0;    ///< main-memory bandwidth roof
  double launch_overhead_ms = 0.05;  ///< fixed per-kernel dispatch cost
  double util_small = 0.3;      ///< utilization floor for tiny kernels
  double util_large = 0.8;      ///< utilization ceiling for huge kernels
  double flops_half_util = 3e7; ///< kernel FLOPs at half-way utilization
  int simd_lanes = 4;           ///< channel quantization granularity
  double jitter_amp = 0.02;     ///< deterministic measurement-noise amplitude
  bool vpu_mode_switches = false;  ///< Myriad-style fallback cliffs
};

/// The four devices behind the paper's nn-Meter predictors, in the order of
/// Table 2: cortexA76cpu, adreno640gpu, adreno630gpu, myriadvpu.
const std::vector<DeviceSpec>& edge_device_zoo();

/// Looks a device up by predictor name; throws InvalidArgument if unknown.
const DeviceSpec& device_by_name(const std::string& name);

}  // namespace dcnas::latency
