#pragma once
/// \file predictor.hpp
/// \brief nn-Meter-equivalent latency predictors.
///
/// One LatencyPredictor per device: a bank of per-kernel-kind random-forest
/// regressors trained on (sampled kernel -> simulated latency) pairs. Model
/// latency is the sum of predicted kernel latencies over the fused graph.
/// The NnMeter facade bundles the paper's four predictors and produces the
/// mean/std statistics used in Tables 3-5.

#include <map>
#include <string>
#include <vector>

#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/fusion.hpp"
#include "dcnas/latency/device.hpp"
#include "dcnas/latency/forest.hpp"

namespace dcnas::latency {

struct PredictorTrainOptions {
  int samples_per_kind = 1400;
  ForestOptions forest;
  std::uint64_t seed = 20231112;  ///< SC-W'23 opening day
};

/// Latency predictor for one device (one row of Table 2).
class LatencyPredictor {
 public:
  explicit LatencyPredictor(DeviceSpec device);

  /// Samples kernels, simulates them on the device, and fits the forests.
  void train(const PredictorTrainOptions& options);
  bool trained() const { return !forests_.empty(); }

  double predict_kernel_ms(const graph::FusedKernel& kernel) const;
  double predict_model_ms(const std::vector<graph::FusedKernel>& kernels) const;

  /// Held-out predictor quality — the "±10% Accuracy" column of Table 2.
  struct Accuracy {
    double hit_rate_10pct = 0.0;  ///< fraction within ±10% of ground truth
    double rmspe = 0.0;
    std::size_t num_samples = 0;
  };
  /// Evaluates on freshly sampled kernels (disjoint stream from training).
  Accuracy evaluate_kernel_level(int samples_per_kind,
                                 std::uint64_t seed) const;

  const DeviceSpec& device() const { return device_; }

  /// Serialization access (persistence.hpp).
  const std::map<graph::KernelKind, RandomForest>& forests() const {
    return forests_;
  }
  /// Residual forests for int8 conv kernels. Empty when the device has no
  /// int8 fast path (int8_peak_gops == 0) or the predictor predates the
  /// precision axis (DCLP v1 files) — int8 kernels then fall back to the
  /// fp32 forest of the same kind.
  const std::map<graph::KernelKind, RandomForest>& int8_forests() const {
    return int8_forests_;
  }
  static LatencyPredictor from_forests(
      DeviceSpec device, std::map<graph::KernelKind, RandomForest> forests,
      std::map<graph::KernelKind, RandomForest> int8_forests = {});

  /// Spec-sheet roofline prior: flops over nominal throughput vs bytes over
  /// nominal bandwidth, plus dispatch overhead, at a fixed mid utilization.
  /// The forests regress the *residual* log(measured / prior), which keeps
  /// the learning problem bounded even though kernel latencies span five
  /// orders of magnitude (nn-Meter attacks the same problem with much
  /// larger adaptive sampling budgets).
  double prior_ms(const graph::FusedKernel& kernel) const;

 private:
  DeviceSpec device_;
  std::map<graph::KernelKind, RandomForest> forests_;
  std::map<graph::KernelKind, RandomForest> int8_forests_;
};

/// Prediction for one model across all four device predictors.
struct ModelLatencyPrediction {
  std::vector<std::pair<std::string, double>> per_device_ms;
  double mean_ms = 0.0;  ///< the paper's 'latency' column
  double std_ms = 0.0;   ///< the paper's 'lat_std' column (sample stddev)
};

/// The four-predictor bundle (cortexA76cpu, adreno640gpu, adreno630gpu,
/// myriadvpu), mirroring "nn-meter employs all four predictors to forecast
/// latency values ... the average latency value is derived" (§3.3).
class NnMeter {
 public:
  explicit NnMeter(const PredictorTrainOptions& options = {});

  /// Lazily trained process-wide instance with default options. Training
  /// takes a few seconds; benches and the pipeline share this.
  static const NnMeter& shared();

  ModelLatencyPrediction predict_graph(const graph::ModelGraph& graph) const;
  ModelLatencyPrediction predict_kernels(
      const std::vector<graph::FusedKernel>& kernels) const;

  const LatencyPredictor& predictor(const std::string& device_name) const;
  const std::vector<LatencyPredictor>& predictors() const {
    return predictors_;
  }

 private:
  std::vector<LatencyPredictor> predictors_;
};

}  // namespace dcnas::latency
