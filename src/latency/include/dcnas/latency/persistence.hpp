#pragma once
/// \file persistence.hpp
/// \brief Trained-predictor serialization ("DCLP" format).
///
/// nn-Meter distributes its device predictors as downloadable files so
/// users never re-measure hardware; this module gives dcnas the same
/// property: train once, save, and ship the four predictors. The format
/// stores every per-kernel-kind random forest (tree topology + thresholds
/// as fp64) plus the device spec the predictor was trained for.

#include <string>
#include <vector>

#include "dcnas/latency/predictor.hpp"

namespace dcnas::latency {

/// Serializes a trained predictor (device spec + all forests).
std::vector<unsigned char> serialize_predictor(
    const LatencyPredictor& predictor);

/// Reconstructs a predictor; throws InvalidArgument on malformed bytes.
LatencyPredictor parse_predictor(const std::vector<unsigned char>& bytes);

/// File round-trip helpers; save returns the byte count written.
std::int64_t save_predictor(const LatencyPredictor& predictor,
                            const std::string& path);
LatencyPredictor load_predictor(const std::string& path);

}  // namespace dcnas::latency
