#pragma once
/// \file forest.hpp
/// \brief CART regression trees and bagged random forests — the regressor
/// family nn-Meter uses for per-kernel latency prediction.

#include <cstdint>
#include <vector>

#include "dcnas/common/rng.hpp"

namespace dcnas::latency {

/// Row-major feature matrix: samples x features.
struct Dataset2d {
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  std::size_t size() const { return x.size(); }
  std::size_t num_features() const { return x.empty() ? 0 : x[0].size(); }
};

struct TreeOptions {
  int max_depth = 14;
  int min_samples_leaf = 2;
  /// Fraction of features considered per split (random-forest style);
  /// 1.0 = plain CART.
  double feature_fraction = 1.0;
};

/// Greedy variance-reduction CART regression tree.
class RegressionTree {
 public:
  struct Node {
    int feature = -1;       ///< -1 for leaves
    double threshold = 0.0;
    int left = -1, right = -1;
    double value = 0.0;     ///< leaf mean
  };

  void fit(const Dataset2d& data, const std::vector<std::size_t>& sample_idx,
           const TreeOptions& options, Rng& rng);
  double predict(const std::vector<double>& features) const;
  bool trained() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }

  /// Serialization access (persistence.hpp). from_nodes validates the
  /// topology (child indices in range, leaves have no children).
  const std::vector<Node>& nodes() const { return nodes_; }
  static RegressionTree from_nodes(std::vector<Node> nodes);

 private:

  int build(const Dataset2d& data, std::vector<std::size_t>& idx,
            std::size_t begin, std::size_t end, int depth,
            const TreeOptions& options, Rng& rng);

  std::vector<Node> nodes_;
};

struct ForestOptions {
  int num_trees = 16;
  TreeOptions tree;
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 0x5eedf00dULL;
};

/// Bagged ensemble of CART trees; prediction is the tree mean.
class RandomForest {
 public:
  void fit(const Dataset2d& data, const ForestOptions& options);
  double predict(const std::vector<double>& features) const;
  bool trained() const { return !trees_.empty(); }
  std::size_t num_trees() const { return trees_.size(); }

  /// Serialization access (persistence.hpp).
  const std::vector<RegressionTree>& trees() const { return trees_; }
  static RandomForest from_trees(std::vector<RegressionTree> trees);

 private:
  std::vector<RegressionTree> trees_;
};

}  // namespace dcnas::latency
