#pragma once
/// \file features.hpp
/// \brief Kernel feature extraction and random kernel sampling for
/// predictor training — nn-Meter's "adaptive data sampling" analogue.

#include <vector>

#include "dcnas/common/rng.hpp"
#include "dcnas/graph/fusion.hpp"

namespace dcnas::latency {

/// Number of scalar features per kernel.
inline constexpr std::size_t kNumKernelFeatures = 10;

/// Feature vector for one fused kernel:
/// [c_in, c_out, h_in, h_out, kernel, stride, log2(flops), log2(bytes),
///  out_hw, weight_kb]. Per-kind forests mean no kind indicator is needed.
std::vector<double> kernel_features(const graph::FusedKernel& kernel);

/// Draws one random kernel of the given kind with realistic CNN shapes
/// (log-uniform channels in [3, 512], spatial sizes in [7, 224], kernels
/// in {1,2,3,5,7}, strides in {1,2}). Used to build the training corpus
/// fed to the device simulator.
graph::FusedKernel sample_kernel(graph::KernelKind kind, Rng& rng);

}  // namespace dcnas::latency
