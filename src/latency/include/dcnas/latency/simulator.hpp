#pragma once
/// \file simulator.hpp
/// \brief Kernel-level device simulator — the reproduction's stand-in for
/// latency *measurement* on physical phones/VPUs.
///
/// nn-Meter's pipeline is: measure thousands of kernels on the device, fit
/// per-kernel-type regressors, then predict whole models. We keep that
/// architecture but replace the physical measurement with this simulator.
/// The simulator is deliberately *not* a simple analytic function of the
/// predictor's features: tile quantization, utilization saturation, shape
/// keyed jitter, and VPU fallback cliffs make it non-trivially learnable,
/// so Table 2's predictor-accuracy experiment is a genuine generalization
/// test rather than a tautology.

#include <vector>

#include "dcnas/graph/fusion.hpp"
#include "dcnas/latency/device.hpp"

namespace dcnas::latency {

/// Ground-truth latency of one fused kernel on \p device, in milliseconds.
double simulate_kernel_ms(const DeviceSpec& device,
                          const graph::FusedKernel& kernel);

/// Ground-truth latency of a whole kernel sequence (sum of kernels; edge
/// runtimes execute graphs serially).
double simulate_model_ms(const DeviceSpec& device,
                         const std::vector<graph::FusedKernel>& kernels);

}  // namespace dcnas::latency
