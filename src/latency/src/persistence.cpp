#include "dcnas/latency/persistence.hpp"

#include <cstring>
#include <fstream>

namespace dcnas::latency {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'L', 'P'};
// v1: fp32-only. v2 adds DeviceSpec::int8_peak_gops and a second forest
// block for int8 conv kernels; v1 files stay loadable (int8 fields default
// to "no fast path" and int8 kernels fall back to the fp32 forests).
constexpr std::uint32_t kVersion = 2;

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}
void put_i32(std::vector<unsigned char>& out, std::int32_t v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}
void put_f64(std::vector<unsigned char>& out, double v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}
void put_str(std::vector<unsigned char>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Cursor {
 public:
  explicit Cursor(const std::vector<unsigned char>& in) : in_(in) {}
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  double f64() { return get<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    DCNAS_CHECK(pos_ + n <= in_.size(), "truncated predictor file");
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  bool exhausted() const { return pos_ == in_.size(); }

 private:
  template <typename T>
  T get() {
    DCNAS_CHECK(pos_ + sizeof(T) <= in_.size(), "truncated predictor file");
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  const std::vector<unsigned char>& in_;
  std::size_t pos_ = 0;
};

void put_device(std::vector<unsigned char>& out, const DeviceSpec& d) {
  put_str(out, d.name);
  put_str(out, d.device_label);
  put_str(out, d.framework);
  put_str(out, d.processor);
  put_f64(out, d.peak_gflops);
  put_f64(out, d.int8_peak_gops);  // v2 field
  put_f64(out, d.mem_bw_gbps);
  put_f64(out, d.launch_overhead_ms);
  put_f64(out, d.util_small);
  put_f64(out, d.util_large);
  put_f64(out, d.flops_half_util);
  put_i32(out, d.simd_lanes);
  put_f64(out, d.jitter_amp);
  put_i32(out, d.vpu_mode_switches ? 1 : 0);
}

DeviceSpec read_device(Cursor& c, std::uint32_t version) {
  DeviceSpec d;
  d.name = c.str();
  d.device_label = c.str();
  d.framework = c.str();
  d.processor = c.str();
  d.peak_gflops = c.f64();
  d.int8_peak_gops = version >= 2 ? c.f64() : 0.0;
  d.mem_bw_gbps = c.f64();
  d.launch_overhead_ms = c.f64();
  d.util_small = c.f64();
  d.util_large = c.f64();
  d.flops_half_util = c.f64();
  d.simd_lanes = c.i32();
  d.jitter_amp = c.f64();
  d.vpu_mode_switches = c.i32() != 0;
  return d;
}

void put_forests(std::vector<unsigned char>& out,
                 const std::map<graph::KernelKind, RandomForest>& forests) {
  put_u32(out, static_cast<std::uint32_t>(forests.size()));
  for (const auto& [kind, forest] : forests) {
    put_i32(out, static_cast<std::int32_t>(kind));
    put_u32(out, static_cast<std::uint32_t>(forest.trees().size()));
    for (const auto& tree : forest.trees()) {
      put_u32(out, static_cast<std::uint32_t>(tree.nodes().size()));
      for (const auto& node : tree.nodes()) {
        put_i32(out, node.feature);
        put_f64(out, node.threshold);
        put_i32(out, node.left);
        put_i32(out, node.right);
        put_f64(out, node.value);
      }
    }
  }
}

std::map<graph::KernelKind, RandomForest> read_forests(Cursor& c) {
  const std::uint32_t num_forests = c.u32();
  std::map<graph::KernelKind, RandomForest> forests;
  for (std::uint32_t f = 0; f < num_forests; ++f) {
    const std::int32_t kind = c.i32();
    DCNAS_CHECK(kind >= 0 && kind < graph::kNumKernelKinds,
                "invalid kernel kind in predictor file");
    const std::uint32_t num_trees = c.u32();
    DCNAS_CHECK(num_trees > 0, "empty forest in predictor file");
    std::vector<RegressionTree> trees;
    for (std::uint32_t t = 0; t < num_trees; ++t) {
      const std::uint32_t num_nodes = c.u32();
      std::vector<RegressionTree::Node> nodes;
      nodes.reserve(num_nodes);
      for (std::uint32_t n = 0; n < num_nodes; ++n) {
        RegressionTree::Node node;
        node.feature = c.i32();
        node.threshold = c.f64();
        node.left = c.i32();
        node.right = c.i32();
        node.value = c.f64();
        nodes.push_back(node);
      }
      trees.push_back(RegressionTree::from_nodes(std::move(nodes)));
    }
    const bool inserted =
        forests
            .emplace(static_cast<graph::KernelKind>(kind),
                     RandomForest::from_trees(std::move(trees)))
            .second;
    DCNAS_CHECK(inserted, "duplicate kernel kind in predictor file");
  }
  return forests;
}

}  // namespace

std::vector<unsigned char> serialize_predictor(
    const LatencyPredictor& predictor) {
  DCNAS_CHECK(predictor.trained(), "cannot serialize an untrained predictor");
  std::vector<unsigned char> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u32(out, kVersion);
  put_device(out, predictor.device());
  put_forests(out, predictor.forests());
  put_forests(out, predictor.int8_forests());  // v2 block (may be empty)
  return out;
}

LatencyPredictor parse_predictor(const std::vector<unsigned char>& bytes) {
  DCNAS_CHECK(bytes.size() >= 8 && std::memcmp(bytes.data(), kMagic, 4) == 0,
              "not a DCLP predictor file");
  Cursor c(bytes);
  c.u32();  // magic (validated)
  const std::uint32_t version = c.u32();
  DCNAS_CHECK(version == 1 || version == kVersion,
              "unsupported predictor file version");
  DeviceSpec device = read_device(c, version);
  std::map<graph::KernelKind, RandomForest> forests = read_forests(c);
  std::map<graph::KernelKind, RandomForest> int8_forests;
  if (version >= 2) int8_forests = read_forests(c);
  DCNAS_CHECK(c.exhausted(), "trailing bytes in predictor file");
  return LatencyPredictor::from_forests(std::move(device), std::move(forests),
                                        std::move(int8_forests));
}

std::int64_t save_predictor(const LatencyPredictor& predictor,
                            const std::string& path) {
  const auto bytes = serialize_predictor(predictor);
  std::ofstream out(path, std::ios::binary);
  DCNAS_CHECK(out.good(), "cannot open predictor file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  DCNAS_CHECK(out.good(), "predictor file write failed: " + path);
  return static_cast<std::int64_t>(bytes.size());
}

LatencyPredictor load_predictor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCNAS_CHECK(in.good(), "cannot open predictor file: " + path);
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return parse_predictor(bytes);
}

}  // namespace dcnas::latency
