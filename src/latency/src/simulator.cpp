#include "dcnas/latency/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "dcnas/common/rng.hpp"

namespace dcnas::latency {

namespace {

using graph::FusedKernel;
using graph::KernelKind;

std::int64_t ceil_to(std::int64_t x, std::int64_t step) {
  return ((x + step - 1) / step) * step;
}

/// Utilization rises from util_small toward util_large as kernels grow.
double utilization(const DeviceSpec& d, double flops) {
  const double frac = flops / (flops + d.flops_half_util);
  return d.util_small + (d.util_large - d.util_small) * frac;
}

/// Channel-quantization waste: lanes process channels in groups, so a
/// 65-channel kernel on 16-lane hardware costs like 80 channels.
double lane_waste(const DeviceSpec& d, const FusedKernel& k) {
  const std::int64_t c = std::max<std::int64_t>(1, k.out_shape.c);
  return static_cast<double>(ceil_to(c, d.simd_lanes)) /
         static_cast<double>(c);
}

bool is_conv_kind(KernelKind kind) {
  return kind == KernelKind::kConvBnRelu || kind == KernelKind::kConvBn ||
         kind == KernelKind::kConvRelu || kind == KernelKind::kConv;
}

/// Whether this kernel runs on the device's int8 fast path: quantized conv
/// family on a device whose runtime has one. Everything else (pools, adds,
/// fp32 kernels, devices with int8_peak_gops == 0) takes the fp32 roof.
bool int8_fast_path(const DeviceSpec& d, const FusedKernel& k) {
  return k.precision == graph::Precision::kInt8 && is_conv_kind(k.kind) &&
         d.int8_peak_gops > 0.0;
}

/// Deterministic measurement jitter keyed on (device, kernel signature).
/// The key mixes in an extra term *only* on the int8 fast path, so every
/// fp32 kernel's jitter — and therefore every existing fp32 latency — is
/// bitwise unchanged by the precision axis.
double jitter(const DeviceSpec& d, const FusedKernel& k) {
  std::uint64_t key = splitmix64(std::hash<std::string>{}(d.name));
  key = mix_seed(key, static_cast<std::uint64_t>(k.in_shape.c));
  key = mix_seed(key, static_cast<std::uint64_t>(k.out_shape.c * 131 +
                                                 k.in_shape.h));
  key = mix_seed(key, static_cast<std::uint64_t>(k.attrs.kernel * 17 +
                                                 k.attrs.stride * 5 +
                                                 static_cast<int>(k.kind)));
  if (int8_fast_path(d, k)) key = mix_seed(key, 0x71a58u);
  return 1.0 + d.jitter_amp * (2.0 * hash_unit(key) - 1.0);
}

/// Myriad-style compiler cliffs. Two of the triggers (large kernel at
/// stride 1; thin input channels) are visible in the predictor's features;
/// the spatial-tiling remainder trigger is not, which is what caps the
/// myriadvpu predictor's accuracy.
double vpu_mode_penalty(const FusedKernel& k) {
  double penalty = 1.0;
  if (is_conv_kind(k.kind)) {
    if (k.attrs.kernel >= 7 && k.attrs.stride == 1) penalty *= 2.1;
    if (k.in_shape.c < 8) penalty *= 1.7;
    if (k.out_shape.h % 7 == 3 || k.out_shape.h % 7 == 5) penalty *= 1.45;
  } else if (k.kind == KernelKind::kMaxPool && k.attrs.stride == 1) {
    penalty *= 1.8;  // stride-1 pooling falls off the fast path
  }
  return penalty;
}

}  // namespace

namespace {
/// Edge runtimes (TFLite, OpenVINO) lower 3x3 stride-1 convolutions to
/// Winograd F(2x2, 3x3), cutting multiplies ~2.25x. This matters for the
/// reproduction's latency scale: ResNet bodies are almost entirely 3x3 s1.
/// Winograd does not survive quantization: the transform inflates the int8
/// dynamic range past what 32-bit accumulators and per-channel scales can
/// absorb, so edge runtimes run quantized 3x3 convs direct. Int8 kernels
/// therefore keep factor 1.0 and earn their speedup from the int8 roof.
double algorithmic_factor(const FusedKernel& k) {
  if (is_conv_kind(k.kind) && k.attrs.kernel == 3 && k.attrs.stride == 1 &&
      k.precision != graph::Precision::kInt8) {
    return 0.45;
  }
  return 1.0;
}
}  // namespace

double simulate_kernel_ms(const DeviceSpec& device, const FusedKernel& k) {
  const auto flops = static_cast<double>(std::max<std::int64_t>(k.flops, 1)) *
                     algorithmic_factor(k);
  const double eff_flops = flops * lane_waste(device, k);
  const double util = utilization(device, flops);
  const double peak =
      int8_fast_path(device, k) ? device.int8_peak_gops : device.peak_gflops;
  const double compute_ms = eff_flops / (peak * 1e9 * util) * 1e3;
  const double bytes = static_cast<double>(k.total_bytes());
  const double memory_ms = bytes / (device.mem_bw_gbps * 1e9) * 1e3;
  double ms = std::max(compute_ms, memory_ms) + device.launch_overhead_ms;
  if (device.vpu_mode_switches) ms *= vpu_mode_penalty(k);
  ms *= jitter(device, k);
  return ms;
}

double simulate_model_ms(const DeviceSpec& device,
                         const std::vector<graph::FusedKernel>& kernels) {
  double total = 0.0;
  for (const auto& k : kernels) total += simulate_kernel_ms(device, k);
  return total;
}

}  // namespace dcnas::latency
