#include "dcnas/latency/predictor.hpp"

#include <cmath>

#include "dcnas/common/logging.hpp"
#include "dcnas/common/profiler.hpp"
#include "dcnas/common/stats.hpp"
#include "dcnas/latency/features.hpp"
#include "dcnas/latency/simulator.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::latency {

using graph::FusedKernel;
using graph::KernelKind;

namespace {

constexpr KernelKind kAllKinds[] = {
    KernelKind::kConvBnRelu, KernelKind::kConvBn,    KernelKind::kConvRelu,
    KernelKind::kConv,       KernelKind::kMaxPool,   KernelKind::kGlobalAvgPool,
    KernelKind::kAddRelu,    KernelKind::kAdd,       KernelKind::kRelu,
    KernelKind::kBatchNorm,  KernelKind::kLinear,
};

/// The kinds the quantized serving path runs in int8 — the conv family
/// (set_kernels_precision's scope). These get a second forest bank trained
/// on int8-simulated latencies.
constexpr KernelKind kConvKinds[] = {
    KernelKind::kConvBnRelu,
    KernelKind::kConvBn,
    KernelKind::kConvRelu,
    KernelKind::kConv,
};

}  // namespace

LatencyPredictor::LatencyPredictor(DeviceSpec device)
    : device_(std::move(device)) {}

double LatencyPredictor::prior_ms(const FusedKernel& k) const {
  // Nominal constants only: peak/bandwidth from the spec sheet and a fixed
  // 0.6 utilization guess. Everything the prior misses — the utilization
  // curve, lane quantization, Winograd lowering, VPU cliffs, jitter — is
  // the residual the per-kind forests are trained on. Int8 conv kernels use
  // the int8 roof when the device has one, mirroring the simulator.
  const auto flops = static_cast<double>(std::max<std::int64_t>(k.flops, 1));
  const bool int8 = k.precision == graph::Precision::kInt8 &&
                    device_.int8_peak_gops > 0.0;
  const double peak = int8 ? device_.int8_peak_gops : device_.peak_gflops;
  const double compute_ms = flops / (peak * 1e9 * 0.6) * 1e3;
  const double memory_ms =
      static_cast<double>(k.total_bytes()) / (device_.mem_bw_gbps * 1e9) * 1e3;
  return std::max(compute_ms, memory_ms) + device_.launch_overhead_ms;
}

void LatencyPredictor::train(const PredictorTrainOptions& options) {
  obs::Span span("latency", "latency.predictor.train");
  if (span.armed()) span.arg("device", device_.name);
  const ScopedTimer timer("latency.train_predictor");
  DCNAS_CHECK(options.samples_per_kind >= 20,
              "predictor training needs >= 20 samples per kernel kind");
  forests_.clear();
  int8_forests_.clear();
  const std::uint64_t device_seed =
      mix_seed(options.seed, std::hash<std::string>{}(device_.name));
  for (const KernelKind kind : kAllKinds) {
    Rng rng(mix_seed(device_seed, static_cast<std::uint64_t>(kind)));
    Dataset2d data;
    data.x.reserve(static_cast<std::size_t>(options.samples_per_kind));
    data.y.reserve(static_cast<std::size_t>(options.samples_per_kind));
    for (int i = 0; i < options.samples_per_kind; ++i) {
      const FusedKernel k = sample_kernel(kind, rng);
      data.x.push_back(kernel_features(k));
      // Residual log target: relative (±10%) accuracy is what matters
      // downstream, and the roofline prior bounds the regression range.
      data.y.push_back(std::log(simulate_kernel_ms(device_, k) / prior_ms(k)));
    }
    ForestOptions fo = options.forest;
    fo.seed = mix_seed(device_seed, 0x0f0e0d0cULL + static_cast<int>(kind));
    RandomForest forest;
    forest.fit(data, fo);
    forests_.emplace(kind, std::move(forest));
  }
  // Second bank for quantized convs: the int8 residual differs from fp32
  // (no Winograd, different roof, perturbed jitter), so reusing the fp32
  // forest would systematically mispredict. Devices without an int8 fast
  // path skip this — their quantized kernels simulate identically to fp32
  // modulo weight traffic, which the shared features already capture.
  if (device_.int8_peak_gops > 0.0) {
    for (const KernelKind kind : kConvKinds) {
      Rng rng(mix_seed(device_seed ^ 0x51b8u, static_cast<std::uint64_t>(kind)));
      Dataset2d data;
      data.x.reserve(static_cast<std::size_t>(options.samples_per_kind));
      data.y.reserve(static_cast<std::size_t>(options.samples_per_kind));
      for (int i = 0; i < options.samples_per_kind; ++i) {
        FusedKernel k = sample_kernel(kind, rng);
        k.precision = graph::Precision::kInt8;
        data.x.push_back(kernel_features(k));
        data.y.push_back(
            std::log(simulate_kernel_ms(device_, k) / prior_ms(k)));
      }
      ForestOptions fo = options.forest;
      fo.seed =
          mix_seed(device_seed, 0x8b1d0c51ULL + static_cast<int>(kind));
      RandomForest forest;
      forest.fit(data, fo);
      int8_forests_.emplace(kind, std::move(forest));
    }
  }
  static obs::Counter& trained_count =
      obs::MetricsRegistry::global().counter("latency.predictor.trained.count");
  trained_count.add(1);
  DCNAS_LOG_DEBUG << "trained latency predictor for " << device_.name;
}

LatencyPredictor LatencyPredictor::from_forests(
    DeviceSpec device, std::map<graph::KernelKind, RandomForest> forests,
    std::map<graph::KernelKind, RandomForest> int8_forests) {
  DCNAS_CHECK(!forests.empty(), "from_forests requires trained forests");
  LatencyPredictor p(std::move(device));
  p.forests_ = std::move(forests);
  p.int8_forests_ = std::move(int8_forests);
  return p;
}

double LatencyPredictor::predict_kernel_ms(const FusedKernel& kernel) const {
  DCNAS_CHECK(trained(), "LatencyPredictor::train must be called first");
  if (kernel.precision == graph::Precision::kInt8) {
    const auto it8 = int8_forests_.find(kernel.kind);
    if (it8 != int8_forests_.end()) {
      return std::exp(it8->second.predict(kernel_features(kernel))) *
             prior_ms(kernel);
    }
    // Fall through: no int8 forest for this kind (non-conv, a device with
    // no int8 fast path, or a DCLP v1 file) — the fp32 forest is the best
    // available residual model and the prior is still precision-aware.
  }
  const auto it = forests_.find(kernel.kind);
  DCNAS_CHECK(it != forests_.end(), "no forest for kernel kind");
  return std::exp(it->second.predict(kernel_features(kernel))) *
         prior_ms(kernel);
}

double LatencyPredictor::predict_model_ms(
    const std::vector<FusedKernel>& kernels) const {
  obs::Span span("latency", "latency.model.predict");
  if (span.armed()) {
    span.arg("device", device_.name);
    span.arg("kernels", static_cast<std::int64_t>(kernels.size()));
  }
  static obs::Counter& predicted =
      obs::MetricsRegistry::global().counter("latency.model.predicted.count");
  predicted.add(1);
  double total = 0.0;
  for (const auto& k : kernels) total += predict_kernel_ms(k);
  return total;
}

LatencyPredictor::Accuracy LatencyPredictor::evaluate_kernel_level(
    int samples_per_kind, std::uint64_t seed) const {
  DCNAS_CHECK(trained(), "evaluate on an untrained predictor");
  std::vector<double> truth, pred;
  const std::uint64_t device_seed =
      mix_seed(seed, std::hash<std::string>{}(device_.name) ^ 0xabcdULL);
  for (const KernelKind kind : kAllKinds) {
    Rng rng(mix_seed(device_seed, static_cast<std::uint64_t>(kind) + 77));
    for (int i = 0; i < samples_per_kind; ++i) {
      const FusedKernel k = sample_kernel(kind, rng);
      truth.push_back(simulate_kernel_ms(device_, k));
      pred.push_back(predict_kernel_ms(k));
    }
  }
  Accuracy acc;
  acc.num_samples = truth.size();
  acc.hit_rate_10pct = within_relative_tolerance(truth, pred, 0.10);
  acc.rmspe = rmspe(truth, pred);
  return acc;
}

NnMeter::NnMeter(const PredictorTrainOptions& options) {
  predictors_.reserve(edge_device_zoo().size());
  for (const auto& device : edge_device_zoo()) {
    LatencyPredictor p(device);
    p.train(options);
    predictors_.push_back(std::move(p));
  }
}

const NnMeter& NnMeter::shared() {
  static const NnMeter instance{PredictorTrainOptions{}};
  return instance;
}

ModelLatencyPrediction NnMeter::predict_kernels(
    const std::vector<FusedKernel>& kernels) const {
  obs::Span span("latency", "latency.meter.predict");
  if (span.armed()) {
    span.arg("kernels", static_cast<std::int64_t>(kernels.size()));
  }
  ModelLatencyPrediction out;
  std::vector<double> values;
  for (const auto& p : predictors_) {
    const double ms = p.predict_model_ms(kernels);
    out.per_device_ms.emplace_back(p.device().name, ms);
    values.push_back(ms);
  }
  out.mean_ms = mean(values);
  out.std_ms = sample_stddev(values);
  return out;
}

ModelLatencyPrediction NnMeter::predict_graph(
    const graph::ModelGraph& graph) const {
  return predict_kernels(graph::fuse_graph(graph));
}

const LatencyPredictor& NnMeter::predictor(
    const std::string& device_name) const {
  for (const auto& p : predictors_) {
    if (p.device().name == device_name) return p;
  }
  throw InvalidArgument("unknown predictor: " + device_name);
}

}  // namespace dcnas::latency
