#include "dcnas/latency/device.hpp"

#include "dcnas/common/error.hpp"

namespace dcnas::latency {

const std::vector<DeviceSpec>& edge_device_zoo() {
  // Throughput/bandwidth figures are calibrated so that stock ResNet-18 at
  // 224x224 lands near the paper's Table 5 latencies (mean ~32 ms across
  // the four predictors with std ~20 ms, the VPU being ~2.5-3x slower than
  // the mobile GPUs). See tests/latency/calibration_test.cpp.
  static const std::vector<DeviceSpec> zoo = [] {
    std::vector<DeviceSpec> v;
    {
      DeviceSpec d;
      d.name = "cortexA76cpu";
      d.device_label = "Pixel4";
      d.framework = "TFLite v2.1";
      d.processor = "CortexA76 CPU";
      d.peak_gflops = 110.0;
      d.int8_peak_gops = 330.0;  // SDOT: 4x MACs, ~25% epilogue overhead
      d.mem_bw_gbps = 16.0;
      d.launch_overhead_ms = 0.03;
      d.util_small = 0.45;
      d.util_large = 0.85;
      d.flops_half_util = 6e6;
      d.simd_lanes = 4;
      d.jitter_amp = 0.02;
      v.push_back(d);
    }
    {
      DeviceSpec d;
      d.name = "adreno640gpu";
      d.device_label = "Mi9";
      d.framework = "TFLite v2.1";
      d.processor = "Adreno 640 GPU";
      d.peak_gflops = 200.0;
      d.int8_peak_gops = 400.0;  // DP4A-class, GPU epilogue costs more
      d.mem_bw_gbps = 34.0;
      d.launch_overhead_ms = 0.07;
      d.util_small = 0.35;
      d.util_large = 0.7;
      d.flops_half_util = 8e6;
      d.simd_lanes = 8;
      d.jitter_amp = 0.02;
      v.push_back(d);
    }
    {
      DeviceSpec d;
      d.name = "adreno630gpu";
      d.device_label = "Pixel3XL";
      d.framework = "TFLite v2.1";
      d.processor = "Adreno 630 GPU";
      d.peak_gflops = 165.0;
      d.int8_peak_gops = 330.0;
      d.mem_bw_gbps = 28.0;
      d.launch_overhead_ms = 0.075;
      d.util_small = 0.34;
      d.util_large = 0.68;
      d.flops_half_util = 8e6;
      d.simd_lanes = 8;
      d.jitter_amp = 0.02;
      v.push_back(d);
    }
    {
      DeviceSpec d;
      d.name = "myriadvpu";
      d.device_label = "Intel Movidius NCS2";
      d.framework = "OpenVINO2019R2";
      d.processor = "Myriad VPU";
      d.peak_gflops = 55.0;
      d.int8_peak_gops = 220.0;  // SHAVE cores are natively int8-first
      d.mem_bw_gbps = 6.5;
      d.launch_overhead_ms = 0.15;
      d.util_small = 0.45;
      d.util_large = 0.82;
      d.flops_half_util = 5e6;
      d.simd_lanes = 16;
      d.jitter_amp = 0.05;
      d.vpu_mode_switches = true;
      v.push_back(d);
    }
    return v;
  }();
  return zoo;
}

const DeviceSpec& device_by_name(const std::string& name) {
  for (const auto& d : edge_device_zoo()) {
    if (d.name == name) return d;
  }
  throw InvalidArgument("unknown device predictor: " + name);
}

}  // namespace dcnas::latency
