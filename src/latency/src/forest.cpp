#include "dcnas/latency/forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "dcnas/common/error.hpp"

namespace dcnas::latency {

namespace {

double mean_of(const Dataset2d& data, const std::vector<std::size_t>& idx,
               std::size_t begin, std::size_t end) {
  double s = 0.0;
  for (std::size_t i = begin; i < end; ++i) s += data.y[idx[i]];
  return s / static_cast<double>(end - begin);
}

}  // namespace

int RegressionTree::build(const Dataset2d& data,
                          std::vector<std::size_t>& idx, std::size_t begin,
                          std::size_t end, int depth,
                          const TreeOptions& options, Rng& rng) {
  const std::size_t n = end - begin;
  Node node;
  node.value = mean_of(data, idx, begin, end);
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  if (depth >= options.max_depth ||
      n < 2 * static_cast<std::size_t>(options.min_samples_leaf)) {
    return node_id;
  }

  // Find the best (feature, threshold) by SSE reduction.
  const std::size_t num_features = data.num_features();
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  double total_sum = 0.0, total_sumsq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double y = data.y[idx[i]];
    total_sum += y;
    total_sumsq += y * y;
  }
  const double parent_sse =
      total_sumsq - total_sum * total_sum / static_cast<double>(n);

  std::vector<std::size_t> order(idx.begin() + static_cast<std::ptrdiff_t>(begin),
                                 idx.begin() + static_cast<std::ptrdiff_t>(end));
  for (std::size_t f = 0; f < num_features; ++f) {
    if (options.feature_fraction < 1.0 &&
        rng.uniform() > options.feature_fraction) {
      continue;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.x[a][f] < data.x[b][f];
    });
    double left_sum = 0.0, left_sumsq = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double y = data.y[order[i]];
      left_sum += y;
      left_sumsq += y * y;
      const double xv = data.x[order[i]][f];
      const double xn = data.x[order[i + 1]][f];
      if (xv == xn) continue;  // can't split between equal values
      const auto nl = static_cast<double>(i + 1);
      const auto nr = static_cast<double>(n - i - 1);
      if (nl < options.min_samples_leaf || nr < options.min_samples_leaf)
        continue;
      const double right_sum = total_sum - left_sum;
      const double right_sumsq = total_sumsq - left_sumsq;
      const double sse = (left_sumsq - left_sum * left_sum / nl) +
                         (right_sumsq - right_sum * right_sum / nr);
      const double gain = parent_sse - sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (xv + xn);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition idx[begin, end) in place.
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t s) {
        return data.x[s][static_cast<std::size_t>(best_feature)] <=
               best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  DCNAS_ASSERT(mid > begin && mid < end, "degenerate CART partition");

  const int left = build(data, idx, begin, mid, depth + 1, options, rng);
  const int right = build(data, idx, mid, end, depth + 1, options, rng);
  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

void RegressionTree::fit(const Dataset2d& data,
                         const std::vector<std::size_t>& sample_idx,
                         const TreeOptions& options, Rng& rng) {
  DCNAS_CHECK(!sample_idx.empty(), "tree fit requires samples");
  DCNAS_CHECK(data.x.size() == data.y.size(), "dataset x/y size mismatch");
  nodes_.clear();
  std::vector<std::size_t> idx = sample_idx;
  build(data, idx, 0, idx.size(), 0, options, rng);
}

double RegressionTree::predict(const std::vector<double>& features) const {
  DCNAS_CHECK(trained(), "predict on untrained tree");
  int cur = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.feature < 0) return n.value;
    DCNAS_CHECK(static_cast<std::size_t>(n.feature) < features.size(),
                "feature vector too short for this tree");
    cur = (features[static_cast<std::size_t>(n.feature)] <= n.threshold)
              ? n.left
              : n.right;
  }
}

RegressionTree RegressionTree::from_nodes(std::vector<Node> nodes) {
  DCNAS_CHECK(!nodes.empty(), "tree must have at least one node");
  const auto n = static_cast<int>(nodes.size());
  for (const Node& node : nodes) {
    if (node.feature < 0) {
      DCNAS_CHECK(node.left == -1 && node.right == -1,
                  "leaf node with children");
    } else {
      DCNAS_CHECK(node.left >= 0 && node.left < n && node.right >= 0 &&
                      node.right < n,
                  "tree child index out of range");
    }
  }
  RegressionTree t;
  t.nodes_ = std::move(nodes);
  return t;
}

RandomForest RandomForest::from_trees(std::vector<RegressionTree> trees) {
  DCNAS_CHECK(!trees.empty(), "forest must have at least one tree");
  for (const auto& t : trees) {
    DCNAS_CHECK(t.trained(), "forest tree is untrained");
  }
  RandomForest f;
  f.trees_ = std::move(trees);
  return f;
}

void RandomForest::fit(const Dataset2d& data, const ForestOptions& options) {
  DCNAS_CHECK(options.num_trees > 0, "forest needs at least one tree");
  DCNAS_CHECK(!data.x.empty(), "forest fit requires samples");
  DCNAS_CHECK(data.x.size() == data.y.size(), "dataset x/y size mismatch");
  for (const auto& row : data.x) {
    DCNAS_CHECK(row.size() == data.num_features(),
                "ragged feature matrix");
  }
  trees_.assign(static_cast<std::size_t>(options.num_trees),
                RegressionTree{});
  Rng root(options.seed);
  const auto n = data.size();
  const auto boot =
      static_cast<std::size_t>(std::max<double>(1.0, options.bootstrap_fraction *
                                                         static_cast<double>(n)));
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    Rng rng = root.fork(t);
    std::vector<std::size_t> sample(boot);
    for (auto& s : sample) {
      s = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    trees_[t].fit(data, sample, options.tree, rng);
  }
}

double RandomForest::predict(const std::vector<double>& features) const {
  DCNAS_CHECK(trained(), "predict on untrained forest");
  double s = 0.0;
  for (const auto& t : trees_) s += t.predict(features);
  return s / static_cast<double>(trees_.size());
}

}  // namespace dcnas::latency
