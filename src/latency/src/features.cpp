#include "dcnas/latency/features.hpp"

#include <algorithm>
#include <cmath>

#include "dcnas/tensor/im2col.hpp"

namespace dcnas::latency {

using graph::ActShape;
using graph::FusedKernel;
using graph::KernelKind;

std::vector<double> kernel_features(const FusedKernel& k) {
  std::vector<double> f(kNumKernelFeatures);
  f[0] = static_cast<double>(k.in_shape.c);
  f[1] = static_cast<double>(k.out_shape.c);
  f[2] = static_cast<double>(k.in_shape.h);
  f[3] = static_cast<double>(k.out_shape.h);
  f[4] = static_cast<double>(k.attrs.kernel);
  f[5] = static_cast<double>(k.attrs.stride);
  f[6] = std::log2(static_cast<double>(std::max<std::int64_t>(k.flops, 1)));
  f[7] = std::log2(static_cast<double>(std::max<std::int64_t>(k.total_bytes(), 1)));
  f[8] = static_cast<double>(k.out_shape.h * k.out_shape.w);
  f[9] = static_cast<double>(k.weight_bytes()) / 1024.0;
  return f;
}

namespace {

std::int64_t log_uniform_int(Rng& rng, std::int64_t lo, std::int64_t hi) {
  const double u = rng.uniform(std::log(static_cast<double>(lo)),
                               std::log(static_cast<double>(hi) + 1.0));
  return std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::exp(u)), lo, hi);
}

bool is_conv_kind(KernelKind kind) {
  return kind == KernelKind::kConvBnRelu || kind == KernelKind::kConvBn ||
         kind == KernelKind::kConvRelu || kind == KernelKind::kConv;
}

}  // namespace

FusedKernel sample_kernel(KernelKind kind, Rng& rng) {
  FusedKernel k;
  k.kind = kind;
  k.name = "sample";
  if (is_conv_kind(kind)) {
    const std::int64_t cin = log_uniform_int(rng, 3, 512);
    const std::int64_t cout = log_uniform_int(rng, 8, 512);
    const std::int64_t hw = log_uniform_int(rng, 7, 224);
    static constexpr std::int64_t kernels[] = {1, 3, 5, 7};
    const std::int64_t ks = kernels[rng.uniform_int(0, 3)];
    const std::int64_t stride = rng.uniform_int(1, 2);
    const std::int64_t pad = ks / 2;
    if (hw + 2 * pad < ks) return sample_kernel(kind, rng);  // retry tiny
    k.in_shape = {cin, hw, hw};
    const std::int64_t out_hw = conv_out_size(hw, ks, stride, pad);
    k.out_shape = {cout, out_hw, out_hw};
    k.attrs = {ks, stride, pad};
    k.params = cout * cin * ks * ks;
    k.flops = 2 * k.params * out_hw * out_hw;
    if (kind == KernelKind::kConvBnRelu || kind == KernelKind::kConvRelu) {
      k.flops += k.out_shape.numel();
    }
    if (kind == KernelKind::kConvBnRelu || kind == KernelKind::kConvBn) {
      k.params += 4 * cout;
    }
    return k;
  }
  switch (kind) {
    case KernelKind::kMaxPool: {
      const std::int64_t c = log_uniform_int(rng, 8, 512);
      const std::int64_t hw = log_uniform_int(rng, 8, 224);
      const std::int64_t ks = rng.uniform_int(2, 3);
      const std::int64_t stride = rng.uniform_int(1, 2);
      const std::int64_t pad = (ks - 1) / 2;
      k.in_shape = {c, hw, hw};
      const std::int64_t out_hw = conv_out_size(hw, ks, stride, pad);
      k.out_shape = {c, out_hw, out_hw};
      k.attrs = {ks, stride, pad};
      k.flops = ks * ks * k.out_shape.numel();
      return k;
    }
    case KernelKind::kAdd:
    case KernelKind::kAddRelu: {
      const std::int64_t c = log_uniform_int(rng, 8, 512);
      const std::int64_t hw = log_uniform_int(rng, 7, 112);
      k.in_shape = {c, hw, hw};
      k.out_shape = k.in_shape;
      k.flops = k.out_shape.numel() *
                (kind == KernelKind::kAddRelu ? 2 : 1);
      return k;
    }
    case KernelKind::kRelu:
    case KernelKind::kBatchNorm: {
      const std::int64_t c = log_uniform_int(rng, 8, 512);
      const std::int64_t hw = log_uniform_int(rng, 7, 112);
      k.in_shape = {c, hw, hw};
      k.out_shape = k.in_shape;
      k.flops = k.out_shape.numel() *
                (kind == KernelKind::kBatchNorm ? 2 : 1);
      if (kind == KernelKind::kBatchNorm) k.params = 4 * c;
      return k;
    }
    case KernelKind::kGlobalAvgPool: {
      const std::int64_t c = log_uniform_int(rng, 8, 1024);
      const std::int64_t hw = log_uniform_int(rng, 2, 112);
      k.in_shape = {c, hw, hw};
      k.out_shape = {c, 1, 1};
      k.flops = k.in_shape.numel();
      return k;
    }
    case KernelKind::kLinear: {
      const std::int64_t in = log_uniform_int(rng, 32, 4096);
      const std::int64_t out = log_uniform_int(rng, 2, 1024);
      k.in_shape = {in, 1, 1};
      k.out_shape = {out, 1, 1};
      k.params = in * out + out;
      k.flops = 2 * in * out;
      return k;
    }
    default:
      break;
  }
  throw InvalidArgument("sample_kernel: unsupported kind");
}

}  // namespace dcnas::latency
