#include "dcnas/quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "dcnas/common/error.hpp"
#include "dcnas/obs/metrics.hpp"

namespace dcnas::quant {

namespace {

struct QuantMetrics {
  obs::Counter& weight_channels;
  obs::Counter& act_values;
  obs::Counter& act_saturated;

  static QuantMetrics& get() {
    static QuantMetrics m{
        obs::MetricsRegistry::global().counter("quant.weight_channels.count"),
        obs::MetricsRegistry::global().counter("quant.act.count"),
        obs::MetricsRegistry::global().counter("quant.act.saturated")};
    return m;
  }
};

inline std::int8_t quantize_one(float x, float inv_scale,
                                std::int64_t& saturated) {
  const long r = std::lrintf(x * inv_scale);
  if (r > 127 || r < -127) {
    ++saturated;
    return static_cast<std::int8_t>(r > 127 ? 127 : -127);
  }
  return static_cast<std::int8_t>(r);
}

}  // namespace

float absmax(const float* x, std::int64_t n) {
  float a = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) a = std::max(a, std::fabs(x[i]));
  return a;
}

float scale_for_absmax(float a) { return a == 0.0f ? 1.0f : a / kQmax; }

QuantizedWeights quantize_weights(const float* w, std::int64_t oc,
                                  std::int64_t row) {
  DCNAS_CHECK(oc > 0 && row > 0, "quantize_weights requires a non-empty matrix");
  QuantizedWeights out;
  out.q.resize(static_cast<std::size_t>(oc * row));
  out.scale.resize(static_cast<std::size_t>(oc));
  for (std::int64_t c = 0; c < oc; ++c) {
    const float* w_row = w + c * row;
    const float s = scale_for_absmax(absmax(w_row, row));
    out.scale[static_cast<std::size_t>(c)] = s;
    const float inv = 1.0f / s;
    std::int8_t* q_row = out.q.data() + c * row;
    std::int64_t saturated = 0;  // cannot fire: |w| <= absmax by construction
    for (std::int64_t j = 0; j < row; ++j) {
      q_row[j] = quantize_one(w_row[j], inv, saturated);
    }
  }
  QuantMetrics::get().weight_channels.add(oc);
  return out;
}

std::int64_t quantize_activations(const float* x, std::int64_t n, float scale,
                                  std::int8_t* q) {
  DCNAS_CHECK(scale > 0.0f && std::isfinite(scale),
              "activation scale must be positive and finite");
  const float inv = 1.0f / scale;
  std::int64_t saturated = 0;
  for (std::int64_t i = 0; i < n; ++i) q[i] = quantize_one(x[i], inv, saturated);
  QuantMetrics& m = QuantMetrics::get();
  m.act_values.add(n);
  if (saturated > 0) m.act_saturated.add(saturated);
  return saturated;
}

void dequantize(const std::int8_t* q, std::int64_t n, float scale, float* x) {
  for (std::int64_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(q[i]) * scale;
  }
}

}  // namespace dcnas::quant
