#pragma once
/// \file quantize.hpp
/// \brief Per-channel symmetric int8 quantization primitives.
///
/// This is the numeric contract QUANTIZATION.md documents, in one place:
///
///  - Weights quantize per output channel: s_w[oc] = absmax(w[oc]) / 127,
///    q = clamp(round(w / s_w[oc]), -127, 127). The scheme is symmetric
///    (zero-point 0, q = -128 never produced), so zero padding in im2col
///    and residual zeros stay exact.
///  - Activations quantize per tensor with a scale calibrated offline:
///    s_x = absmax(X_calib) / 127 over a calibration batch; at inference
///    q_x = clamp(round(x / s_x), -127, 127) — values outside the
///    calibrated range saturate (counted by `quant.act.saturated`).
///  - An all-zero channel (or an all-zero calibration range) quantizes with
///    scale 1.0 by convention: every q is 0 and dequantization is exact.
///  - Rounding is lrintf (round-to-nearest, ties-to-even in the default
///    FP environment), chosen so the compiler and the PlanVerifier can
///    re-derive quantized payloads bitwise from the same fp32 source.
///
/// All functions are deterministic and allocation-transparent; the
/// `quant.*` counters documented in OBSERVABILITY.md track volume.

#include <cstdint>
#include <vector>

namespace dcnas::quant {

/// Largest quantized magnitude: symmetric int8 uses [-127, 127].
inline constexpr float kQmax = 127.0f;

/// absmax over a buffer (NaN-free inputs assumed; NaN poisons the result).
float absmax(const float* x, std::int64_t n);

/// Scale for a given absmax: a / 127, or 1.0 when a == 0 (all-zero range).
float scale_for_absmax(float a);

/// Per-out-channel symmetric quantization of an (OC, ROW) weight matrix.
struct QuantizedWeights {
  std::vector<std::int8_t> q;  ///< OC x ROW, row-major, same extent as w
  std::vector<float> scale;    ///< per-channel scales, size OC
};
QuantizedWeights quantize_weights(const float* w, std::int64_t oc,
                                  std::int64_t row);

/// Quantizes \p n activations with a per-tensor scale into \p q.
/// Returns the number of values that saturated (|round(x/s)| > 127).
std::int64_t quantize_activations(const float* x, std::int64_t n, float scale,
                                  std::int8_t* q);

/// Dequantization helper (tests and round-trip checks): x = q * scale.
void dequantize(const std::int8_t* q, std::int64_t n, float scale, float* x);

}  // namespace dcnas::quant
