#include "dcnas/pareto/export.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "dcnas/common/error.hpp"
#include "dcnas/common/strings.hpp"

namespace dcnas::pareto {

CsvTable scatter_csv(const std::vector<Objectives>& points,
                     const std::vector<std::size_t>& front) {
  CsvTable table({"index", "accuracy", "latency_ms", "memory_mb",
                  "accuracy_norm", "latency_norm", "memory_norm",
                  "non_dominated"});
  const auto norm = normalize(points);
  const std::set<std::size_t> front_set(front.begin(), front.end());
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row({std::to_string(i), format_fixed(points[i].accuracy, 4),
                   format_fixed(points[i].latency_ms, 4),
                   format_fixed(points[i].memory_mb, 4),
                   format_fixed(norm[i].accuracy, 6),
                   format_fixed(norm[i].latency, 6),
                   format_fixed(norm[i].memory, 6),
                   front_set.count(i) ? "1" : "0"});
  }
  return table;
}

std::string ascii_scatter(const std::vector<Objectives>& points,
                          const std::vector<std::size_t>& front,
                          const std::string& projection, int width,
                          int height) {
  DCNAS_CHECK(!points.empty(), "scatter of empty point set");
  DCNAS_CHECK(width >= 10 && height >= 5, "scatter canvas too small");
  const auto norm = normalize(points);
  auto pick = [&](const NormalizedObjectives& n) -> std::pair<double, double> {
    if (projection == "latency-accuracy") return {n.latency, n.accuracy};
    if (projection == "memory-accuracy") return {n.memory, n.accuracy};
    if (projection == "latency-memory") return {n.latency, n.memory};
    throw InvalidArgument("unknown scatter projection: " + projection);
  };
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  auto plot = [&](std::size_t i, char ch) {
    const auto [x, y] = pick(norm[i]);
    const int cx = std::min(width - 1, static_cast<int>(x * (width - 1)));
    const int cy =
        height - 1 - std::min(height - 1, static_cast<int>(y * (height - 1)));
    canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = ch;
  };
  const std::set<std::size_t> front_set(front.begin(), front.end());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!front_set.count(i)) plot(i, '.');
  }
  for (std::size_t i : front) plot(i, '#');  // front drawn on top
  std::ostringstream os;
  os << projection << "  ('.' dominated, '#' non-dominated)\n";
  for (const auto& row : canvas) os << "|" << row << "|\n";
  return os.str();
}

CsvTable radar_csv(const std::vector<RadarRow>& rows) {
  DCNAS_CHECK(!rows.empty(), "radar_csv needs at least one row");
  std::vector<std::string> header = {"label"};
  for (const auto& [axis, value] : rows.front().axes) {
    (void)value;
    header.push_back(axis);
  }
  CsvTable table(header);
  for (const auto& row : rows) {
    DCNAS_CHECK(row.axes.size() + 1 == header.size(),
                "radar rows must share the same axes");
    std::vector<std::string> cells = {row.label};
    for (const auto& [axis, value] : row.axes) {
      DCNAS_CHECK(axis == header[cells.size()], "radar axis order mismatch");
      cells.push_back(format_fixed(value, 6));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

std::string radar_text(const std::vector<RadarRow>& rows, int bar_width) {
  DCNAS_CHECK(bar_width >= 4, "radar bar width too small");
  std::ostringstream os;
  for (const auto& row : rows) {
    os << row.label << "\n";
    for (const auto& [axis, value] : row.axes) {
      DCNAS_CHECK(value >= -1e-9 && value <= 1.0 + 1e-9,
                  "radar axis values must be normalized to [0,1]");
      const int filled = static_cast<int>(
          std::lround(std::clamp(value, 0.0, 1.0) * bar_width));
      os << "  " << pad(axis, 22) << " ["
         << std::string(static_cast<std::size_t>(filled), '=')
         << std::string(static_cast<std::size_t>(bar_width - filled), ' ')
         << "] " << format_fixed(value, 3) << "\n";
    }
  }
  return os.str();
}

}  // namespace dcnas::pareto
