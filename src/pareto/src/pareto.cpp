#include "dcnas/pareto/pareto.hpp"

#include <algorithm>
#include <limits>

#include "dcnas/common/error.hpp"

namespace dcnas::pareto {

bool dominates(const Objectives& a, const Objectives& b, DominanceMode mode) {
  if (mode == DominanceMode::kStrictAll) {
    return a.accuracy > b.accuracy && a.latency_ms < b.latency_ms &&
           a.memory_mb < b.memory_mb;
  }
  const bool no_worse = a.accuracy >= b.accuracy &&
                        a.latency_ms <= b.latency_ms &&
                        a.memory_mb <= b.memory_mb;
  const bool better = a.accuracy > b.accuracy || a.latency_ms < b.latency_ms ||
                      a.memory_mb < b.memory_mb;
  return no_worse && better;
}

std::vector<std::size_t> non_dominated_indices(
    const std::vector<Objectives>& points, DominanceMode mode) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && dominates(points[j], points[i], mode)) dominated = true;
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

std::vector<std::vector<std::size_t>> fast_non_dominated_sort(
    const std::vector<Objectives>& points, DominanceMode mode) {
  const std::size_t n = points.size();
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::vector<std::size_t>> fronts;
  std::vector<std::size_t> current;
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (dominates(points[p], points[q], mode)) {
        dominated_by[p].push_back(q);
      } else if (dominates(points[q], points[p], mode)) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) current.push_back(p);
  }
  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t p : current) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    std::sort(next.begin(), next.end());
    current = std::move(next);
  }
  return fronts;
}

std::vector<NormalizedObjectives> normalize(
    const std::vector<Objectives>& points) {
  DCNAS_CHECK(!points.empty(), "normalize of empty point set");
  Objectives lo = points.front();
  Objectives hi = points.front();
  for (const auto& p : points) {
    lo.accuracy = std::min(lo.accuracy, p.accuracy);
    hi.accuracy = std::max(hi.accuracy, p.accuracy);
    lo.latency_ms = std::min(lo.latency_ms, p.latency_ms);
    hi.latency_ms = std::max(hi.latency_ms, p.latency_ms);
    lo.memory_mb = std::min(lo.memory_mb, p.memory_mb);
    hi.memory_mb = std::max(hi.memory_mb, p.memory_mb);
  }
  auto scale = [](double v, double lo_v, double hi_v) {
    return (hi_v > lo_v) ? (v - lo_v) / (hi_v - lo_v) : 0.5;
  };
  std::vector<NormalizedObjectives> out;
  out.reserve(points.size());
  for (const auto& p : points) {
    out.push_back({scale(p.accuracy, lo.accuracy, hi.accuracy),
                   scale(p.latency_ms, lo.latency_ms, hi.latency_ms),
                   scale(p.memory_mb, lo.memory_mb, hi.memory_mb)});
  }
  return out;
}

std::vector<double> crowding_distances(const std::vector<Objectives>& points,
                                       const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> dist(n, 0.0);
  if (n <= 2) {
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    return dist;
  }
  auto accumulate = [&](auto getter) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return getter(points[front[a]]) < getter(points[front[b]]);
    });
    const double lo = getter(points[front[order.front()]]);
    const double hi = getter(points[front[order.back()]]);
    dist[order.front()] = std::numeric_limits<double>::infinity();
    dist[order.back()] = std::numeric_limits<double>::infinity();
    if (hi <= lo) return;  // degenerate objective
    for (std::size_t i = 1; i + 1 < n; ++i) {
      dist[order[i]] += (getter(points[front[order[i + 1]]]) -
                         getter(points[front[order[i - 1]]])) /
                        (hi - lo);
    }
  };
  accumulate([](const Objectives& o) { return o.accuracy; });
  accumulate([](const Objectives& o) { return o.latency_ms; });
  accumulate([](const Objectives& o) { return o.memory_mb; });
  return dist;
}

double hypervolume(const std::vector<Objectives>& points,
                   const Objectives& reference) {
  // Transform to origin-anchored boxes: every point must be inside the
  // reference octant.
  struct Box {
    double x, y, z;  // latency slack, memory slack, accuracy gain
  };
  std::vector<Box> boxes;
  boxes.reserve(points.size());
  for (const auto& p : points) {
    DCNAS_CHECK(p.latency_ms <= reference.latency_ms &&
                    p.memory_mb <= reference.memory_mb &&
                    p.accuracy >= reference.accuracy,
                "hypervolume point outside the reference octant");
    boxes.push_back({reference.latency_ms - p.latency_ms,
                     reference.memory_mb - p.memory_mb,
                     p.accuracy - reference.accuracy});
  }
  if (boxes.empty()) return 0.0;
  // Sweep accuracy (z) levels from high to low; between consecutive levels
  // the covered (x, y) region is the union of origin-anchored rectangles of
  // all boxes with z >= level, whose area is a staircase sum.
  std::sort(boxes.begin(), boxes.end(),
            [](const Box& a, const Box& b) { return a.z > b.z; });
  auto staircase_area = [](std::vector<Box> active) {
    std::sort(active.begin(), active.end(),
              [](const Box& a, const Box& b) { return a.x > b.x; });
    double area = 0.0;
    double ymax = 0.0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const double next_x = (i + 1 < active.size()) ? active[i + 1].x : 0.0;
      ymax = std::max(ymax, active[i].y);
      area += (active[i].x - next_x) * ymax;
    }
    return area;
  };
  double volume = 0.0;
  std::vector<Box> active;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    active.push_back(boxes[i]);
    const double z_hi = boxes[i].z;
    const double z_lo = (i + 1 < boxes.size()) ? boxes[i + 1].z : 0.0;
    if (z_hi > z_lo) {
      volume += staircase_area(active) * (z_hi - z_lo);
    }
  }
  return volume;
}

}  // namespace dcnas::pareto
