#pragma once
/// \file pareto.hpp
/// \brief Multi-objective (accuracy ↑, latency ↓, memory ↓) Pareto
/// machinery: dominance, non-dominated filtering, NSGA-II-style fast
/// non-dominated sort, crowding distance, hypervolume, normalization.

#include <cstddef>
#include <string>
#include <vector>

namespace dcnas::pareto {

/// One point in the paper's objective space. Accuracy is maximized;
/// latency and memory are minimized.
struct Objectives {
  double accuracy = 0.0;   ///< percent, higher better
  double latency_ms = 0.0; ///< lower better
  double memory_mb = 0.0;  ///< lower better
};

/// Dominance definition.
///
/// kWeak is the textbook relation: a dominates b when a is no worse in all
/// objectives and strictly better in at least one.
///
/// kStrictAll requires a to be strictly better in *every* objective.
///
/// The paper's Table 4 contains weakly-dominated rows (rows 4 and 5 report
/// identical 11.18 MB memory with row 4 better in both accuracy and
/// latency), so its filter did not apply weak dominance over the *rounded*
/// objectives. The likely mechanism is that its memory objective was the
/// on-disk ONNX file size, which differs by a few bytes between otherwise
/// parameter-identical configurations and so acted as a continuous
/// tie-breaker. Our memory model is byte-exact per architecture, which
/// makes ties real: under kStrictAll every memory-tied trial survives
/// (front of 100+), while kWeak yields a compact front with the paper's
/// composition (kernel 3, width 32, minimal padding). kWeak is the
/// default; the Table 4 bench reports both for comparison.
enum class DominanceMode { kWeak, kStrictAll };

/// True when \p a dominates \p b under the given mode.
bool dominates(const Objectives& a, const Objectives& b, DominanceMode mode);

/// Indices of non-dominated points (ascending order).
std::vector<std::size_t> non_dominated_indices(
    const std::vector<Objectives>& points, DominanceMode mode);

/// NSGA-II fast non-dominated sort: fronts[0] is the Pareto front,
/// fronts[k] the k-th layer after removing earlier layers.
std::vector<std::vector<std::size_t>> fast_non_dominated_sort(
    const std::vector<Objectives>& points, DominanceMode mode);

/// Min-max normalization of each objective to [0, 1] ("normalized within
/// their respective ranges", Fig. 3). Degenerate ranges map to 0.5.
struct NormalizedObjectives {
  double accuracy = 0.0;
  double latency = 0.0;
  double memory = 0.0;
};
std::vector<NormalizedObjectives> normalize(
    const std::vector<Objectives>& points);

/// NSGA-II crowding distance within one front (index-aligned with
/// \p front); boundary points get +infinity.
std::vector<double> crowding_distances(const std::vector<Objectives>& points,
                                       const std::vector<std::size_t>& front);

/// Hypervolume (to be maximized) of the set w.r.t. a reference point that
/// every point must dominate weakly: accuracy >= ref.accuracy,
/// latency <= ref.latency, memory <= ref.memory. Computed exactly by
/// sweeping accuracy levels and accumulating 2-D slabs.
double hypervolume(const std::vector<Objectives>& points,
                   const Objectives& reference);

}  // namespace dcnas::pareto
