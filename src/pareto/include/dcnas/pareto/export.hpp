#pragma once
/// \file export.hpp
/// \brief Figure data exporters: the 3-D scatter of Figure 3 (CSV + ASCII
/// projections) and the radar plots of Figure 4.

#include <string>
#include <vector>

#include "dcnas/common/csv.hpp"
#include "dcnas/pareto/pareto.hpp"

namespace dcnas::pareto {

/// CSV with raw + normalized objectives and a non-dominated flag — the
/// exact data behind Figure 3's interactive scatter.
CsvTable scatter_csv(const std::vector<Objectives>& points,
                     const std::vector<std::size_t>& front);

/// ASCII 2-D projection of the scatter ('.' dominated, '#' front) for
/// terminal inspection; axes chosen by name: "latency-accuracy",
/// "memory-accuracy" or "latency-memory".
std::string ascii_scatter(const std::vector<Objectives>& points,
                          const std::vector<std::size_t>& front,
                          const std::string& projection, int width = 72,
                          int height = 24);

/// One radar row per front member: normalized objective axes (accuracy,
/// 1-latency, 1-memory so larger = better) plus normalized configuration
/// axes supplied by the caller — Figure 4's data.
struct RadarRow {
  std::string label;
  std::vector<std::pair<std::string, double>> axes;  ///< values in [0, 1]
};

CsvTable radar_csv(const std::vector<RadarRow>& rows);

/// Renders radar rows as aligned text bars for terminal output.
std::string radar_text(const std::vector<RadarRow>& rows, int bar_width = 30);

}  // namespace dcnas::pareto
