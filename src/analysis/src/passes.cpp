#include "dcnas/analysis/passes.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "dcnas/analysis/inference.hpp"

namespace dcnas::analysis {

namespace {

using graph::ActShape;
using graph::GraphNode;
using graph::ModelGraph;
using graph::OpKind;

Diagnostic diag(const char* rule, Severity severity, int node,
                const ModelGraph& g, std::string message) {
  Diagnostic d;
  d.rule = rule;
  d.severity = severity;
  d.node = node;
  if (node >= 0 && node < static_cast<int>(g.size())) {
    d.node_name = g.nodes()[static_cast<std::size_t>(node)].name;
  }
  d.message = std::move(message);
  return d;
}

/// Expected input arity per op kind.
std::size_t expected_arity(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return 0;
    case OpKind::kAdd: return 2;
    default: return 1;
  }
}

/// True when every input index of node \p i references a strictly earlier
/// node — the precondition for any pass that dereferences producers. The
/// topology pass reports violations; other passes silently skip them.
bool inputs_resolvable(const ModelGraph& g, std::size_t i) {
  for (int in : g.nodes()[i].inputs) {
    if (in < 0 || in >= static_cast<int>(i)) return false;
  }
  return true;
}

/// Stored output shapes of node \p i's producers, or nullopt when an index
/// dangles.
std::optional<std::vector<ActShape>> producer_shapes(const ModelGraph& g,
                                                     std::size_t i) {
  if (!inputs_resolvable(g, i)) return std::nullopt;
  std::vector<ActShape> out;
  out.reserve(g.nodes()[i].inputs.size());
  for (int in : g.nodes()[i].inputs) {
    out.push_back(g.nodes()[static_cast<std::size_t>(in)].out_shape);
  }
  return out;
}

class TopologyPass : public VerifyPass {
 public:
  std::string name() const override { return "topology"; }

  void run(const ModelGraph& g, std::vector<Diagnostic>& out) const override {
    const auto& nodes = g.nodes();
    if (nodes.empty()) {
      out.push_back(diag(rules::kInputFirst, Severity::kError, -1, g,
                         "graph is empty"));
      return;
    }
    if (nodes[0].kind != OpKind::kInput) {
      out.push_back(diag(rules::kInputFirst, Severity::kError, 0, g,
                         "first node must be an Input, got " +
                             std::string(op_kind_name(nodes[0].kind))));
    }
    std::size_t output_count = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const GraphNode& n = nodes[i];
      if (n.kind == OpKind::kInput && i != 0) {
        out.push_back(diag(rules::kInputFirst, Severity::kError,
                           static_cast<int>(i), g,
                           "extra Input node; a graph has exactly one"));
      }
      if (n.kind == OpKind::kOutput) ++output_count;
      if (n.inputs.size() != expected_arity(n.kind)) {
        out.push_back(diag(
            rules::kArity, Severity::kError, static_cast<int>(i), g,
            std::string(op_kind_name(n.kind)) + " expects " +
                std::to_string(expected_arity(n.kind)) + " input(s), has " +
                std::to_string(n.inputs.size())));
      }
      for (int in : n.inputs) {
        if (in < 0 || in >= static_cast<int>(nodes.size())) {
          out.push_back(diag(rules::kDanglingInput, Severity::kError,
                             static_cast<int>(i), g,
                             "input index " + std::to_string(in) +
                                 " does not exist (graph has " +
                                 std::to_string(nodes.size()) + " nodes)"));
        } else if (in >= static_cast<int>(i)) {
          out.push_back(diag(rules::kDanglingInput, Severity::kError,
                             static_cast<int>(i), g,
                             "input index " + std::to_string(in) +
                                 " is not a preceding node (topological "
                                 "order violated)"));
        }
      }
    }
    if (output_count != 1) {
      out.push_back(diag(rules::kSingleOutput, Severity::kError, -1, g,
                         "graph must have exactly one Output node, found " +
                             std::to_string(output_count)));
    }

    // Orphans: nodes from which no Output is reachable. Walk ancestors of
    // every output along resolvable edges; what is left over is dead.
    std::vector<bool> live(nodes.size(), false);
    std::vector<int> stack;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].kind == OpKind::kOutput) {
        live[i] = true;
        stack.push_back(static_cast<int>(i));
      }
    }
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      for (int in : nodes[static_cast<std::size_t>(cur)].inputs) {
        if (in < 0 || in >= cur) continue;  // dangling, reported above
        if (!live[static_cast<std::size_t>(in)]) {
          live[static_cast<std::size_t>(in)] = true;
          stack.push_back(in);
        }
      }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!live[i] && output_count > 0) {
        out.push_back(diag(rules::kOrphan, Severity::kError,
                           static_cast<int>(i), g,
                           std::string(op_kind_name(nodes[i].kind)) +
                               " node feeds no Output (orphan)"));
      }
    }
  }
};

class ShapePass : public VerifyPass {
 public:
  std::string name() const override { return "shape"; }

  void run(const ModelGraph& g, std::vector<Diagnostic>& out) const override {
    const auto& nodes = g.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const GraphNode& n = nodes[i];
      if (n.out_shape.c < 1 || n.out_shape.h < 1 || n.out_shape.w < 1) {
        out.push_back(diag(rules::kOutShape, Severity::kError,
                           static_cast<int>(i), g,
                           "non-positive out_shape " +
                               n.out_shape.to_string()));
        continue;
      }
      const auto producers = producer_shapes(g, i);
      if (!producers) continue;  // dangling inputs: topology pass reports
      if (!producers->empty() && n.in_shape != producers->front()) {
        const auto& src =
            nodes[static_cast<std::size_t>(n.inputs.front())];
        out.push_back(diag(rules::kInShape, Severity::kError,
                           static_cast<int>(i), g,
                           "in_shape " + n.in_shape.to_string() +
                               " does not match producer '" + src.name +
                               "' out_shape " + src.out_shape.to_string()));
      }
      if (n.kind == OpKind::kAdd && producers->size() == 2 &&
          (*producers)[0] != (*producers)[1]) {
        const auto& a = nodes[static_cast<std::size_t>(n.inputs[0])];
        const auto& b = nodes[static_cast<std::size_t>(n.inputs[1])];
        out.push_back(diag(rules::kAddShape, Severity::kError,
                           static_cast<int>(i), g,
                           "operand shapes disagree: '" + a.name + "' " +
                               a.out_shape.to_string() + " vs '" + b.name +
                               "' " + b.out_shape.to_string()));
        continue;  // out_shape inference is ambiguous on mismatched adds
      }
      const auto expected = infer_node(n, *producers);
      if (expected && expected->out_shape != n.out_shape) {
        out.push_back(diag(rules::kOutShape, Severity::kError,
                           static_cast<int>(i), g,
                           "stored out_shape " + n.out_shape.to_string() +
                               " but attrs and producer shapes imply " +
                               expected->out_shape.to_string()));
      }
    }
  }
};

class GeometryPass : public VerifyPass {
 public:
  std::string name() const override { return "geometry"; }

  void run(const ModelGraph& g, std::vector<Diagnostic>& out) const override {
    const auto& nodes = g.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const GraphNode& n = nodes[i];
      if (n.kind != OpKind::kConv && n.kind != OpKind::kMaxPool) continue;
      const auto& a = n.attrs;
      auto bad = [&](const std::string& message) {
        out.push_back(diag(rules::kGeometry, Severity::kError,
                           static_cast<int>(i), g, message));
      };
      if (a.kernel < 1) bad("kernel " + std::to_string(a.kernel) + " < 1");
      if (a.stride < 1) bad("stride " + std::to_string(a.stride) + " < 1");
      if (a.padding < 0) bad("padding " + std::to_string(a.padding) + " < 0");
      // The paper's search space legitimately pairs kernel 3 with padding 3
      // (conv1 padding options {1,2,3} x kernel {3,7}), so padding == kernel
      // must verify clean; beyond that the extra rows are pure zero-padding.
      if (n.kind == OpKind::kConv && a.kernel >= 1 && a.padding > a.kernel) {
        bad("padding " + std::to_string(a.padding) + " > kernel " +
            std::to_string(a.kernel) +
            " (window columns made entirely of padding)");
      }
      if (n.kind == OpKind::kMaxPool && a.padding > a.kernel / 2) {
        bad("pool padding " + std::to_string(a.padding) + " > kernel/2 (" +
            std::to_string(a.kernel / 2) + "); padded maxima would be fake");
      }
      const auto producers = producer_shapes(g, i);
      if (!producers || producers->empty()) continue;
      const ActShape& in = producers->front();
      if (a.kernel >= 1 && a.stride >= 1 && a.padding >= 0 &&
          (in.h > 0 && in.w > 0)) {
        if (!window_out_size(in.h, a.kernel, a.stride, a.padding) ||
            !window_out_size(in.w, a.kernel, a.stride, a.padding)) {
          bad("window k=" + std::to_string(a.kernel) +
              " s=" + std::to_string(a.stride) +
              " p=" + std::to_string(a.padding) +
              " yields no output on input " + in.to_string());
        }
      }
    }
  }
};

class AccountingPass : public VerifyPass {
 public:
  std::string name() const override { return "accounting"; }

  void run(const ModelGraph& g, std::vector<Diagnostic>& out) const override {
    const auto& nodes = g.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const GraphNode& n = nodes[i];
      const auto producers = producer_shapes(g, i);
      if (!producers) continue;
      const auto expected = infer_node(n, *producers);
      if (!expected) continue;  // geometry/shape passes report the cause
      if (expected->params != n.params) {
        out.push_back(diag(rules::kParams, Severity::kError,
                           static_cast<int>(i), g,
                           "stored params " + std::to_string(n.params) +
                               " but op semantics imply " +
                               std::to_string(expected->params)));
      }
      if (expected->flops != n.flops) {
        out.push_back(diag(rules::kFlops, Severity::kError,
                           static_cast<int>(i), g,
                           "stored flops " + std::to_string(n.flops) +
                               " but op semantics imply " +
                               std::to_string(expected->flops)));
      }
    }
  }
};

class FusionLegalityPass : public VerifyPass {
 public:
  std::string name() const override { return "fusion-legality"; }

  void run(const ModelGraph& g, std::vector<Diagnostic>& out) const override {
    const auto& nodes = g.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const GraphNode& n = nodes[i];
      if (n.kind != OpKind::kBatchNorm) continue;
      if (!inputs_resolvable(g, i) || n.inputs.empty()) continue;
      const GraphNode& src = nodes[static_cast<std::size_t>(n.inputs[0])];
      if (src.kind != OpKind::kConv) {
        out.push_back(diag(
            rules::kBnProducer, Severity::kWarning, static_cast<int>(i), g,
            "BatchNorm consumes '" + src.name + "' (" +
                op_kind_name(src.kind) +
                "), not a Conv; fold_batchnorm()/fuse_graph() can never "
                "fold it and it will run as a standalone kernel"));
      }
    }
  }
};

class ResourcePass : public VerifyPass {
 public:
  std::string name() const override { return "resource"; }

  void run(const ModelGraph& g, std::vector<Diagnostic>& out) const override {
    const auto& nodes = g.nodes();
    // Re-derive every shape by forward propagation (stored annotations are
    // not trusted here) and compare the resulting activation peak against
    // the IR's own accounting.
    std::vector<ActShape> inferred(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const GraphNode& n = nodes[i];
      if (!inputs_resolvable(g, i)) return;  // topology pass owns this
      std::vector<ActShape> producers;
      producers.reserve(n.inputs.size());
      for (int in : n.inputs) {
        producers.push_back(inferred[static_cast<std::size_t>(in)]);
      }
      const auto expected = infer_node(n, producers);
      if (!expected) return;  // shape/geometry passes own the cause
      inferred[i] = expected->out_shape;
    }
    std::int64_t peak = 0;
    for (const ActShape& s : inferred) {
      peak = std::max(peak, s.numel() * 4);
    }
    const std::int64_t stored = g.max_activation_bytes();
    if (!nodes.empty() && peak != stored) {
      out.push_back(diag(rules::kActivationBytes, Severity::kError, -1, g,
                         "max_activation_bytes() reports " +
                             std::to_string(stored) +
                             " but re-inferred shapes peak at " +
                             std::to_string(peak) + " bytes"));
    }
  }
};

}  // namespace

std::unique_ptr<VerifyPass> make_topology_pass() {
  return std::make_unique<TopologyPass>();
}
std::unique_ptr<VerifyPass> make_shape_pass() {
  return std::make_unique<ShapePass>();
}
std::unique_ptr<VerifyPass> make_geometry_pass() {
  return std::make_unique<GeometryPass>();
}
std::unique_ptr<VerifyPass> make_accounting_pass() {
  return std::make_unique<AccountingPass>();
}
std::unique_ptr<VerifyPass> make_fusion_legality_pass() {
  return std::make_unique<FusionLegalityPass>();
}
std::unique_ptr<VerifyPass> make_resource_pass() {
  return std::make_unique<ResourcePass>();
}

}  // namespace dcnas::analysis
