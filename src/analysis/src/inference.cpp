#include "dcnas/analysis/inference.hpp"

namespace dcnas::analysis {

using graph::ActShape;
using graph::GraphNode;
using graph::OpKind;

std::optional<std::int64_t> window_out_size(std::int64_t in,
                                            std::int64_t kernel,
                                            std::int64_t stride,
                                            std::int64_t padding) {
  if (in < 1 || kernel < 1 || stride < 1 || padding < 0) return std::nullopt;
  const std::int64_t padded = in + 2 * padding;
  if (kernel > padded) return std::nullopt;
  const std::int64_t out = (padded - kernel) / stride + 1;
  if (out < 1) return std::nullopt;
  return out;
}

namespace {

bool positive(const ActShape& s) { return s.c > 0 && s.h > 0 && s.w > 0; }

std::optional<ActShape> windowed_shape(const ActShape& in, std::int64_t c,
                                       const graph::OpAttrs& attrs) {
  const auto h = window_out_size(in.h, attrs.kernel, attrs.stride,
                                 attrs.padding);
  const auto w = window_out_size(in.w, attrs.kernel, attrs.stride,
                                 attrs.padding);
  if (!h || !w) return std::nullopt;
  return ActShape{c, *h, *w};
}

}  // namespace

std::optional<NodeExpectation> infer_node(
    const GraphNode& node, const std::vector<ActShape>& producer_out) {
  NodeExpectation e;
  switch (node.kind) {
    case OpKind::kInput:
      // Nothing upstream to infer from: the annotation is the ground truth.
      if (!positive(node.out_shape)) return std::nullopt;
      e.out_shape = node.out_shape;
      return e;
    case OpKind::kConv: {
      if (producer_out.size() != 1 || !positive(producer_out[0])) {
        return std::nullopt;
      }
      const ActShape& in = producer_out[0];
      const std::int64_t oc = node.out_shape.c;  // only recorded in out_shape
      if (oc < 1) return std::nullopt;
      const auto out = windowed_shape(in, oc, node.attrs);
      if (!out) return std::nullopt;
      e.out_shape = *out;
      e.params = oc * in.c * node.attrs.kernel * node.attrs.kernel;
      e.flops = 2 * e.params * e.out_shape.h * e.out_shape.w;
      return e;
    }
    case OpKind::kBatchNorm: {
      if (producer_out.size() != 1 || !positive(producer_out[0])) {
        return std::nullopt;
      }
      e.out_shape = producer_out[0];
      e.params = 4 * e.out_shape.c;
      e.flops = 2 * e.out_shape.numel();
      return e;
    }
    case OpKind::kRelu: {
      if (producer_out.size() != 1 || !positive(producer_out[0])) {
        return std::nullopt;
      }
      e.out_shape = producer_out[0];
      e.flops = e.out_shape.numel();
      return e;
    }
    case OpKind::kMaxPool: {
      if (producer_out.size() != 1 || !positive(producer_out[0])) {
        return std::nullopt;
      }
      const auto out =
          windowed_shape(producer_out[0], producer_out[0].c, node.attrs);
      if (!out) return std::nullopt;
      e.out_shape = *out;
      e.flops = node.attrs.kernel * node.attrs.kernel * e.out_shape.numel();
      return e;
    }
    case OpKind::kGlobalAvgPool: {
      if (producer_out.size() != 1 || !positive(producer_out[0])) {
        return std::nullopt;
      }
      e.out_shape = {producer_out[0].c, 1, 1};
      e.flops = producer_out[0].numel();
      return e;
    }
    case OpKind::kAdd: {
      if (producer_out.size() != 2 || !positive(producer_out[0])) {
        return std::nullopt;
      }
      e.out_shape = producer_out[0];
      e.flops = e.out_shape.numel();
      return e;
    }
    case OpKind::kLinear: {
      if (producer_out.size() != 1 || !positive(producer_out[0])) {
        return std::nullopt;
      }
      const std::int64_t in_features = producer_out[0].numel();
      const std::int64_t out_features = node.out_shape.c;
      if (out_features < 1) return std::nullopt;
      e.out_shape = {out_features, 1, 1};
      e.params = in_features * out_features + out_features;
      e.flops = 2 * in_features * out_features;
      return e;
    }
    case OpKind::kOutput: {
      if (producer_out.size() != 1 || !positive(producer_out[0])) {
        return std::nullopt;
      }
      e.out_shape = producer_out[0];
      return e;
    }
  }
  return std::nullopt;
}

}  // namespace dcnas::analysis
