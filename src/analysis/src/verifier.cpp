#include "dcnas/analysis/verifier.hpp"

#include <sstream>

#include "dcnas/analysis/passes.hpp"
#include "dcnas/common/error.hpp"

namespace dcnas::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << rule << "]";
  if (node >= 0) {
    os << " node " << node;
    if (!node_name.empty()) os << " '" << node_name << "'";
  } else {
    os << " graph";
  }
  os << ": " << message;
  return os.str();
}

bool VerifyResult::ok() const { return error_count() == 0; }

std::size_t VerifyResult::error_count() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::size_t VerifyResult::warning_count() const {
  return diagnostics.size() - error_count();
}

bool VerifyResult::has_rule(const std::string& rule) const {
  for (const auto& d : diagnostics) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::string VerifyResult::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) os << d.to_string() << "\n";
  return os.str();
}

GraphVerifier& GraphVerifier::add_pass(std::unique_ptr<VerifyPass> pass) {
  DCNAS_CHECK(pass != nullptr, "GraphVerifier::add_pass requires a pass");
  passes_.push_back(std::move(pass));
  return *this;
}

VerifyResult GraphVerifier::verify(const graph::ModelGraph& graph) const {
  VerifyResult result;
  for (const auto& pass : passes_) {
    pass->run(graph, result.diagnostics);
  }
  return result;
}

std::vector<std::string> GraphVerifier::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.push_back(pass->name());
  return names;
}

GraphVerifier GraphVerifier::standard() {
  GraphVerifier v;
  v.add_pass(make_topology_pass())
      .add_pass(make_shape_pass())
      .add_pass(make_geometry_pass())
      .add_pass(make_accounting_pass())
      .add_pass(make_fusion_legality_pass())
      .add_pass(make_resource_pass());
  return v;
}

void verify_or_throw(const graph::ModelGraph& graph,
                     const std::string& context) {
  const VerifyResult result = GraphVerifier::standard().verify(graph);
  if (result.ok()) return;
  std::ostringstream os;
  os << context << ": graph verification failed with "
     << result.error_count() << " error(s)";
  if (result.warning_count() > 0) {
    os << " and " << result.warning_count() << " warning(s)";
  }
  os << "\n" << result.to_string();
  throw InvalidArgument(os.str());
}

}  // namespace dcnas::analysis
