#include "dcnas/analysis/plan_verifier.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "dcnas/analysis/interval.hpp"
#include "dcnas/analysis/passes.hpp"
#include "dcnas/common/error.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"
#include "dcnas/plan/compiler.hpp"
#include "dcnas/quant/quantize.hpp"

namespace dcnas::analysis {

namespace {

using graph::ActShape;
using graph::GraphExecutor;
using graph::GraphNode;
using graph::KernelKind;
using graph::ModelGraph;
using graph::NodeState;
using graph::OpKind;
using plan::ArenaSlot;
using plan::CompiledPlan;
using plan::kInputSlot;
using plan::PlanStep;

/// Re-association slack for the interval fold replay: the compiler
/// evaluates γ·(1/√(σ²+ε)) in round-to-nearest while the replay brackets
/// γ/√(σ²+ε) with outward rounding, so a legitimate folded value can sit a
/// few ulps outside the tight interval. 16 ulps relative (≈1.9e-6) plus a
/// denormal-scale absolute slack covers that while staying ~4 orders of
/// magnitude below any single-bit-of-exponent corruption.
constexpr float kFoldRel = 16.0f * std::numeric_limits<float>::epsilon();
constexpr float kFoldAbs = 1e-30f;

Diagnostic step_diag(const char* rule, int step, const CompiledPlan& plan,
                     std::string message) {
  Diagnostic d;
  d.rule = rule;
  d.severity = Severity::kError;
  d.node = step;
  if (step >= 0 && step < static_cast<int>(plan.steps.size())) {
    d.node_name = plan.steps[static_cast<std::size_t>(step)].name;
  }
  d.message = std::move(message);
  return d;
}

bool is_conv_kind(KernelKind kind) {
  return kind == KernelKind::kConv || kind == KernelKind::kConvRelu ||
         kind == KernelKind::kConvBn || kind == KernelKind::kConvBnRelu;
}

/// The op sequence a step of this kind must map back to, in execution
/// order. Re-derived here — deliberately not shared with fuse_graph() —
/// so a provenance check is never a tautology against the fusion pass.
const std::vector<OpKind>& expected_chain(KernelKind kind) {
  static const std::vector<OpKind> conv_bn_relu = {
      OpKind::kConv, OpKind::kBatchNorm, OpKind::kRelu};
  static const std::vector<OpKind> conv_bn = {OpKind::kConv,
                                              OpKind::kBatchNorm};
  static const std::vector<OpKind> conv_relu = {OpKind::kConv, OpKind::kRelu};
  static const std::vector<OpKind> conv = {OpKind::kConv};
  static const std::vector<OpKind> add_relu = {OpKind::kAdd, OpKind::kRelu};
  static const std::vector<OpKind> add = {OpKind::kAdd};
  static const std::vector<OpKind> relu = {OpKind::kRelu};
  static const std::vector<OpKind> bn = {OpKind::kBatchNorm};
  static const std::vector<OpKind> maxpool = {OpKind::kMaxPool};
  static const std::vector<OpKind> gap = {OpKind::kGlobalAvgPool};
  static const std::vector<OpKind> linear = {OpKind::kLinear};
  switch (kind) {
    case KernelKind::kConvBnRelu: return conv_bn_relu;
    case KernelKind::kConvBn: return conv_bn;
    case KernelKind::kConvRelu: return conv_relu;
    case KernelKind::kConv: return conv;
    case KernelKind::kAddRelu: return add_relu;
    case KernelKind::kAdd: return add;
    case KernelKind::kRelu: return relu;
    case KernelKind::kBatchNorm: return bn;
    case KernelKind::kMaxPool: return maxpool;
    case KernelKind::kGlobalAvgPool: return gap;
    case KernelKind::kLinear: return linear;
  }
  return conv;
}

/// True when a step's provenance list is structurally usable (non-empty,
/// every index a real graph node). Passes that *consume* provenance gate on
/// this and stay silent about violations — the provenance pass reports them.
bool provenance_usable(const PlanStep& step, const ModelGraph& g) {
  if (step.nodes.empty()) return false;
  for (int n : step.nodes) {
    if (n < 0 || n >= static_cast<int>(g.size())) return false;
  }
  return true;
}

bool slot_id_valid(int slot, const CompiledPlan& plan) {
  return slot >= 0 && slot < static_cast<int>(plan.slots.size());
}

/// Liveness re-derived from the step list alone, independently of the
/// compiler's ArenaSlot bookkeeping. def = the unique writing step
/// (kNoDef / kMultiDef otherwise); last_use = the last reading step, the
/// def when unread, or one past the last step for the plan's output slot
/// (it must survive the copy-out).
struct DerivedLiveness {
  static constexpr int kNoDef = -1;
  static constexpr int kMultiDef = -2;
  std::vector<int> def;
  std::vector<int> last_use;
  std::vector<int> second_def;  ///< the extra writer when kMultiDef

  explicit DerivedLiveness(const CompiledPlan& plan)
      : def(plan.slots.size(), kNoDef),
        last_use(plan.slots.size(), kNoDef),
        second_def(plan.slots.size(), kNoDef) {
    for (std::size_t t = 0; t < plan.steps.size(); ++t) {
      const int out = plan.steps[t].out;
      if (!slot_id_valid(out, plan)) continue;
      auto& d = def[static_cast<std::size_t>(out)];
      if (d == kNoDef) {
        d = static_cast<int>(t);
      } else if (d != kMultiDef) {
        second_def[static_cast<std::size_t>(out)] = static_cast<int>(t);
        d = kMultiDef;
      }
    }
    for (std::size_t i = 0; i < last_use.size(); ++i) {
      if (def[i] >= 0) last_use[i] = def[i];
    }
    for (std::size_t t = 0; t < plan.steps.size(); ++t) {
      for (int arg : plan.steps[t].args) {
        if (!slot_id_valid(arg, plan)) continue;
        auto& lu = last_use[static_cast<std::size_t>(arg)];
        lu = std::max(lu, static_cast<int>(t));
      }
    }
    if (slot_id_valid(plan.output_slot, plan)) {
      last_use[static_cast<std::size_t>(plan.output_slot)] =
          static_cast<int>(plan.steps.size());
    }
  }

  bool unique_def(std::size_t slot) const { return def[slot] >= 0; }
};

// ---------------------------------------------------------------------------
// plan-arena: slot extents, re-derived liveness, symbolic aliasing.

class PlanArenaPass : public PlanVerifyPass {
 public:
  std::string name() const override { return "plan-arena"; }

  void run(const CompiledPlan& plan, const GraphExecutor&,
           std::vector<Diagnostic>& out) const override {
    if (plan.arena_size < 0) {
      out.push_back(step_diag(rules::kPlanSlotBounds, -1, plan,
                              "negative arena size " +
                                  std::to_string(plan.arena_size)));
    }
    for (std::size_t i = 0; i < plan.slots.size(); ++i) {
      const ArenaSlot& s = plan.slots[i];
      if (s.size < 1) {
        out.push_back(step_diag(rules::kPlanSlotBounds, -1, plan,
                                "slot " + std::to_string(i) +
                                    " has non-positive size " +
                                    std::to_string(s.size)));
        continue;
      }
      if (s.offset < 0 || s.offset + s.size > plan.arena_size) {
        out.push_back(step_diag(
            rules::kPlanSlotBounds, -1, plan,
            "slot " + std::to_string(i) + " extent [" +
                std::to_string(s.offset) + ", " +
                std::to_string(s.offset + s.size) +
                ") exceeds the arena (size " +
                std::to_string(plan.arena_size) + ")"));
      }
    }

    const DerivedLiveness live(plan);
    for (std::size_t i = 0; i < plan.slots.size(); ++i) {
      const ArenaSlot& s = plan.slots[i];
      if (live.def[i] == DerivedLiveness::kNoDef) {
        out.push_back(step_diag(rules::kPlanLiveness, -1, plan,
                                "slot " + std::to_string(i) +
                                    " is never written by any step"));
        continue;
      }
      if (live.def[i] == DerivedLiveness::kMultiDef) {
        out.push_back(step_diag(
            rules::kPlanLiveness, -1, plan,
            "slot " + std::to_string(i) + " is written by step " +
                std::to_string(live.second_def[i]) +
                " while already owned by an earlier step"));
        continue;
      }
      if (s.def != live.def[i] || s.last_use != live.last_use[i]) {
        out.push_back(step_diag(
            rules::kPlanLiveness, -1, plan,
            "slot " + std::to_string(i) + " records liveness [" +
                std::to_string(s.def) + ", " + std::to_string(s.last_use) +
                "] but the step list implies [" +
                std::to_string(live.def[i]) + ", " +
                std::to_string(live.last_use[i]) + "]"));
      }
    }

    // Symbolic aliasing proof. A slot's arena extent at batch size B is
    // [offset·B, (offset+size)·B) floats — every endpoint is a linear
    // function of B with zero intercept. For f(B)=a·B and g(B)=b·B with
    // B ≥ 1, a ≤ b implies f(B) ≤ g(B), so the *order* of any two
    // endpoints is batch-invariant: two extents overlap at some batch iff
    // their per-sample coefficient intervals [offset, offset+size)
    // overlap. Checking the coefficients therefore proves non-overlap for
    // every batch size at once — not just the one check_arena() ran at.
    // Live ranges come from the re-derivation above, never from the slots.
    for (std::size_t a = 0; a < plan.slots.size(); ++a) {
      if (!live.unique_def(a)) continue;
      for (std::size_t b = a + 1; b < plan.slots.size(); ++b) {
        if (!live.unique_def(b)) continue;
        const ArenaSlot& sa = plan.slots[a];
        const ArenaSlot& sb = plan.slots[b];
        if (sa.size < 1 || sb.size < 1) continue;  // reported above
        const bool lives_overlap = live.def[a] <= live.last_use[b] &&
                                   live.def[b] <= live.last_use[a];
        const bool coeffs_overlap = sa.offset < sb.offset + sb.size &&
                                    sb.offset < sa.offset + sa.size;
        if (lives_overlap && coeffs_overlap) {
          out.push_back(step_diag(
              rules::kPlanAlias, -1, plan,
              "slots " + std::to_string(a) + " and " + std::to_string(b) +
                  " are live together over steps [" +
                  std::to_string(std::max(live.def[a], live.def[b])) + ", " +
                  std::to_string(
                      std::min(live.last_use[a], live.last_use[b])) +
                  "] but their extents [" + std::to_string(sa.offset) +
                  "·B, " + std::to_string(sa.offset + sa.size) + "·B) and [" +
                  std::to_string(sb.offset) + "·B, " +
                  std::to_string(sb.offset + sb.size) +
                  "·B) overlap for every batch size B"));
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// plan-dataflow: slot id validity, def-before-use, in-place hazards.

class PlanDataflowPass : public PlanVerifyPass {
 public:
  std::string name() const override { return "plan-dataflow"; }

  void run(const CompiledPlan& plan, const GraphExecutor&,
           std::vector<Diagnostic>& out) const override {
    const DerivedLiveness live(plan);
    for (std::size_t t = 0; t < plan.steps.size(); ++t) {
      const PlanStep& step = plan.steps[t];
      const int ti = static_cast<int>(t);
      if (!slot_id_valid(step.out, plan)) {
        out.push_back(step_diag(rules::kPlanDefBeforeUse, ti, plan,
                                "writes unknown slot " +
                                    std::to_string(step.out)));
      }
      const std::size_t expected_args =
          (step.kind == KernelKind::kAdd || step.kind == KernelKind::kAddRelu)
              ? 2u
              : 1u;
      if (step.args.size() != expected_args) {
        out.push_back(step_diag(
            rules::kPlanDefBeforeUse, ti, plan,
            std::string(graph::kernel_kind_name(step.kind)) + " step needs " +
                std::to_string(expected_args) + " operand(s), has " +
                std::to_string(step.args.size())));
      }
      for (int arg : step.args) {
        if (arg == kInputSlot) continue;
        if (!slot_id_valid(arg, plan)) {
          out.push_back(step_diag(rules::kPlanDefBeforeUse, ti, plan,
                                  "reads unknown slot " +
                                      std::to_string(arg)));
          continue;
        }
        const std::size_t ai = static_cast<std::size_t>(arg);
        if (live.unique_def(ai) && live.def[ai] >= ti) {
          out.push_back(step_diag(
              rules::kPlanDefBeforeUse, ti, plan,
              "reads slot " + std::to_string(arg) +
                  " which is not defined until step " +
                  std::to_string(live.def[ai])));
        }
        if (arg == step.out) {
          out.push_back(step_diag(
              rules::kPlanDefBeforeUse, ti, plan,
              "reads and writes slot " + std::to_string(arg) +
                  " in place (step kernels never overwrite an operand "
                  "they are still reading)"));
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// plan-provenance: fusion provenance audit against the source graph.

class PlanProvenancePass : public PlanVerifyPass {
 public:
  std::string name() const override { return "plan-provenance"; }

  void run(const CompiledPlan& plan, const GraphExecutor& source,
           std::vector<Diagnostic>& out) const override {
    const ModelGraph& g = source.graph();
    if (plan.graph_nodes != static_cast<int>(g.size())) {
      out.push_back(step_diag(rules::kPlanProvenance, -1, plan,
                              "plan records " +
                                  std::to_string(plan.graph_nodes) +
                                  " source nodes but the graph has " +
                                  std::to_string(g.size())));
    }

    // Which BN nodes the fusion-legality pass refuses to fold. A fused
    // conv step whose provenance absorbs one of them executes a folding
    // the analysis layer forbade.
    std::vector<Diagnostic> legality;
    make_fusion_legality_pass()->run(g, legality);
    std::set<int> refused_bn;
    for (const Diagnostic& d : legality) {
      if (d.rule == rules::kBnProducer) refused_bn.insert(d.node);
    }

    const auto consumers = g.consumers();
    std::vector<int> covered(g.size(), 0);
    int prev_primary = -1;
    int fused_bn_steps = 0;

    for (std::size_t t = 0; t < plan.steps.size(); ++t) {
      const PlanStep& step = plan.steps[t];
      const int ti = static_cast<int>(t);
      if (step.kind == KernelKind::kConvBn ||
          step.kind == KernelKind::kConvBnRelu) {
        ++fused_bn_steps;
      }
      if (step.nodes.empty()) {
        out.push_back(step_diag(rules::kPlanProvenance, ti, plan,
                                "step carries no provenance"));
        continue;
      }
      bool indices_ok = true;
      for (int n : step.nodes) {
        if (n < 0 || n >= static_cast<int>(g.size())) {
          out.push_back(step_diag(rules::kPlanProvenance, ti, plan,
                                  "provenance references node " +
                                      std::to_string(n) +
                                      " outside the source graph"));
          indices_ok = false;
        }
      }
      if (!indices_ok) continue;
      for (int n : step.nodes) covered[static_cast<std::size_t>(n)] += 1;

      if (step.node != step.nodes.front()) {
        out.push_back(step_diag(
            rules::kPlanProvenance, ti, plan,
            "primary node " + std::to_string(step.node) +
                " disagrees with provenance head " +
                std::to_string(step.nodes.front())));
      }

      // The fused chain must decompose exactly as the kernel kind claims.
      const std::vector<OpKind>& chain = expected_chain(step.kind);
      if (step.nodes.size() != chain.size()) {
        out.push_back(step_diag(
            rules::kPlanProvenance, ti, plan,
            std::string(graph::kernel_kind_name(step.kind)) +
                " step must absorb exactly " +
                std::to_string(chain.size()) + " node(s), absorbs " +
                std::to_string(step.nodes.size())));
        continue;
      }
      bool kinds_ok = true;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        const GraphNode& n = g.node(step.nodes[i]);
        if (n.kind != chain[i]) {
          out.push_back(step_diag(
              rules::kPlanProvenance, ti, plan,
              "provenance node " + std::to_string(step.nodes[i]) + " is a " +
                  std::string(op_kind_name(n.kind)) + "; a " +
                  graph::kernel_kind_name(step.kind) +
                  " step requires a " + op_kind_name(chain[i]) +
                  " at position " + std::to_string(i)));
          kinds_ok = false;
        }
      }
      if (!kinds_ok) continue;

      // Contiguity: each absorbed node consumes exactly the previous one,
      // and every interior activation has no other consumer — otherwise it
      // must materialize and the fusion is forged.
      for (std::size_t i = 1; i < step.nodes.size(); ++i) {
        const GraphNode& n = g.node(step.nodes[i]);
        if (n.inputs.size() != 1 || n.inputs[0] != step.nodes[i - 1]) {
          out.push_back(step_diag(
              rules::kPlanProvenance, ti, plan,
              "provenance is not a contiguous chain: node " +
                  std::to_string(step.nodes[i]) + " does not consume node " +
                  std::to_string(step.nodes[i - 1])));
        }
      }
      for (std::size_t i = 0; i + 1 < step.nodes.size(); ++i) {
        const std::size_t ci = static_cast<std::size_t>(step.nodes[i]);
        if (consumers[ci].size() != 1) {
          out.push_back(step_diag(
              rules::kPlanProvenance, ti, plan,
              "interior node " + std::to_string(step.nodes[i]) + " has " +
                  std::to_string(consumers[ci].size()) +
                  " consumer(s); its activation must materialize, so the "
                  "fusion is illegal"));
        }
      }

      if (is_conv_kind(step.kind) && step.nodes.size() > 1) {
        for (std::size_t i = 1; i < step.nodes.size(); ++i) {
          if (g.node(step.nodes[i]).kind == OpKind::kBatchNorm &&
              refused_bn.count(step.nodes[i]) > 0) {
            out.push_back(step_diag(
                rules::kPlanFusionIllegal, ti, plan,
                "folds BatchNorm node " + std::to_string(step.nodes[i]) +
                    " which the fusion-legality pass refused (" +
                    rules::kBnProducer + ")"));
          }
        }
      }

      // Steps must be emitted in graph topological order: the primary node
      // indices are strictly increasing along the step list.
      if (step.nodes.front() <= prev_primary) {
        out.push_back(step_diag(
            rules::kPlanStepOrder, ti, plan,
            "primary node " + std::to_string(step.nodes.front()) +
                " does not follow the previous step's primary " +
                std::to_string(prev_primary) +
                " in graph topological order"));
      }
      prev_primary = std::max(prev_primary, step.nodes.front());
    }

    // Coverage: the steps' provenance must partition the non-structural
    // graph nodes — nothing skipped, nothing executed twice, and the
    // structural Input/Output nodes never absorbed into a kernel.
    for (std::size_t i = 0; i < g.size(); ++i) {
      const GraphNode& n = g.nodes()[i];
      const bool structural =
          n.kind == OpKind::kInput || n.kind == OpKind::kOutput;
      if (structural && covered[i] > 0) {
        out.push_back(step_diag(rules::kPlanProvenance, -1, plan,
                                std::string(op_kind_name(n.kind)) + " node " +
                                    std::to_string(i) +
                                    " absorbed into a kernel step"));
      } else if (!structural && covered[i] == 0) {
        out.push_back(step_diag(rules::kPlanProvenance, -1, plan,
                                std::string(op_kind_name(n.kind)) + " node " +
                                    std::to_string(i) + " '" + n.name +
                                    "' is not executed by any step"));
      } else if (!structural && covered[i] > 1) {
        out.push_back(step_diag(rules::kPlanProvenance, -1, plan,
                                std::string(op_kind_name(n.kind)) + " node " +
                                    std::to_string(i) + " '" + n.name +
                                    "' is executed by " +
                                    std::to_string(covered[i]) + " steps"));
      }
    }

    if (plan.folded_batchnorms != fused_bn_steps) {
      out.push_back(step_diag(
          rules::kPlanProvenance, -1, plan,
          "plan claims " + std::to_string(plan.folded_batchnorms) +
              " folded BatchNorms but carries " +
              std::to_string(fused_bn_steps) + " conv-bn step(s)"));
    }
  }
};

// ---------------------------------------------------------------------------
// plan-wiring: operand slots, output resolution, and shape accounting —
// all re-derived from the graph edges plus the provenance tail mapping.

class PlanWiringPass : public PlanVerifyPass {
 public:
  std::string name() const override { return "plan-wiring"; }

  void run(const CompiledPlan& plan, const GraphExecutor& source,
           std::vector<Diagnostic>& out) const override {
    const ModelGraph& g = source.graph();

    // A producing node's value lives in the slot of the step whose
    // provenance *tail* is that node; the graph Input node lives in the
    // caller's tensor (kInputSlot).
    std::vector<int> value_slot(g.size(), std::numeric_limits<int>::min());
    for (const PlanStep& step : plan.steps) {
      if (!provenance_usable(step, g)) continue;
      value_slot[static_cast<std::size_t>(step.nodes.back())] = step.out;
    }
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (g.nodes()[i].kind == OpKind::kInput) value_slot[i] = kInputSlot;
    }

    for (std::size_t t = 0; t < plan.steps.size(); ++t) {
      const PlanStep& step = plan.steps[t];
      const int ti = static_cast<int>(t);
      if (!provenance_usable(step, g)) continue;  // provenance pass reports
      const GraphNode& primary = g.node(step.nodes.front());
      const GraphNode& tail = g.node(step.nodes.back());

      if (step.args.size() != primary.inputs.size()) {
        out.push_back(step_diag(
            rules::kPlanWiring, ti, plan,
            "step has " + std::to_string(step.args.size()) +
                " operand(s) but source node '" + primary.name + "' has " +
                std::to_string(primary.inputs.size()) + " input(s)"));
      } else {
        for (std::size_t a = 0; a < step.args.size(); ++a) {
          const int producer = primary.inputs[a];
          if (producer < 0 || producer >= static_cast<int>(g.size())) {
            continue;  // the graph verifier owns dangling inputs
          }
          const int expected =
              value_slot[static_cast<std::size_t>(producer)];
          if (expected == std::numeric_limits<int>::min()) {
            out.push_back(step_diag(
                rules::kPlanWiring, ti, plan,
                "operand " + std::to_string(a) + " reads node " +
                    std::to_string(producer) +
                    " whose value is fused into the interior of another "
                    "step and never materializes"));
          } else if (step.args[a] != expected) {
            out.push_back(step_diag(
                rules::kPlanWiring, ti, plan,
                "operand " + std::to_string(a) + " reads slot " +
                    std::to_string(step.args[a]) + " but node " +
                    std::to_string(producer) + " '" +
                    g.node(producer).name + "' materializes in slot " +
                    std::to_string(expected)));
          }
        }
      }

      if (step.in_shape != primary.in_shape) {
        out.push_back(step_diag(
            rules::kPlanShape, ti, plan,
            "step in_shape " + step.in_shape.to_string() +
                " does not match source node in_shape " +
                primary.in_shape.to_string()));
      }
      if (step.out_shape != tail.out_shape) {
        out.push_back(step_diag(
            rules::kPlanShape, ti, plan,
            "step out_shape " + step.out_shape.to_string() +
                " does not match tail node out_shape " +
                tail.out_shape.to_string()));
      }
      if (step.attrs.kernel != primary.attrs.kernel ||
          step.attrs.stride != primary.attrs.stride ||
          step.attrs.padding != primary.attrs.padding) {
        out.push_back(step_diag(
            rules::kPlanShape, ti, plan,
            "step geometry k=" + std::to_string(step.attrs.kernel) + " s=" +
                std::to_string(step.attrs.stride) + " p=" +
                std::to_string(step.attrs.padding) +
                " does not match source node geometry k=" +
                std::to_string(primary.attrs.kernel) + " s=" +
                std::to_string(primary.attrs.stride) + " p=" +
                std::to_string(primary.attrs.padding)));
      }
      if (slot_id_valid(step.out, plan)) {
        const ArenaSlot& slot =
            plan.slots[static_cast<std::size_t>(step.out)];
        if (slot.size != tail.out_shape.numel()) {
          out.push_back(step_diag(
              rules::kPlanShape, ti, plan,
              "output slot " + std::to_string(step.out) + " holds " +
                  std::to_string(slot.size) +
                  " floats/sample but the step produces " +
                  std::to_string(tail.out_shape.numel())));
        }
      }
    }

    if (!g.nodes().empty() && g.nodes().front().kind == OpKind::kInput &&
        plan.input_shape != g.nodes().front().out_shape) {
      out.push_back(step_diag(
          rules::kPlanShape, -1, plan,
          "plan input_shape " + plan.input_shape.to_string() +
              " does not match the graph input " +
              g.nodes().front().out_shape.to_string()));
    }

    // Output resolution: the Output node's producer must materialize in
    // exactly the slot the plan copies out of.
    for (std::size_t i = 0; i < g.size(); ++i) {
      const GraphNode& n = g.nodes()[i];
      if (n.kind != OpKind::kOutput || n.inputs.empty()) continue;
      const int producer = n.inputs.front();
      if (producer < 0 || producer >= static_cast<int>(g.size())) continue;
      const int expected = value_slot[static_cast<std::size_t>(producer)];
      if (expected == std::numeric_limits<int>::min()) {
        out.push_back(step_diag(
            rules::kPlanOutput, -1, plan,
            "the output's producer node " + std::to_string(producer) +
                " never materializes in any slot"));
      } else if (plan.output_slot != expected) {
        out.push_back(step_diag(
            rules::kPlanOutput, -1, plan,
            "plan copies its output from slot " +
                std::to_string(plan.output_slot) + " but node " +
                std::to_string(producer) + " materializes in slot " +
                std::to_string(expected)));
      }
      if (plan.output_shape != n.out_shape) {
        out.push_back(step_diag(
            rules::kPlanOutput, -1, plan,
            "plan output_shape " + plan.output_shape.to_string() +
                " does not match the graph output " +
                n.out_shape.to_string()));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// plan-folding: bound tensor dimensions + interval-arithmetic fold replay.

class PlanFoldingPass : public PlanVerifyPass {
 public:
  std::string name() const override { return "plan-folding"; }

  void run(const CompiledPlan& plan, const GraphExecutor& source,
           std::vector<Diagnostic>& out) const override {
    const ModelGraph& g = source.graph();
    const auto& state = source.node_states();
    const auto& identity = source.identity_flags();
    if (state.size() != g.size() || identity.size() != g.size()) {
      out.push_back(step_diag(rules::kPlanFoldError, -1, plan,
                              "source executor state does not cover the "
                              "graph; cannot replay folding"));
      return;
    }
    for (std::size_t t = 0; t < plan.steps.size(); ++t) {
      const PlanStep& step = plan.steps[t];
      if (!provenance_usable(step, g)) continue;  // provenance pass reports
      switch (step.kind) {
        case KernelKind::kConv:
        case KernelKind::kConvRelu:
        case KernelKind::kConvBn:
        case KernelKind::kConvBnRelu:
          check_conv(plan, g, state, identity, source.bn_eps(),
                     static_cast<int>(t), out);
          break;
        case KernelKind::kBatchNorm:
          check_standalone_bn(plan, g, state, identity, source.bn_eps(),
                              static_cast<int>(t), out);
          break;
        case KernelKind::kLinear:
          check_linear(plan, g, state, static_cast<int>(t), out);
          break;
        default:
          if (step.weight.numel() != 0 || step.bias.has_value() ||
              step.bn_scale.numel() != 0 || step.bn_shift.numel() != 0) {
            out.push_back(step_diag(
                rules::kPlanWeightShape, static_cast<int>(t), plan,
                std::string(graph::kernel_kind_name(step.kind)) +
                    " step carries weights it cannot use"));
          }
          break;
      }
    }
  }

 private:
  /// One diagnostic per mismatching tensor: first offending index plus a
  /// total, so a fully corrupted weight blob does not flood the report.
  static void report_values(const char* rule, int step,
                            const CompiledPlan& plan, const std::string& what,
                            std::int64_t first_bad, std::int64_t bad_count,
                            float got, float want_lo, float want_hi,
                            std::vector<Diagnostic>& out) {
    if (bad_count == 0) return;
    std::ostringstream os;
    os << what << "[" << first_bad << "] = " << got;
    if (want_lo == want_hi) {
      os << " but the source implies " << want_lo;
    } else {
      os << " outside the interval-arithmetic bound [" << want_lo << ", "
         << want_hi << "]";
    }
    if (bad_count > 1) os << " (and " << (bad_count - 1) << " more)";
    out.push_back(step_diag(rule, step, plan, os.str()));
  }

  static void check_verbatim(const char* what, const Tensor& got,
                             const Tensor& want, int step,
                             const CompiledPlan& plan,
                             std::vector<Diagnostic>& out) {
    if (got.numel() != want.numel()) {
      out.push_back(step_diag(
          rules::kPlanWeightShape, step, plan,
          std::string(what) + " holds " + std::to_string(got.numel()) +
              " values but the source holds " +
              std::to_string(want.numel())));
      return;
    }
    std::int64_t first_bad = -1, bad = 0;
    float got_v = 0.0f, want_v = 0.0f;
    for (std::int64_t j = 0; j < got.numel(); ++j) {
      if (got[j] != want[j]) {
        if (first_bad < 0) {
          first_bad = j;
          got_v = got[j];
          want_v = want[j];
        }
        ++bad;
      }
    }
    report_values(rules::kPlanFoldError, step, plan, what, first_bad, bad,
                  got_v, want_v, want_v, out);
  }

  static void check_conv(const CompiledPlan& plan, const ModelGraph& g,
                         const std::vector<NodeState>& state,
                         const std::vector<bool>& identity, float eps,
                         int t, std::vector<Diagnostic>& out) {
    const PlanStep& step = plan.steps[static_cast<std::size_t>(t)];
    const int conv_node = step.nodes.front();
    const GraphNode& cn = g.node(conv_node);
    if (cn.kind != OpKind::kConv) return;  // provenance pass reports
    const std::int64_t oc = cn.out_shape.c;
    const std::int64_t row = cn.in_shape.c * cn.attrs.kernel * cn.attrs.kernel;
    if (step.weight.numel() != oc * row) {
      out.push_back(step_diag(
          rules::kPlanWeightShape, t, plan,
          "conv weight holds " + std::to_string(step.weight.numel()) +
              " values but the source geometry implies " +
              std::to_string(oc) + "x" + std::to_string(row)));
      return;
    }
    const bool fused_bn = step.kind == KernelKind::kConvBn ||
                          step.kind == KernelKind::kConvBnRelu;
    if (fused_bn && !step.bias.has_value()) {
      out.push_back(step_diag(rules::kPlanWeightShape, t, plan,
                              "conv-bn step carries no folded bias"));
      return;
    }
    if (step.bias && step.bias->numel() != oc) {
      out.push_back(step_diag(
          rules::kPlanWeightShape, t, plan,
          "conv bias holds " + std::to_string(step.bias->numel()) +
              " values for " + std::to_string(oc) + " output channels"));
      return;
    }

    const NodeState& cs = state[static_cast<std::size_t>(conv_node)];
    if (cs.conv_weight.numel() != oc * row) {
      out.push_back(step_diag(rules::kPlanFoldError, t, plan,
                              "source conv weight shape is inconsistent; "
                              "cannot replay folding"));
      return;
    }

    int bn_node = -1;
    if (fused_bn) {
      for (std::size_t i = 1; i < step.nodes.size(); ++i) {
        if (g.node(step.nodes[i]).kind == OpKind::kBatchNorm) {
          bn_node = step.nodes[i];
        }
      }
    }
    const bool replay_fold =
        bn_node >= 0 && !identity[static_cast<std::size_t>(bn_node)];

    if (!replay_fold) {
      // Verbatim copy (plain conv, or a pre-folded executor whose identity
      // BN contributed nothing): bitwise equality, no tolerance.
      check_verbatim("conv weight", step.weight, cs.conv_weight, t, plan,
                     out);
      if (fused_bn) {
        // Identity-BN path: the compiler still materializes a bias —
        // the source bias when present, zeros otherwise.
        const Tensor want =
            cs.bias ? *cs.bias : Tensor({oc});
        check_verbatim("conv bias", *step.bias, want, t, plan, out);
      } else if (step.bias.has_value() != cs.bias.has_value()) {
        out.push_back(step_diag(
            rules::kPlanWeightShape, t, plan,
            step.bias ? "conv step carries a bias its source never had"
                      : "conv step dropped the source bias"));
      } else if (step.bias) {
        check_verbatim("conv bias", *step.bias, *cs.bias, t, plan, out);
      }
      return;
    }

    const NodeState& bs = state[static_cast<std::size_t>(bn_node)];
    if (bs.bn_gamma.numel() != oc || bs.bn_beta.numel() != oc ||
        bs.bn_mean.numel() != oc || bs.bn_var.numel() != oc) {
      out.push_back(step_diag(rules::kPlanFoldError, t, plan,
                              "source BatchNorm state shape is "
                              "inconsistent; cannot replay folding"));
      return;
    }
    std::int64_t w_first = -1, w_bad = 0, b_first = -1, b_bad = 0;
    float w_got = 0.0f, b_got = 0.0f;
    Interval w_want{0.0f, 0.0f}, b_want{0.0f, 0.0f};
    for (std::int64_t c = 0; c < oc; ++c) {
      if (bs.bn_var[c] + eps <= 0.0f) {
        out.push_back(step_diag(
            rules::kPlanFoldError, t, plan,
            "channel " + std::to_string(c) + " has non-positive variance " +
                std::to_string(bs.bn_var[c]) + "; folding is undefined"));
        return;
      }
      //   scale = γ/√(σ²+ε)   w' = w·scale   b' = β + (b − μ)·scale
      const Interval scale =
          idiv(Interval::point(bs.bn_gamma[c]),
               isqrt(iadd(Interval::point(bs.bn_var[c]),
                          Interval::point(eps))));
      for (std::int64_t j = 0; j < row; ++j) {
        const Interval want =
            imul(Interval::point(cs.conv_weight[c * row + j]), scale)
                .widened(kFoldRel, kFoldAbs);
        const float got = step.weight[c * row + j];
        if (!want.contains(got)) {
          if (w_first < 0) {
            w_first = c * row + j;
            w_got = got;
            w_want = want;
          }
          ++w_bad;
        }
      }
      const float b0 = cs.bias ? (*cs.bias)[c] : 0.0f;
      const Interval want_bias =
          iadd(Interval::point(bs.bn_beta[c]),
               imul(isub(Interval::point(b0), Interval::point(bs.bn_mean[c])),
                    scale))
              .widened(kFoldRel, kFoldAbs);
      const float got_bias = (*step.bias)[c];
      if (!want_bias.contains(got_bias)) {
        if (b_first < 0) {
          b_first = c;
          b_got = got_bias;
          b_want = want_bias;
        }
        ++b_bad;
      }
    }
    report_values(rules::kPlanFoldError, t, plan, "folded conv weight",
                  w_first, w_bad, w_got, w_want.lo, w_want.hi, out);
    report_values(rules::kPlanFoldError, t, plan, "folded conv bias",
                  b_first, b_bad, b_got, b_want.lo, b_want.hi, out);
  }

  static void check_standalone_bn(const CompiledPlan& plan,
                                  const ModelGraph& g,
                                  const std::vector<NodeState>& state,
                                  const std::vector<bool>& identity,
                                  float eps, int t,
                                  std::vector<Diagnostic>& out) {
    const PlanStep& step = plan.steps[static_cast<std::size_t>(t)];
    const int bn_node = step.nodes.front();
    const GraphNode& n = g.node(bn_node);
    if (n.kind != OpKind::kBatchNorm) return;  // provenance pass reports
    const std::int64_t c_count = n.out_shape.c;
    if (step.bn_scale.numel() != c_count ||
        step.bn_shift.numel() != c_count) {
      out.push_back(step_diag(
          rules::kPlanWeightShape, t, plan,
          "standalone BatchNorm carries " +
              std::to_string(step.bn_scale.numel()) + " scale / " +
              std::to_string(step.bn_shift.numel()) + " shift values for " +
              std::to_string(c_count) + " channels"));
      return;
    }
    if (identity[static_cast<std::size_t>(bn_node)]) {
      std::int64_t first = -1, bad = 0;
      float got = 0.0f, want = 0.0f;
      for (std::int64_t c = 0; c < c_count; ++c) {
        if (step.bn_scale[c] != 1.0f || step.bn_shift[c] != 0.0f) {
          if (first < 0) {
            first = c;
            got = step.bn_scale[c] != 1.0f ? step.bn_scale[c]
                                           : step.bn_shift[c];
            want = step.bn_scale[c] != 1.0f ? 1.0f : 0.0f;
          }
          ++bad;
        }
      }
      report_values(rules::kPlanFoldError, t, plan,
                    "identity BatchNorm scale/shift", first, bad, got, want,
                    want, out);
      return;
    }
    const NodeState& bs = state[static_cast<std::size_t>(bn_node)];
    if (bs.bn_gamma.numel() != c_count || bs.bn_beta.numel() != c_count ||
        bs.bn_mean.numel() != c_count || bs.bn_var.numel() != c_count) {
      out.push_back(step_diag(rules::kPlanFoldError, t, plan,
                              "source BatchNorm state shape is "
                              "inconsistent; cannot replay folding"));
      return;
    }
    std::int64_t first = -1, bad = 0;
    float got = 0.0f;
    Interval want{0.0f, 0.0f};
    for (std::int64_t c = 0; c < c_count; ++c) {
      if (bs.bn_var[c] + eps <= 0.0f) {
        out.push_back(step_diag(
            rules::kPlanFoldError, t, plan,
            "channel " + std::to_string(c) + " has non-positive variance " +
                std::to_string(bs.bn_var[c]) + "; folding is undefined"));
        return;
      }
      const Interval scale =
          idiv(Interval::point(bs.bn_gamma[c]),
               isqrt(iadd(Interval::point(bs.bn_var[c]),
                          Interval::point(eps))));
      const Interval shift =
          isub(Interval::point(bs.bn_beta[c]),
               imul(Interval::point(bs.bn_mean[c]), scale));
      const Interval scale_w = scale.widened(kFoldRel, kFoldAbs);
      const Interval shift_w = shift.widened(kFoldRel, kFoldAbs);
      if (!scale_w.contains(step.bn_scale[c])) {
        if (first < 0) {
          first = c;
          got = step.bn_scale[c];
          want = scale_w;
        }
        ++bad;
      }
      if (!shift_w.contains(step.bn_shift[c])) {
        if (first < 0) {
          first = c;
          got = step.bn_shift[c];
          want = shift_w;
        }
        ++bad;
      }
    }
    report_values(rules::kPlanFoldError, t, plan, "BatchNorm scale/shift",
                  first, bad, got, want.lo, want.hi, out);
  }

  static void check_linear(const CompiledPlan& plan, const ModelGraph& g,
                           const std::vector<NodeState>& state, int t,
                           std::vector<Diagnostic>& out) {
    const PlanStep& step = plan.steps[static_cast<std::size_t>(t)];
    const int node = step.nodes.front();
    const GraphNode& n = g.node(node);
    if (n.kind != OpKind::kLinear) return;  // provenance pass reports
    const std::int64_t out_f = n.out_shape.c;
    const std::int64_t in_f = n.in_shape.numel();
    if (step.weight.numel() != out_f * in_f) {
      out.push_back(step_diag(
          rules::kPlanWeightShape, t, plan,
          "linear weight holds " + std::to_string(step.weight.numel()) +
              " values but the source implies " + std::to_string(out_f) +
              "x" + std::to_string(in_f)));
      return;
    }
    if (!step.bias || step.bias->numel() != out_f) {
      out.push_back(step_diag(rules::kPlanWeightShape, t, plan,
                              "linear step is missing its bias"));
      return;
    }
    const NodeState& s = state[static_cast<std::size_t>(node)];
    check_verbatim("linear weight", step.weight, s.linear_weight, t, plan,
                   out);
    if (s.bias) check_verbatim("linear bias", *step.bias, *s.bias, t, plan,
                               out);
  }
};

// ---------------------------------------------------------------------------
// plan-quant: int8 payload audit. The compiler keeps every quantized step's
// fp32 (BN-folded) weights alongside the int8 payload precisely so this
// pass can *re-run* the documented quantization scheme (quantize.hpp) and
// demand bitwise agreement — no tolerance, because both sides execute the
// identical deterministic absmax/scale/lrintf pipeline.

class PlanQuantPass : public PlanVerifyPass {
 public:
  std::string name() const override { return "plan-quant"; }

  void run(const CompiledPlan& plan, const GraphExecutor&,
           std::vector<Diagnostic>& out) const override {
    int int8_steps = 0;
    for (std::size_t t = 0; t < plan.steps.size(); ++t) {
      const PlanStep& step = plan.steps[t];
      const int ti = static_cast<int>(t);
      if (step.precision == graph::Precision::kFp32) {
        if (!step.weight_q.empty() || !step.weight_scale.empty() ||
            !step.requant_scale.empty() || step.in_scale != 0.0f) {
          out.push_back(step_diag(rules::kPlanQuant, ti, plan,
                                  "fp32 step carries a quantization "
                                  "payload"));
        }
        continue;
      }
      ++int8_steps;
      if (!is_conv_kind(step.kind)) {
        out.push_back(step_diag(
            rules::kPlanQuant, ti, plan,
            std::string(graph::kernel_kind_name(step.kind)) +
                " step is marked int8 but only conv kernels quantize"));
        continue;
      }
      check_int8_conv(plan, ti, out);
    }
    if (plan.quantized_steps != int8_steps) {
      out.push_back(step_diag(
          rules::kPlanQuant, -1, plan,
          "plan claims " + std::to_string(plan.quantized_steps) +
              " quantized step(s) but carries " + std::to_string(int8_steps)));
    }
    if (plan.precision == graph::Precision::kFp32 && int8_steps > 0) {
      out.push_back(step_diag(rules::kPlanQuant, -1, plan,
                              "fp32 plan carries " +
                                  std::to_string(int8_steps) +
                                  " int8 step(s)"));
    }
  }

 private:
  static void check_int8_conv(const CompiledPlan& plan, int t,
                              std::vector<Diagnostic>& out) {
    const PlanStep& step = plan.steps[static_cast<std::size_t>(t)];
    const std::int64_t oc = step.out_shape.c;
    const std::int64_t numel = step.weight.numel();
    if (oc <= 0 || numel <= 0 || numel % oc != 0) {
      // The folding/wiring passes own weight-shape defects; without a
      // consistent (oc, row) factorization the replay is undefined.
      out.push_back(step_diag(rules::kPlanQuant, t, plan,
                              "int8 step's fp32 reference weights do not "
                              "factor into per-channel rows; cannot replay "
                              "quantization"));
      return;
    }
    if (step.weight_q.size() != static_cast<std::size_t>(numel) ||
        step.weight_scale.size() != static_cast<std::size_t>(oc) ||
        step.requant_scale.size() != static_cast<std::size_t>(oc)) {
      out.push_back(step_diag(
          rules::kPlanQuant, t, plan,
          "int8 payload sizes (q=" + std::to_string(step.weight_q.size()) +
              ", scale=" + std::to_string(step.weight_scale.size()) +
              ", requant=" + std::to_string(step.requant_scale.size()) +
              ") do not match " + std::to_string(oc) + " channels x " +
              std::to_string(numel / oc) + " weights"));
      return;
    }
    if (!(step.in_scale > 0.0f) || !std::isfinite(step.in_scale)) {
      out.push_back(step_diag(
          rules::kPlanQuant, t, plan,
          "activation scale " + std::to_string(step.in_scale) +
              " is not finite and positive"));
      return;
    }

    // Replay the per-channel weight quantization bitwise.
    const quant::QuantizedWeights replay =
        quant::quantize_weights(step.weight.data(), oc, numel / oc);
    std::int64_t first_q = -1, bad_q = 0;
    for (std::int64_t j = 0; j < numel; ++j) {
      if (replay.q[static_cast<std::size_t>(j)] !=
          step.weight_q[static_cast<std::size_t>(j)]) {
        if (first_q < 0) first_q = j;
        ++bad_q;
      }
    }
    if (bad_q > 0) {
      std::ostringstream os;
      os << "weight_q[" << first_q << "] = "
         << static_cast<int>(step.weight_q[static_cast<std::size_t>(first_q)])
         << " but re-quantizing the retained fp32 weights yields "
         << static_cast<int>(replay.q[static_cast<std::size_t>(first_q)]);
      if (bad_q > 1) os << " (and " << (bad_q - 1) << " more)";
      out.push_back(step_diag(rules::kPlanQuant, t, plan, os.str()));
    }
    for (std::int64_t c = 0; c < oc; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (step.weight_scale[ci] != replay.scale[ci]) {
        out.push_back(step_diag(
            rules::kPlanQuant, t, plan,
            "weight_scale[" + std::to_string(c) + "] = " +
                std::to_string(step.weight_scale[ci]) +
                " but the absmax replay yields " +
                std::to_string(replay.scale[ci])));
        return;  // requant composition below would cascade
      }
      const float want = step.weight_scale[ci] * step.in_scale;
      if (step.requant_scale[ci] != want) {
        out.push_back(step_diag(
            rules::kPlanQuant, t, plan,
            "requant_scale[" + std::to_string(c) + "] = " +
                std::to_string(step.requant_scale[ci]) +
                " is not bitwise weight_scale·in_scale = " +
                std::to_string(want)));
        return;
      }
    }
  }
};

}  // namespace

std::unique_ptr<PlanVerifyPass> make_plan_arena_pass() {
  return std::make_unique<PlanArenaPass>();
}
std::unique_ptr<PlanVerifyPass> make_plan_dataflow_pass() {
  return std::make_unique<PlanDataflowPass>();
}
std::unique_ptr<PlanVerifyPass> make_plan_provenance_pass() {
  return std::make_unique<PlanProvenancePass>();
}
std::unique_ptr<PlanVerifyPass> make_plan_wiring_pass() {
  return std::make_unique<PlanWiringPass>();
}
std::unique_ptr<PlanVerifyPass> make_plan_folding_pass() {
  return std::make_unique<PlanFoldingPass>();
}
std::unique_ptr<PlanVerifyPass> make_plan_quant_pass() {
  return std::make_unique<PlanQuantPass>();
}

PlanVerifier& PlanVerifier::add_pass(std::unique_ptr<PlanVerifyPass> pass) {
  DCNAS_CHECK(pass != nullptr, "PlanVerifier::add_pass requires a pass");
  passes_.push_back(std::move(pass));
  return *this;
}

VerifyResult PlanVerifier::verify(const plan::CompiledPlan& plan,
                                  const graph::GraphExecutor& source) const {
  obs::Span span("analysis", "plan.verify");
  static obs::Counter& verifies =
      obs::MetricsRegistry::global().counter("plan.verify.count");
  static obs::Counter& errors =
      obs::MetricsRegistry::global().counter("plan.verify.errors");
  VerifyResult result;
  for (const auto& pass : passes_) {
    pass->run(plan, source, result.diagnostics);
  }
  verifies.add(1);
  errors.add(static_cast<std::int64_t>(result.error_count()));
  if (span.armed()) {
    span.arg("steps", static_cast<std::int64_t>(plan.steps.size()));
    span.arg("errors", static_cast<std::int64_t>(result.error_count()));
  }
  return result;
}

std::vector<std::string> PlanVerifier::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.push_back(pass->name());
  return names;
}

PlanVerifier PlanVerifier::standard() {
  PlanVerifier v;
  v.add_pass(make_plan_arena_pass())
      .add_pass(make_plan_dataflow_pass())
      .add_pass(make_plan_provenance_pass())
      .add_pass(make_plan_wiring_pass())
      .add_pass(make_plan_folding_pass())
      .add_pass(make_plan_quant_pass());
  return v;
}

void verify_plan_or_throw(const plan::CompiledPlan& plan,
                          const graph::GraphExecutor& source,
                          const std::string& context) {
  const VerifyResult result = PlanVerifier::standard().verify(plan, source);
  if (result.ok()) return;
  std::ostringstream os;
  os << context << ": plan verification failed with " << result.error_count()
     << " error(s)";
  if (result.warning_count() > 0) {
    os << " and " << result.warning_count() << " warning(s)";
  }
  os << "\n" << result.to_string();
  throw InvalidArgument(os.str());
}

#ifndef NDEBUG
namespace {
/// Debug builds arm the compiler's self-check: every plan PlanCompiler
/// emits is immediately re-verified against its source. Static-library
/// linkage caveat: the registrar runs only in binaries that pull this
/// object in (anything calling verify_plan_or_throw or the PlanVerifier —
/// which includes every serving binary via ModelRegistry).
const bool g_self_check_installed = [] {
  plan::set_plan_self_check(
      [](const plan::CompiledPlan& p, const graph::GraphExecutor& e) {
        verify_plan_or_throw(p, e, "PlanCompiler self-check");
      });
  return true;
}();
}  // namespace
#endif

}  // namespace dcnas::analysis
