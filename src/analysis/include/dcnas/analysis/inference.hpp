#pragma once
/// \file inference.hpp
/// \brief Independent re-derivation of per-node IR annotations.
///
/// This is a deliberate second implementation of the shape/params/FLOPs
/// arithmetic in ModelGraph's add_* builders: the verifier cross-checks the
/// stored annotations against these formulas, so sharing code with ir.cpp
/// would make every check a tautology. If the two implementations ever
/// disagree on a valid graph, one of them has a bug — which is exactly what
/// the search-space sweep test is for.

#include <cstdint>
#include <optional>
#include <vector>

#include "dcnas/graph/ir.hpp"

namespace dcnas::analysis {

/// What a node's annotations should be, given its kind, attrs, and the
/// output shapes of its producers. Channel counts that the IR only records
/// in the output annotation (conv out_channels, linear out_features) are
/// taken from node.out_shape.c.
struct NodeExpectation {
  graph::ActShape out_shape;
  std::int64_t params = 0;
  std::int64_t flops = 0;
};

/// Output spatial size of a conv/pool window, or nullopt when the geometry
/// is invalid (non-positive kernel/stride, negative padding, kernel larger
/// than the padded input, or a non-positive result).
std::optional<std::int64_t> window_out_size(std::int64_t in,
                                            std::int64_t kernel,
                                            std::int64_t stride,
                                            std::int64_t padding);

/// Re-derives \p node's expected annotations from \p producer_out (the
/// output shapes of node.inputs, in order). Returns nullopt when the node's
/// geometry or producer shapes make inference impossible; the geometry and
/// shape passes report the reason.
std::optional<NodeExpectation> infer_node(
    const graph::GraphNode& node,
    const std::vector<graph::ActShape>& producer_out);

}  // namespace dcnas::analysis
