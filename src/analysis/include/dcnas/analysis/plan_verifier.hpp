#pragma once
/// \file plan_verifier.hpp
/// \brief Pass-based static verification of compiled inference plans.
///
/// The GraphVerifier (verifier.hpp) guards the source IR; the PlanVerifier
/// closes the loop over the artifact serving actually executes: a
/// CompiledPlan is re-verified against the GraphExecutor it was compiled
/// from by *independently re-deriving* every property the compiler
/// computed — liveness from step order, wiring from fusion provenance,
/// folded weights in interval arithmetic — instead of trusting the
/// compiler's own bookkeeping. Design mirrors the GraphVerifier: ordered
/// passes, stable rule ids (rules::kPlan*), structured Diagnostics. For
/// plan diagnostics, Diagnostic::node holds the *step* index (-1 =
/// plan-wide) and node_name the step name.
///
/// standard() pipeline, in run order:
///   plan-arena      — kPlanSlotBounds, kPlanLiveness, kPlanAlias: slot
///                     extents, liveness re-derived from the step list, and
///                     the symbolic all-batch-sizes non-overlap proof.
///   plan-dataflow   — kPlanDefBeforeUse: slot id validity, reads strictly
///                     after the (re-derived) defining step, no in-place
///                     read/write hazard, structural arity.
///   plan-provenance — kPlanProvenance, kPlanStepOrder,
///                     kPlanFusionIllegal: every step maps back to a
///                     contiguous fusion-legal source chain, the chains
///                     partition the non-structural graph nodes, step order
///                     respects graph topological order, and no fused BN is
///                     one the fusion-legality pass refused.
///   plan-wiring     — kPlanWiring, kPlanOutput, kPlanShape: operand slots
///                     re-derived from the graph edges + provenance tails,
///                     output slot/shape, per-step shapes and slot sizes
///                     against the source annotations.
///   plan-folding    — kPlanWeightShape, kPlanFoldError: bound tensor
///                     dimensions, and a replay of BN weight folding in
///                     outward-rounded interval arithmetic (interval.hpp)
///                     that bounds the legitimate compile-time rounding
///                     error — verbatim-copied weights must match bitwise.
///   plan-quant      — kPlanQuant: int8 payload audit. fp32 steps must
///                     carry no quantization payload; int8 conv steps must
///                     carry per-channel int8 weights that *bitwise* match
///                     a re-quantization of the step's retained fp32
///                     (BN-folded) weights, requantization scales that
///                     bitwise equal weight_scale[c]·in_scale, and a
///                     finite positive activation scale. Composes with
///                     plan-folding: folding verifies the fp32 reference
///                     against the source, quant verifies the int8 payload
///                     against the fp32 reference.
///
/// Trust boundaries that run the standard pipeline (verify_plan_or_throw):
///   - serve::ModelRegistry — refuses to install or hot-swap a plan that
///     fails verification (both the plans it compiles itself and
///     caller-supplied precompiled plans).
///   - plan::PlanCompiler — debug builds self-check every emitted plan via
///     the plan::set_plan_self_check hook (installed by this library's
///     static registrar when NDEBUG is not defined).
///   - examples/dcnas_lint --plan — compiles + verifies any model file or
///     lattice config from the command line; --sweep covers the lattice.
///
/// The plan passes trust the *graph's* annotations: callers must run the
/// GraphVerifier on the source graph first (every boundary above already
/// does — the compiler refuses unverified graphs).

#include <memory>
#include <string>
#include <vector>

#include "dcnas/analysis/verifier.hpp"
#include "dcnas/graph/executor.hpp"
#include "dcnas/plan/plan.hpp"

namespace dcnas::analysis {

/// One analysis over a compiled plan and its source executor. Passes must
/// not throw on corrupt plans — they report findings, and they tolerate
/// defects other passes own (e.g. the wiring pass skips steps whose
/// provenance the provenance pass already reported).
class PlanVerifyPass {
 public:
  virtual ~PlanVerifyPass() = default;
  virtual std::string name() const = 0;
  virtual void run(const plan::CompiledPlan& plan,
                   const graph::GraphExecutor& source,
                   std::vector<Diagnostic>& out) const = 0;
};

std::unique_ptr<PlanVerifyPass> make_plan_arena_pass();
std::unique_ptr<PlanVerifyPass> make_plan_dataflow_pass();
std::unique_ptr<PlanVerifyPass> make_plan_provenance_pass();
std::unique_ptr<PlanVerifyPass> make_plan_wiring_pass();
std::unique_ptr<PlanVerifyPass> make_plan_folding_pass();
std::unique_ptr<PlanVerifyPass> make_plan_quant_pass();

/// Runs an ordered list of plan passes and aggregates their diagnostics.
class PlanVerifier {
 public:
  PlanVerifier& add_pass(std::unique_ptr<PlanVerifyPass> pass);
  VerifyResult verify(const plan::CompiledPlan& plan,
                      const graph::GraphExecutor& source) const;

  /// Names of the registered passes, in run order.
  std::vector<std::string> pass_names() const;
  std::size_t pass_count() const { return passes_.size(); }

  /// The full standard pipeline: arena, dataflow, provenance, wiring,
  /// folding, quant.
  static PlanVerifier standard();

 private:
  std::vector<std::unique_ptr<PlanVerifyPass>> passes_;
};

/// Runs the standard plan pipeline and throws InvalidArgument listing every
/// diagnostic when the plan has errors. \p context names the trust boundary
/// for the error message (e.g. "ModelRegistry refuses plan"). The source
/// graph must already have passed the GraphVerifier.
void verify_plan_or_throw(const plan::CompiledPlan& plan,
                          const graph::GraphExecutor& source,
                          const std::string& context);

}  // namespace dcnas::analysis
