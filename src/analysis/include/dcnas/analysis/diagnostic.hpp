#pragma once
/// \file diagnostic.hpp
/// \brief Structured findings emitted by graph verification passes.
///
/// Every finding carries a stable rule id (e.g. "sem.out-shape") so tests,
/// the lint CLI, and CI logs can match on the class of defect rather than
/// on message wording. Messages name the offending node and include the
/// conflicting values, mirroring the style of ModelGraph's builder errors.

#include <string>
#include <vector>

namespace dcnas::analysis {

enum class Severity {
  kError,    ///< the graph must not cross a trust boundary
  kWarning,  ///< suspicious but executable (e.g. a fusion-legality smell)
};

const char* severity_name(Severity severity);

/// One finding from one pass about one node (or the whole graph).
struct Diagnostic {
  std::string rule;       ///< stable rule id, "<layer>.<name>"
  Severity severity = Severity::kError;
  int node = -1;          ///< index into ModelGraph::nodes(); -1 = graph-wide
  std::string node_name;  ///< empty when node == -1
  std::string message;

  /// "error[sem.out-shape] node 4 'maxpool': ..." — one line, no newline.
  std::string to_string() const;
};

/// Stable rule ids, grouped by pass layer. Referenced by the corruption
/// harness in tests/analysis so renames are caught at compile time.
namespace rules {
// topology
inline constexpr const char* kInputFirst = "topo.input-first";
inline constexpr const char* kSingleOutput = "topo.single-output";
inline constexpr const char* kDanglingInput = "topo.dangling-input";
inline constexpr const char* kArity = "topo.arity";
inline constexpr const char* kOrphan = "topo.orphan";
// semantics
inline constexpr const char* kInShape = "sem.in-shape";
inline constexpr const char* kOutShape = "sem.out-shape";
inline constexpr const char* kAddShape = "sem.add-shape";
inline constexpr const char* kGeometry = "sem.geometry";
inline constexpr const char* kParams = "sem.params";
inline constexpr const char* kFlops = "sem.flops";
inline constexpr const char* kBnProducer = "sem.bn-producer";
// resources
inline constexpr const char* kActivationBytes = "res.activation-bytes";
// compiled plans (analysis::PlanVerifier — plan_verifier.hpp). For plan
// diagnostics, Diagnostic::node is the *step* index (-1 = plan-wide) and
// node_name is the step name.
inline constexpr const char* kPlanSlotBounds = "plan.slot-bounds";
inline constexpr const char* kPlanLiveness = "plan.liveness";
inline constexpr const char* kPlanAlias = "plan.alias";
inline constexpr const char* kPlanDefBeforeUse = "plan.def-before-use";
inline constexpr const char* kPlanProvenance = "plan.provenance";
inline constexpr const char* kPlanStepOrder = "plan.step-order";
inline constexpr const char* kPlanFusionIllegal = "plan.fusion-illegal";
inline constexpr const char* kPlanWiring = "plan.wiring";
inline constexpr const char* kPlanOutput = "plan.output";
inline constexpr const char* kPlanShape = "plan.shape";
inline constexpr const char* kPlanWeightShape = "plan.weight-shape";
inline constexpr const char* kPlanFoldError = "plan.fold-error";
inline constexpr const char* kPlanQuant = "plan.quant";
}  // namespace rules

}  // namespace dcnas::analysis
