#pragma once
/// \file interval.hpp
/// \brief Minimal outward-rounded interval arithmetic over float.
///
/// Used by the PlanVerifier's folding pass to replay the compiler's
/// BatchNorm weight folding as *intervals that provably contain the exact
/// real-valued result*: every endpoint is nudged one ulp outward after each
/// operation, so rounding can never shrink an interval below the true
/// value's range. A stored folded weight that falls outside the (slightly
/// widened, see Interval::widened) interval cannot be explained by
/// floating-point rounding — it is a corrupted or mis-folded value.
///
/// Only the operations the fold replay needs are provided: the divisor of
/// div() must be strictly positive (folding divides by √(σ²+ε) > 0), and
/// sqrt() requires a non-negative lower bound.

#include <algorithm>
#include <cmath>
#include <limits>

#include "dcnas/common/error.hpp"

namespace dcnas::analysis {

struct Interval {
  float lo = 0.0f;
  float hi = 0.0f;

  static Interval point(float v) { return {v, v}; }

  bool contains(float v) const { return lo <= v && v <= hi; }

  /// Half-width as an absolute magnitude (the documented fold-error bound).
  float half_width() const { return (hi - lo) * 0.5f; }

  /// Outward widening by a relative factor plus an absolute slack. The
  /// interval endpoints bound the *exact* fold evaluated with outward
  /// rounding; the compiler evaluates an algebraically equal but
  /// differently associated expression (γ·(1/√(σ²+ε)) vs γ/√(σ²+ε)) in
  /// round-to-nearest, so its result can land a few ulps outside the tight
  /// interval. \p rel must cover that re-association error — a handful of
  /// ulps — while staying orders of magnitude below any real corruption.
  Interval widened(float rel, float abs) const {
    return {lo - std::abs(lo) * rel - abs, hi + std::abs(hi) * rel + abs};
  }
};

namespace detail {
inline float down(float v) {
  return std::nextafter(v, -std::numeric_limits<float>::infinity());
}
inline float up(float v) {
  return std::nextafter(v, std::numeric_limits<float>::infinity());
}
}  // namespace detail

inline Interval iadd(Interval a, Interval b) {
  return {detail::down(a.lo + b.lo), detail::up(a.hi + b.hi)};
}

inline Interval isub(Interval a, Interval b) {
  return {detail::down(a.lo - b.hi), detail::up(a.hi - b.lo)};
}

inline Interval imul(Interval a, Interval b) {
  const float c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  const float lo = std::min(std::min(c[0], c[1]), std::min(c[2], c[3]));
  const float hi = std::max(std::max(c[0], c[1]), std::max(c[2], c[3]));
  return {detail::down(lo), detail::up(hi)};
}

/// Requires b.lo > 0 (the only divisions in BN folding are by √(σ²+ε)).
inline Interval idiv(Interval a, Interval b) {
  DCNAS_ASSERT(b.lo > 0.0f, "interval division requires a positive divisor");
  const float c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  const float lo = std::min(std::min(c[0], c[1]), std::min(c[2], c[3]));
  const float hi = std::max(std::max(c[0], c[1]), std::max(c[2], c[3]));
  return {detail::down(lo), detail::up(hi)};
}

/// Requires a.lo >= 0.
inline Interval isqrt(Interval a) {
  DCNAS_ASSERT(a.lo >= 0.0f, "interval sqrt requires a non-negative bound");
  return {std::max(0.0f, detail::down(std::sqrt(a.lo))),
          detail::up(std::sqrt(a.hi))};
}

}  // namespace dcnas::analysis
