#pragma once
/// \file verifier.hpp
/// \brief Pass-based static analysis of the graph IR.
///
/// A GraphVerifier runs an extensible list of VerifyPasses over a
/// ModelGraph and collects structured Diagnostics. The standard() pipeline
/// guards the three trust boundaries where a graph enters the system with
/// annotations we did not compute ourselves:
///   - graph::parse_model     (verify-on-load of .dcnx files)
///   - nas::verify_candidate  (every sampled architecture before
///                             training / latency prediction)
///   - serve::ModelRegistry   (refuses to register a failing model)
/// ModelGraph::validate() remains the cheap inline builder check; the
/// verifier is the thorough, extensible layer on top of it.

#include <memory>
#include <string>
#include <vector>

#include "dcnas/analysis/diagnostic.hpp"
#include "dcnas/graph/ir.hpp"

namespace dcnas::analysis {

/// One analysis over the whole graph. Passes must not throw on malformed
/// graphs — they report findings and must tolerate defects that other
/// passes own (e.g. shape passes skip nodes with dangling input indices,
/// which the topology pass reports).
class VerifyPass {
 public:
  virtual ~VerifyPass() = default;
  virtual std::string name() const = 0;
  virtual void run(const graph::ModelGraph& graph,
                   std::vector<Diagnostic>& out) const = 0;
};

/// The collected findings of one verify() call.
struct VerifyResult {
  std::vector<Diagnostic> diagnostics;

  /// No errors (warnings alone do not block a trust boundary).
  bool ok() const;
  std::size_t error_count() const;
  std::size_t warning_count() const;
  bool has_rule(const std::string& rule) const;

  /// One line per diagnostic; empty string when clean.
  std::string to_string() const;
};

/// Runs an ordered list of passes and aggregates their diagnostics.
class GraphVerifier {
 public:
  GraphVerifier& add_pass(std::unique_ptr<VerifyPass> pass);
  VerifyResult verify(const graph::ModelGraph& graph) const;

  /// Names of the registered passes, in run order.
  std::vector<std::string> pass_names() const;
  std::size_t pass_count() const { return passes_.size(); }

  /// The full standard pipeline: topology, shape, geometry, accounting,
  /// fusion legality, resources.
  static GraphVerifier standard();

 private:
  std::vector<std::unique_ptr<VerifyPass>> passes_;
};

/// Runs the standard verifier and throws InvalidArgument listing every
/// diagnostic when the graph has errors. \p context names the trust
/// boundary for the error message (e.g. "parse_model").
void verify_or_throw(const graph::ModelGraph& graph,
                     const std::string& context);

}  // namespace dcnas::analysis
