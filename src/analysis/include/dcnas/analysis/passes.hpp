#pragma once
/// \file passes.hpp
/// \brief The standard verification passes. See DESIGN.md §analysis for the
/// full rule-id table.
///
/// topology  — kInputFirst, kSingleOutput, kDanglingInput, kArity, kOrphan
/// shape     — kInShape, kOutShape, kAddShape
/// geometry  — kGeometry (conv/pool kernel-stride-padding sanity)
/// accounting— kParams, kFlops (stored vs re-derived)
/// fusion    — kBnProducer (warning: BN whose producer is not a Conv, the
///             precondition fold_batchnorm()/fuse_graph() rely on)
/// resource  — kActivationBytes (max_activation_bytes() vs an independent
///             recomputation over re-inferred shapes)

#include <memory>

#include "dcnas/analysis/verifier.hpp"

namespace dcnas::analysis {

std::unique_ptr<VerifyPass> make_topology_pass();
std::unique_ptr<VerifyPass> make_shape_pass();
std::unique_ptr<VerifyPass> make_geometry_pass();
std::unique_ptr<VerifyPass> make_accounting_pass();
std::unique_ptr<VerifyPass> make_fusion_legality_pass();
std::unique_ptr<VerifyPass> make_resource_pass();

}  // namespace dcnas::analysis
