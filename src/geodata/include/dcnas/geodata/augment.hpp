#pragma once
/// \file augment.hpp
/// \brief Chip-level data augmentation: the geometric transforms that are
/// label-preserving for drainage-crossing chips (culverts have no
/// canonical orientation).

#include "dcnas/common/rng.hpp"
#include "dcnas/tensor/tensor.hpp"

namespace dcnas::geodata {

/// Horizontal flip (mirror the W axis) of an NCHW batch or single chip.
Tensor flip_horizontal(const Tensor& images);

/// Vertical flip (mirror the H axis).
Tensor flip_vertical(const Tensor& images);

/// Counter-clockwise 90-degree rotation; requires square chips.
Tensor rotate90(const Tensor& images);

/// Randomly applies flips / 90-degree rotations per sample (8 dihedral
/// poses, uniformly) — deterministic in \p rng.
Tensor random_dihedral(const Tensor& images, Rng& rng);

/// Expands a dataset tensor+labels by the full 8-pose dihedral group
/// (appends 7 transformed copies of every chip).
void augment_dihedral(Tensor& images, std::vector<int>& labels);

}  // namespace dcnas::geodata
