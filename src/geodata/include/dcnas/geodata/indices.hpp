#pragma once
/// \file indices.hpp
/// \brief Spectral indices from the paper's Eqs. (1) and (2):
///   NDVI = (NIR - RED) / (NIR + RED)
///   NDWI = (GREEN - NIR) / (GREEN + NIR)

#include "dcnas/geodata/grid.hpp"

namespace dcnas::geodata {

/// Per-cell NDVI; cells where NIR + RED == 0 map to 0.
Grid ndvi(const Grid& nir, const Grid& red);

/// Per-cell NDWI; cells where GREEN + NIR == 0 map to 0.
Grid ndwi(const Grid& green, const Grid& nir);

}  // namespace dcnas::geodata
