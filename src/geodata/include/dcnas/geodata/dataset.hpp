#pragma once
/// \file dataset.hpp
/// \brief Balanced drainage-crossing chip dataset assembly (Table 1's
/// 12,068-chip corpus, reproducible at any scale).

#include <string>
#include <vector>

#include "dcnas/geodata/scene.hpp"
#include "dcnas/tensor/tensor.hpp"

namespace dcnas::geodata {

struct DatasetOptions {
  std::int64_t chip_size = 32;  ///< chip edge in cells (training resolution)
  int channels = 5;             ///< 5 = DEM+R,G,B,NIR; 7 adds NDVI, NDWI
  /// Fraction of Table 1's per-region sample counts to synthesize. 1.0
  /// rebuilds the full 12,068-chip corpus; tests and examples use ~1/32.
  double scale = 1.0 / 32.0;
  std::int64_t scene_size = 192;  ///< synthesized tile edge per scene
  std::uint64_t seed = 2023;
  SceneOptions scene;  ///< size field is overridden by scene_size
};

/// One region's realized chip counts.
struct RegionChipCount {
  std::string name;
  std::int64_t true_chips = 0;
  std::int64_t false_chips = 0;
};

/// In-memory chip dataset: images are NCHW with the channel order
/// [DEM, R, G, B, NIR (, NDVI, NDWI)]; label 1 = contains a drainage
/// crossing at the chip center.
struct DrainageDataset {
  Tensor images;
  std::vector<int> labels;
  std::vector<int> region_ids;  ///< index into region_catalog()
  int channels = 5;
  std::int64_t chip_size = 32;
  std::vector<RegionChipCount> per_region;

  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Synthesizes scenes per study region until each region's scaled chip
/// quota (true + balanced false) is met. Deterministic in options.
DrainageDataset build_dataset(const DatasetOptions& options);

/// Extracts one chip centered at (cy, cx); exposed for tests/examples.
/// Writes `channels` planes of chip_size^2 into \p out (flat CHW).
void extract_chip(const GeoScene& scene, std::int64_t cy, std::int64_t cx,
                  std::int64_t chip_size, int channels, float* out);

}  // namespace dcnas::geodata
