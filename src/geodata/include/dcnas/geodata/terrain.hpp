#pragma once
/// \file terrain.hpp
/// \brief Procedural high-resolution DEM synthesis.
///
/// Stands in for the paper's HRDEM downloads (Table 1): multi-octave value
/// noise (fBm) over a regional slope produces meter-resolution elevation
/// surfaces with realistic ridge/valley structure for the hydrology pass to
/// route water over.

#include "dcnas/common/rng.hpp"
#include "dcnas/geodata/grid.hpp"

namespace dcnas::geodata {

struct TerrainOptions {
  std::int64_t height = 256;
  std::int64_t width = 256;
  double base_elevation_m = 300.0;
  double relief_m = 18.0;         ///< fBm amplitude (gentle farmland relief)
  double regional_slope = 0.02;   ///< m per cell of consistent tilt
  double base_frequency = 1.0 / 96.0;  ///< cycles per cell of octave 0
  int octaves = 5;
  double lacunarity = 2.0;
  double gain = 0.5;
};

/// Smooth deterministic value noise in [-1, 1] at (x, y) for a seed.
double value_noise(double x, double y, std::uint64_t seed);

/// fBm sum of value-noise octaves, roughly in [-1, 1].
double fbm(double x, double y, std::uint64_t seed, int octaves,
           double base_frequency, double lacunarity, double gain);

/// Synthesizes a DEM; deterministic in (options, seed).
Grid synthesize_dem(const TerrainOptions& options, std::uint64_t seed);

/// Central-difference slope magnitude (m per cell) of a DEM.
Grid slope_magnitude(const Grid& dem);

}  // namespace dcnas::geodata
