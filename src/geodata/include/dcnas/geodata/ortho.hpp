#pragma once
/// \file ortho.hpp
/// \brief Synthetic aerial orthophoto rendering (R, G, B, NIR bands).
///
/// Stands in for the USGS NAIP imagery of Table 1. Band values are derived
/// from land cover: vegetation density (noise + wetness), open water along
/// large channels, bare soil, and gray road surfaces. Reflectances are in
/// [0, 1] and follow the qualitative spectral signatures that make NDVI and
/// NDWI informative: vegetation is NIR-bright/red-dark, water is
/// green-bright/NIR-dark.

#include "dcnas/common/rng.hpp"
#include "dcnas/geodata/grid.hpp"

namespace dcnas::geodata {

struct OrthoBands {
  Grid red, green, blue, nir;
};

struct OrthoOptions {
  float water_accumulation_threshold = 800.0f;  ///< open-water channel size
  double vegetation_noise_frequency = 1.0 / 24.0;
};

/// Renders the four bands from the terrain state.
OrthoBands render_orthophoto(const Grid& dem, const Grid& accumulation,
                             const Grid& road_mask,
                             const OrthoOptions& options, std::uint64_t seed);

}  // namespace dcnas::geodata
