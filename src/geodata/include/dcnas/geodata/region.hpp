#pragma once
/// \file region.hpp
/// \brief The four study regions of Table 1 with their data-source
/// metadata and sample counts.

#include <cstdint>
#include <string>
#include <vector>

namespace dcnas::geodata {

struct RegionSpec {
  std::string name;              ///< state-level label, e.g. "Nebraska"
  std::string watershed;         ///< paper's watershed description
  std::string dem_source;
  double dem_resolution_m = 1.0;
  std::int64_t true_samples = 0;   ///< drainage-crossing chips
  std::int64_t false_samples = 0;  ///< randomly sampled background chips
  std::string ortho_source =
      "USGS National Agriculture Imagery Program (NAIP) (1m resolution)";
  std::uint64_t synth_seed = 0;    ///< terrain seed for this region

  std::int64_t total_samples() const { return true_samples + false_samples; }
};

/// Table 1 verbatim: Nebraska 2022/2022, Illinois 1011/1011, North Dakota
/// 613/613, California 2388/2388 — 12,068 chips total.
const std::vector<RegionSpec>& region_catalog();

/// Sum of total_samples over the catalog (12,068 in the paper).
std::int64_t catalog_total_samples();

}  // namespace dcnas::geodata
