#pragma once
/// \file infrastructure.hpp
/// \brief Road embankments and culvert-style drainage crossings.
///
/// A drainage crossing is the feature the paper classifies: a point where a
/// road embankment intersects a stream channel and the flow passes through
/// a culvert *under* the road. In a LiDAR DEM the embankment shows up as a
/// raised bar interrupting the carved channel — the exact local signature
/// the CNN has to learn.

#include <cstdint>
#include <vector>

#include "dcnas/common/rng.hpp"
#include "dcnas/geodata/grid.hpp"

namespace dcnas::geodata {

struct CrossingSite {
  std::int64_t y = 0;
  std::int64_t x = 0;
  float channel_accumulation = 0.0f;  ///< stream size at the crossing
};

struct RoadNetworkOptions {
  int num_roads = 4;
  double embankment_height_m = 1.6;
  std::int64_t road_half_width = 2;  ///< cells on each side of centerline
};

struct RoadNetwork {
  Grid road_mask;                      ///< 1 on road surface cells
  std::vector<CrossingSite> crossings; ///< road x channel intersections
};

/// Rasterizes straight roads with random orientation/offset, raises the DEM
/// along them (embankment), and records every channel crossing. The DEM is
/// modified in place; channels remain carved on both sides of the road but
/// are interrupted by the embankment (the culvert is underground).
RoadNetwork build_roads(Grid& dem, const Grid& channel_mask,
                        const Grid& accumulation,
                        const RoadNetworkOptions& options, Rng& rng);

}  // namespace dcnas::geodata
