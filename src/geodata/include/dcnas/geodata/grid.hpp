#pragma once
/// \file grid.hpp
/// \brief Dense 2-D float raster — DEMs, orthophoto bands, index layers.

#include <cstdint>
#include <vector>

#include "dcnas/common/error.hpp"

namespace dcnas::geodata {

class Grid {
 public:
  Grid() = default;
  Grid(std::int64_t height, std::int64_t width, float fill = 0.0f)
      : height_(height), width_(width) {
    DCNAS_CHECK(height > 0 && width > 0, "grid dimensions must be positive");
    data_.assign(static_cast<std::size_t>(height * width), fill);
  }

  std::int64_t height() const { return height_; }
  std::int64_t width() const { return width_; }
  std::int64_t size() const { return height_ * width_; }
  bool empty() const { return data_.empty(); }

  float& at(std::int64_t y, std::int64_t x) {
    DCNAS_ASSERT(in_bounds(y, x), "grid index out of bounds");
    return data_[static_cast<std::size_t>(y * width_ + x)];
  }
  float at(std::int64_t y, std::int64_t x) const {
    DCNAS_ASSERT(in_bounds(y, x), "grid index out of bounds");
    return data_[static_cast<std::size_t>(y * width_ + x)];
  }

  bool in_bounds(std::int64_t y, std::int64_t x) const {
    return y >= 0 && y < height_ && x >= 0 && x < width_;
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  float min_value() const;
  float max_value() const;
  double mean_value() const;

 private:
  std::int64_t height_ = 0;
  std::int64_t width_ = 0;
  std::vector<float> data_;
};

}  // namespace dcnas::geodata
