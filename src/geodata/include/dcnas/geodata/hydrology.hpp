#pragma once
/// \file hydrology.hpp
/// \brief D8 surface-flow modelling over a DEM: flow directions, flow
/// accumulation, and stream-channel extraction/carving.
///
/// These are the standard GIS primitives behind drainage-network mapping
/// (the application domain of the paper, cf. Li et al. 2013 on drainage
/// structures and LiDAR-derived surface flow).

#include <cstdint>
#include <vector>

#include "dcnas/geodata/grid.hpp"

namespace dcnas::geodata {

/// D8 neighbour offsets (E, SE, S, SW, W, NW, N, NE).
inline constexpr int kD8dx[8] = {1, 1, 0, -1, -1, -1, 0, 1};
inline constexpr int kD8dy[8] = {0, 1, 1, 1, 0, -1, -1, -1};

/// Steepest-descent direction per cell: 0..7 (D8 index) or -1 for pits and
/// border outflow cells.
std::vector<int> d8_flow_directions(const Grid& dem);

/// Number of upstream cells draining through each cell (including itself),
/// computed by accumulating in decreasing-elevation order.
Grid flow_accumulation(const Grid& dem);

/// Boolean (0/1) channel mask: cells with accumulation above the threshold.
Grid channel_mask(const Grid& accumulation, float threshold);

/// Lowers the DEM along channels proportionally to log-accumulation,
/// imprinting visible stream valleys (returns the carved DEM).
Grid carve_channels(const Grid& dem, const Grid& accumulation,
                    float threshold, float max_depth_m);

}  // namespace dcnas::geodata
