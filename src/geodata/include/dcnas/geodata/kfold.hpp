#pragma once
/// \file kfold.hpp
/// \brief Stratified k-fold cross-validation splits (the paper evaluates
/// every NAS trial with 5-fold CV, §3.2).

#include <cstdint>
#include <vector>

namespace dcnas::geodata {

struct FoldSplit {
  std::vector<std::int64_t> train_indices;
  std::vector<std::int64_t> val_indices;
};

/// Splits sample indices into k folds preserving per-class proportions.
/// Every sample appears in exactly one fold's validation set. Shuffling is
/// deterministic in \p seed.
std::vector<FoldSplit> stratified_kfold(const std::vector<int>& labels, int k,
                                        std::uint64_t seed);

}  // namespace dcnas::geodata
