#pragma once
/// \file scene.hpp
/// \brief Full synthetic scene assembly: DEM -> hydrology -> roads ->
/// orthophoto -> spectral indices.

#include <vector>

#include "dcnas/geodata/hydrology.hpp"
#include "dcnas/geodata/indices.hpp"
#include "dcnas/geodata/infrastructure.hpp"
#include "dcnas/geodata/ortho.hpp"
#include "dcnas/geodata/region.hpp"
#include "dcnas/geodata/terrain.hpp"

namespace dcnas::geodata {

/// Everything extractable from one synthesized tile of a study region.
struct GeoScene {
  Grid dem;            ///< carved + embanked elevation (the HRDEM layer)
  Grid accumulation;
  Grid channels;       ///< 0/1 channel mask (pre-road)
  Grid road_mask;
  OrthoBands ortho;
  Grid ndvi_layer;
  Grid ndwi_layer;
  std::vector<CrossingSite> crossings;
  double resolution_m = 1.0;
};

struct SceneOptions {
  std::int64_t size = 256;               ///< square tile edge, cells
  float channel_threshold = 120.0f;      ///< accumulation cells -> stream
  float carve_depth_m = 2.2f;
  TerrainOptions terrain;                ///< size fields are overridden
  RoadNetworkOptions roads;
  OrthoOptions ortho;
};

/// Synthesizes one scene; deterministic in (options, seed).
GeoScene synthesize_scene(const SceneOptions& options, std::uint64_t seed);

}  // namespace dcnas::geodata
