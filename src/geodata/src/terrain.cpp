#include "dcnas/geodata/terrain.hpp"

#include <cmath>

namespace dcnas::geodata {

namespace {

double lattice_value(std::int64_t ix, std::int64_t iy, std::uint64_t seed) {
  const std::uint64_t key =
      mix_seed(seed, static_cast<std::uint64_t>(ix) * 0x9E3779B97F4A7C15ULL ^
                         (static_cast<std::uint64_t>(iy) << 32 |
                          (static_cast<std::uint64_t>(iy) >> 32)));
  return 2.0 * hash_unit(key) - 1.0;
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

double value_noise(double x, double y, std::uint64_t seed) {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const double tx = smoothstep(x - fx);
  const double ty = smoothstep(y - fy);
  const double v00 = lattice_value(ix, iy, seed);
  const double v10 = lattice_value(ix + 1, iy, seed);
  const double v01 = lattice_value(ix, iy + 1, seed);
  const double v11 = lattice_value(ix + 1, iy + 1, seed);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

double fbm(double x, double y, std::uint64_t seed, int octaves,
           double base_frequency, double lacunarity, double gain) {
  DCNAS_CHECK(octaves > 0, "fbm needs at least one octave");
  double amp = 1.0;
  double freq = base_frequency;
  double sum = 0.0;
  double norm = 0.0;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * value_noise(x * freq, y * freq,
                             mix_seed(seed, static_cast<std::uint64_t>(o)));
    norm += amp;
    amp *= gain;
    freq *= lacunarity;
  }
  return sum / norm;
}

Grid synthesize_dem(const TerrainOptions& options, std::uint64_t seed) {
  DCNAS_CHECK(options.relief_m > 0.0, "relief must be positive");
  Grid dem(options.height, options.width);
  for (std::int64_t y = 0; y < options.height; ++y) {
    for (std::int64_t x = 0; x < options.width; ++x) {
      const double n = fbm(static_cast<double>(x), static_cast<double>(y),
                           seed, options.octaves, options.base_frequency,
                           options.lacunarity, options.gain);
      // Regional tilt gives the watershed a consistent outfall direction.
      const double tilt =
          options.regional_slope * (static_cast<double>(x) +
                                    0.35 * static_cast<double>(y));
      dem.at(y, x) = static_cast<float>(options.base_elevation_m +
                                        options.relief_m * n - tilt);
    }
  }
  return dem;
}

Grid slope_magnitude(const Grid& dem) {
  DCNAS_CHECK(!dem.empty(), "slope of empty DEM");
  Grid s(dem.height(), dem.width());
  for (std::int64_t y = 0; y < dem.height(); ++y) {
    for (std::int64_t x = 0; x < dem.width(); ++x) {
      const std::int64_t xm = std::max<std::int64_t>(x - 1, 0);
      const std::int64_t xp = std::min<std::int64_t>(x + 1, dem.width() - 1);
      const std::int64_t ym = std::max<std::int64_t>(y - 1, 0);
      const std::int64_t yp = std::min<std::int64_t>(y + 1, dem.height() - 1);
      const double dx = (dem.at(y, xp) - dem.at(y, xm)) / 2.0;
      const double dy = (dem.at(yp, x) - dem.at(ym, x)) / 2.0;
      s.at(y, x) = static_cast<float>(std::sqrt(dx * dx + dy * dy));
    }
  }
  return s;
}

}  // namespace dcnas::geodata
