#include "dcnas/geodata/infrastructure.hpp"

#include <algorithm>
#include <cmath>

namespace dcnas::geodata {

RoadNetwork build_roads(Grid& dem, const Grid& channels,
                        const Grid& accumulation,
                        const RoadNetworkOptions& options, Rng& rng) {
  DCNAS_CHECK(dem.height() == channels.height() &&
                  dem.width() == channels.width(),
              "DEM/channel size mismatch");
  DCNAS_CHECK(options.num_roads > 0, "need at least one road");
  DCNAS_CHECK(options.embankment_height_m > 0.0, "embankment must be raised");

  RoadNetwork net;
  net.road_mask = Grid(dem.height(), dem.width());
  Grid raised(dem.height(), dem.width());  // cells already raised

  const auto h = static_cast<double>(dem.height());
  const auto w = static_cast<double>(dem.width());
  for (int r = 0; r < options.num_roads; ++r) {
    // Random line through the scene: pick an anchor and an angle biased
    // toward the cardinal grid (rural section-line roads).
    const double cx = rng.uniform(0.15, 0.85) * w;
    const double cy = rng.uniform(0.15, 0.85) * h;
    double angle = rng.uniform(0.0, 3.14159265);
    if (rng.bernoulli(0.6)) {
      angle = rng.bernoulli(0.5) ? 0.0 : 1.5707963;  // E-W or N-S
    }
    const double dx = std::cos(angle);
    const double dy = std::sin(angle);
    const double span = h + w;
    std::int64_t prev_y = -1, prev_x = -1;
    for (double t = -span; t <= span; t += 0.5) {
      const auto x = static_cast<std::int64_t>(std::lround(cx + t * dx));
      const auto y = static_cast<std::int64_t>(std::lround(cy + t * dy));
      if (!dem.in_bounds(y, x) || (y == prev_y && x == prev_x)) continue;
      prev_y = y;
      prev_x = x;
      // Crossing detection before we overwrite the channel's DEM cells.
      if (channels.at(y, x) > 0.5f) {
        // Deduplicate crossings closer than the road width to each other.
        bool duplicate = false;
        for (const auto& c : net.crossings) {
          if (std::abs(c.y - y) <= 2 * options.road_half_width + 2 &&
              std::abs(c.x - x) <= 2 * options.road_half_width + 2) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          net.crossings.push_back({y, x, accumulation.at(y, x)});
        }
      }
      // Raise the embankment (once per cell).
      for (std::int64_t oy = -options.road_half_width;
           oy <= options.road_half_width; ++oy) {
        for (std::int64_t ox = -options.road_half_width;
             ox <= options.road_half_width; ++ox) {
          const std::int64_t ny = y + oy;
          const std::int64_t nx = x + ox;
          if (!dem.in_bounds(ny, nx)) continue;
          net.road_mask.at(ny, nx) = 1.0f;
          if (raised.at(ny, nx) < 0.5f) {
            dem.at(ny, nx) +=
                static_cast<float>(options.embankment_height_m);
            raised.at(ny, nx) = 1.0f;
          }
        }
      }
    }
  }
  return net;
}

}  // namespace dcnas::geodata
