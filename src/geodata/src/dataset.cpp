#include "dcnas/geodata/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "dcnas/common/logging.hpp"

namespace dcnas::geodata {

void extract_chip(const GeoScene& scene, std::int64_t cy, std::int64_t cx,
                  std::int64_t chip_size, int channels, float* out) {
  DCNAS_CHECK(channels == 5 || channels == 7, "chips have 5 or 7 channels");
  const std::int64_t half = chip_size / 2;
  DCNAS_CHECK(cy - half >= 0 && cx - half >= 0 &&
                  cy - half + chip_size <= scene.dem.height() &&
                  cx - half + chip_size <= scene.dem.width(),
              "chip window exceeds scene bounds");
  const Grid* layers[7] = {&scene.dem,        &scene.ortho.red,
                           &scene.ortho.green, &scene.ortho.blue,
                           &scene.ortho.nir,   &scene.ndvi_layer,
                           &scene.ndwi_layer};
  const std::int64_t hw = chip_size * chip_size;
  for (int c = 0; c < channels; ++c) {
    float* plane = out + c * hw;
    const Grid& src = *layers[c];
    for (std::int64_t y = 0; y < chip_size; ++y) {
      for (std::int64_t x = 0; x < chip_size; ++x) {
        plane[y * chip_size + x] =
            src.at(cy - half + y, cx - half + x);
      }
    }
    if (c == 0) {
      // DEM: absolute elevation is region-dependent and uninformative;
      // standardize per chip so the network sees local relief in metres.
      double mean = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) mean += plane[i];
      mean /= static_cast<double>(hw);
      for (std::int64_t i = 0; i < hw; ++i) {
        plane[i] = static_cast<float>((plane[i] - mean) / 2.0);
      }
    }
  }
}

namespace {

/// True when any crossing site lies within Chebyshev distance `radius` of
/// (y, x).
bool near_crossing(const GeoScene& scene, std::int64_t y, std::int64_t x,
                   std::int64_t radius) {
  for (const auto& c : scene.crossings) {
    if (std::abs(c.y - y) <= radius && std::abs(c.x - x) <= radius)
      return true;
  }
  return false;
}

}  // namespace

DrainageDataset build_dataset(const DatasetOptions& options) {
  DCNAS_CHECK(options.chip_size >= 8, "chips must be at least 8 cells");
  DCNAS_CHECK(options.scene_size >= 2 * options.chip_size,
              "scene must fit several chips");
  DCNAS_CHECK(options.scale > 0.0 && options.scale <= 1.0,
              "scale must be in (0, 1]");
  DCNAS_CHECK(options.channels == 5 || options.channels == 7,
              "channels must be 5 or 7");

  const auto& catalog = region_catalog();
  // First pass: per-region quotas.
  std::vector<std::int64_t> quota;
  std::int64_t total = 0;
  for (const auto& region : catalog) {
    const auto q = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(
               std::llround(options.scale *
                            static_cast<double>(region.true_samples))));
    quota.push_back(q);
    total += 2 * q;
  }

  DrainageDataset ds;
  ds.channels = options.channels;
  ds.chip_size = options.chip_size;
  ds.images = Tensor({total, options.channels, options.chip_size,
                      options.chip_size});
  ds.labels.reserve(static_cast<std::size_t>(total));
  ds.region_ids.reserve(static_cast<std::size_t>(total));

  const std::int64_t chw =
      options.channels * options.chip_size * options.chip_size;
  const std::int64_t half = options.chip_size / 2;
  std::int64_t cursor = 0;

  for (std::size_t r = 0; r < catalog.size(); ++r) {
    const RegionSpec& region = catalog[r];
    const std::int64_t want_true = quota[r];
    std::int64_t got_true = 0, got_false = 0;
    Rng rng(mix_seed(options.seed, region.synth_seed));
    int scene_index = 0;
    while (got_true < want_true || got_false < want_true) {
      SceneOptions so = options.scene;
      so.size = options.scene_size;
      const GeoScene scene = synthesize_scene(
          so, mix_seed(options.seed,
                       region.synth_seed * 1000 +
                           static_cast<std::uint64_t>(scene_index++)));
      // True chips: jittered windows centered near each crossing.
      for (const auto& site : scene.crossings) {
        if (got_true >= want_true) break;
        const std::int64_t jy = rng.uniform_int(-half / 4, half / 4);
        const std::int64_t jx = rng.uniform_int(-half / 4, half / 4);
        const std::int64_t cy = std::clamp<std::int64_t>(
            site.y + jy, half, options.scene_size - half - 1);
        const std::int64_t cx = std::clamp<std::int64_t>(
            site.x + jx, half, options.scene_size - half - 1);
        extract_chip(scene, cy, cx, options.chip_size, options.channels,
                     ds.images.data() + cursor * chw);
        ds.labels.push_back(1);
        ds.region_ids.push_back(static_cast<int>(r));
        ++cursor;
        ++got_true;
      }
      // False chips: random spatial sampling away from any crossing
      // (mirrors the paper's "random spatial sampling" of negatives).
      int attempts = 0;
      while (got_false < got_true && attempts < 500) {
        ++attempts;
        const std::int64_t cy =
            rng.uniform_int(half, options.scene_size - half - 1);
        const std::int64_t cx =
            rng.uniform_int(half, options.scene_size - half - 1);
        if (near_crossing(scene, cy, cx, half)) continue;
        extract_chip(scene, cy, cx, options.chip_size, options.channels,
                     ds.images.data() + cursor * chw);
        ds.labels.push_back(0);
        ds.region_ids.push_back(static_cast<int>(r));
        ++cursor;
        ++got_false;
      }
      DCNAS_CHECK(scene_index < 200,
                  "region " + region.name +
                      " cannot reach its chip quota; increase scene size");
    }
    ds.per_region.push_back({region.name, got_true, got_false});
  }
  DCNAS_ASSERT(cursor == total, "dataset cursor mismatch");
  return ds;
}

}  // namespace dcnas::geodata
