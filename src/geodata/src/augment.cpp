#include "dcnas/geodata/augment.hpp"

#include <cstring>

namespace dcnas::geodata {

namespace {

using Mapper = std::int64_t (*)(std::int64_t, std::int64_t, std::int64_t,
                                std::int64_t);

Tensor remap(const Tensor& images, std::int64_t out_h, std::int64_t out_w,
             Mapper source_index) {
  DCNAS_CHECK(images.ndim() == 4, "augmentation expects NCHW");
  const std::int64_t n = images.dim(0), c = images.dim(1), h = images.dim(2),
                     w = images.dim(3);
  Tensor out({n, c, out_h, out_w});
  for (std::int64_t plane = 0; plane < n * c; ++plane) {
    const float* src = images.data() + plane * h * w;
    float* dst = out.data() + plane * out_h * out_w;
    for (std::int64_t y = 0; y < out_h; ++y) {
      for (std::int64_t x = 0; x < out_w; ++x) {
        dst[y * out_w + x] = src[source_index(y, x, h, w)];
      }
    }
  }
  return out;
}

}  // namespace

Tensor flip_horizontal(const Tensor& images) {
  return remap(images, images.dim(2), images.dim(3),
               [](std::int64_t y, std::int64_t x, std::int64_t,
                  std::int64_t w) { return y * w + (w - 1 - x); });
}

Tensor flip_vertical(const Tensor& images) {
  return remap(images, images.dim(2), images.dim(3),
               [](std::int64_t y, std::int64_t x, std::int64_t h,
                  std::int64_t w) { return (h - 1 - y) * w + x; });
}

Tensor rotate90(const Tensor& images) {
  DCNAS_CHECK(images.dim(2) == images.dim(3),
              "rotate90 requires square chips");
  // Output(y, x) = Input(x, H-1-y): counter-clockwise rotation.
  return remap(images, images.dim(3), images.dim(2),
               [](std::int64_t y, std::int64_t x, std::int64_t,
                  std::int64_t w) { return x * w + (w - 1 - y); });
}

Tensor random_dihedral(const Tensor& images, Rng& rng) {
  DCNAS_CHECK(images.ndim() == 4, "augmentation expects NCHW");
  const std::int64_t n = images.dim(0);
  Tensor out = images;
  const std::int64_t chw = images.dim(1) * images.dim(2) * images.dim(3);
  for (std::int64_t s = 0; s < n; ++s) {
    // Pose = (rotations in 0..3, flip in 0..1).
    const std::int64_t pose = rng.uniform_int(0, 7);
    Tensor chip({1, images.dim(1), images.dim(2), images.dim(3)});
    std::memcpy(chip.data(), images.data() + s * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
    for (std::int64_t r = 0; r < pose % 4; ++r) chip = rotate90(chip);
    if (pose >= 4) chip = flip_horizontal(chip);
    std::memcpy(out.data() + s * chw, chip.data(),
                static_cast<std::size_t>(chw) * sizeof(float));
  }
  return out;
}

void augment_dihedral(Tensor& images, std::vector<int>& labels) {
  DCNAS_CHECK(images.ndim() == 4, "augmentation expects NCHW");
  DCNAS_CHECK(static_cast<std::int64_t>(labels.size()) == images.dim(0),
              "label count mismatch");
  const std::int64_t n = images.dim(0);
  const std::int64_t chw = images.dim(1) * images.dim(2) * images.dim(3);
  Tensor expanded({n * 8, images.dim(1), images.dim(2), images.dim(3)});
  std::vector<int> new_labels;
  new_labels.reserve(static_cast<std::size_t>(n) * 8);
  std::int64_t cursor = 0;
  for (std::int64_t s = 0; s < n; ++s) {
    Tensor chip({1, images.dim(1), images.dim(2), images.dim(3)});
    std::memcpy(chip.data(), images.data() + s * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
    for (int flip = 0; flip < 2; ++flip) {
      Tensor base = flip ? flip_horizontal(chip) : chip;
      for (int rot = 0; rot < 4; ++rot) {
        std::memcpy(expanded.data() + cursor * chw, base.data(),
                    static_cast<std::size_t>(chw) * sizeof(float));
        ++cursor;
        new_labels.push_back(labels[static_cast<std::size_t>(s)]);
        base = rotate90(base);
      }
    }
  }
  DCNAS_ASSERT(cursor == n * 8, "augmentation cursor mismatch");
  images = std::move(expanded);
  labels = std::move(new_labels);
}

}  // namespace dcnas::geodata
