#include "dcnas/geodata/scene.hpp"

namespace dcnas::geodata {

GeoScene synthesize_scene(const SceneOptions& options, std::uint64_t seed) {
  DCNAS_CHECK(options.size >= 32, "scene size must be at least 32 cells");
  GeoScene scene;
  scene.resolution_m = 1.0;

  TerrainOptions terrain = options.terrain;
  terrain.height = options.size;
  terrain.width = options.size;
  Grid dem = synthesize_dem(terrain, mix_seed(seed, 1));

  // Hydrology over the natural terrain.
  scene.accumulation = flow_accumulation(dem);
  scene.channels = channel_mask(scene.accumulation, options.channel_threshold);
  dem = carve_channels(dem, scene.accumulation, options.channel_threshold,
                       options.carve_depth_m);

  // Roads cut across the carved channels; crossings are recorded where the
  // embankment interrupts a stream.
  Rng road_rng(mix_seed(seed, 2));
  RoadNetwork net = build_roads(dem, scene.channels, scene.accumulation,
                                options.roads, road_rng);
  scene.road_mask = std::move(net.road_mask);
  scene.crossings = std::move(net.crossings);
  scene.dem = std::move(dem);

  scene.ortho = render_orthophoto(scene.dem, scene.accumulation,
                                  scene.road_mask, options.ortho,
                                  mix_seed(seed, 3));
  scene.ndvi_layer = ndvi(scene.ortho.nir, scene.ortho.red);
  scene.ndwi_layer = ndwi(scene.ortho.green, scene.ortho.nir);
  return scene;
}

}  // namespace dcnas::geodata
