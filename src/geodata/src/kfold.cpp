#include "dcnas/geodata/kfold.hpp"

#include <algorithm>
#include <map>

#include "dcnas/common/error.hpp"
#include "dcnas/common/rng.hpp"

namespace dcnas::geodata {

std::vector<FoldSplit> stratified_kfold(const std::vector<int>& labels, int k,
                                        std::uint64_t seed) {
  DCNAS_CHECK(k >= 2, "k-fold needs k >= 2");
  DCNAS_CHECK(labels.size() >= static_cast<std::size_t>(k),
              "k-fold needs at least k samples");

  // Group indices per class, shuffle each group, deal round-robin to folds.
  std::map<int, std::vector<std::int64_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(static_cast<std::int64_t>(i));
  }
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> fold_members(
      static_cast<std::size_t>(k));
  for (auto& [cls, indices] : by_class) {
    rng.shuffle(indices);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      fold_members[i % static_cast<std::size_t>(k)].push_back(indices[i]);
    }
  }

  std::vector<FoldSplit> splits(static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) {
    auto& split = splits[static_cast<std::size_t>(f)];
    split.val_indices = fold_members[static_cast<std::size_t>(f)];
    std::sort(split.val_indices.begin(), split.val_indices.end());
    for (int other = 0; other < k; ++other) {
      if (other == f) continue;
      const auto& m = fold_members[static_cast<std::size_t>(other)];
      split.train_indices.insert(split.train_indices.end(), m.begin(),
                                 m.end());
    }
    std::sort(split.train_indices.begin(), split.train_indices.end());
    DCNAS_ASSERT(!split.val_indices.empty(), "empty validation fold");
  }
  return splits;
}

}  // namespace dcnas::geodata
