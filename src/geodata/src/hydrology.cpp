#include "dcnas/geodata/hydrology.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dcnas::geodata {

std::vector<int> d8_flow_directions(const Grid& dem) {
  DCNAS_CHECK(!dem.empty(), "flow directions of empty DEM");
  std::vector<int> dir(static_cast<std::size_t>(dem.size()), -1);
  for (std::int64_t y = 0; y < dem.height(); ++y) {
    for (std::int64_t x = 0; x < dem.width(); ++x) {
      double best_drop = 0.0;
      int best = -1;
      for (int k = 0; k < 8; ++k) {
        const std::int64_t ny = y + kD8dy[k];
        const std::int64_t nx = x + kD8dx[k];
        if (!dem.in_bounds(ny, nx)) continue;
        const double dist = (kD8dx[k] != 0 && kD8dy[k] != 0) ? 1.41421356 : 1.0;
        const double drop = (dem.at(y, x) - dem.at(ny, nx)) / dist;
        if (drop > best_drop) {
          best_drop = drop;
          best = k;
        }
      }
      dir[static_cast<std::size_t>(y * dem.width() + x)] = best;
    }
  }
  return dir;
}

Grid flow_accumulation(const Grid& dem) {
  const auto dir = d8_flow_directions(dem);
  Grid acc(dem.height(), dem.width(), 1.0f);  // each cell drains itself
  // Process from the highest cell down: by the time we reach a cell, all
  // its upstream contributors have already pushed their counts into it.
  std::vector<std::int64_t> order(static_cast<std::size_t>(dem.size()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    const float ea = dem.data()[static_cast<std::size_t>(a)];
    const float eb = dem.data()[static_cast<std::size_t>(b)];
    if (ea != eb) return ea > eb;
    return a < b;  // stable tie-break keeps determinism
  });
  for (const std::int64_t cell : order) {
    const int d = dir[static_cast<std::size_t>(cell)];
    if (d < 0) continue;  // pit or border outflow
    const std::int64_t y = cell / dem.width();
    const std::int64_t x = cell % dem.width();
    const std::int64_t ny = y + kD8dy[d];
    const std::int64_t nx = x + kD8dx[d];
    acc.at(ny, nx) += acc.at(y, x);
  }
  return acc;
}

Grid channel_mask(const Grid& accumulation, float threshold) {
  DCNAS_CHECK(threshold > 0.0f, "channel threshold must be positive");
  Grid mask(accumulation.height(), accumulation.width());
  for (std::int64_t i = 0; i < accumulation.size(); ++i) {
    mask.data()[static_cast<std::size_t>(i)] =
        accumulation.data()[static_cast<std::size_t>(i)] >= threshold ? 1.0f
                                                                      : 0.0f;
  }
  return mask;
}

Grid carve_channels(const Grid& dem, const Grid& accumulation, float threshold,
                    float max_depth_m) {
  DCNAS_CHECK(dem.height() == accumulation.height() &&
                  dem.width() == accumulation.width(),
              "DEM/accumulation size mismatch");
  DCNAS_CHECK(max_depth_m > 0.0f, "carve depth must be positive");
  Grid out = dem;
  const float log_thresh = std::log(threshold);
  const float log_max = std::log(accumulation.max_value() + 1.0f);
  const float denom = std::max(log_max - log_thresh, 1e-3f);
  for (std::int64_t i = 0; i < dem.size(); ++i) {
    const float a = accumulation.data()[static_cast<std::size_t>(i)];
    if (a < threshold) continue;
    const float depth =
        max_depth_m * std::min(1.0f, (std::log(a) - log_thresh) / denom);
    out.data()[static_cast<std::size_t>(i)] -= depth;
  }
  return out;
}

}  // namespace dcnas::geodata
