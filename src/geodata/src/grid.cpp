#include "dcnas/geodata/grid.hpp"

#include <algorithm>
#include <numeric>

namespace dcnas::geodata {

float Grid::min_value() const {
  DCNAS_CHECK(!data_.empty(), "min of empty grid");
  return *std::min_element(data_.begin(), data_.end());
}

float Grid::max_value() const {
  DCNAS_CHECK(!data_.empty(), "max of empty grid");
  return *std::max_element(data_.begin(), data_.end());
}

double Grid::mean_value() const {
  if (data_.empty()) return 0.0;
  return std::accumulate(data_.begin(), data_.end(), 0.0) /
         static_cast<double>(data_.size());
}

}  // namespace dcnas::geodata
