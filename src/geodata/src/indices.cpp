#include "dcnas/geodata/indices.hpp"

namespace dcnas::geodata {

namespace {
Grid normalized_difference(const Grid& a, const Grid& b) {
  DCNAS_CHECK(a.height() == b.height() && a.width() == b.width(),
              "band size mismatch");
  Grid out(a.height(), a.width());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const float num = a.data()[static_cast<std::size_t>(i)] -
                      b.data()[static_cast<std::size_t>(i)];
    const float den = a.data()[static_cast<std::size_t>(i)] +
                      b.data()[static_cast<std::size_t>(i)];
    out.data()[static_cast<std::size_t>(i)] = den != 0.0f ? num / den : 0.0f;
  }
  return out;
}
}  // namespace

Grid ndvi(const Grid& nir, const Grid& red) {
  return normalized_difference(nir, red);
}

Grid ndwi(const Grid& green, const Grid& nir) {
  return normalized_difference(green, nir);
}

}  // namespace dcnas::geodata
