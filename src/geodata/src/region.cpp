#include "dcnas/geodata/region.hpp"

namespace dcnas::geodata {

const std::vector<RegionSpec>& region_catalog() {
  static const std::vector<RegionSpec> catalog = {
      {"Nebraska", "West Fork Big Blue Watershed",
       "Nebraska Department of Natural Resource", 1.0, 2022, 2022,
       "USGS National Agriculture Imagery Program (NAIP) (1m resolution)",
       0x10},
      {"Illinois", "Vermilion River Watershed",
       "Illinois Geospatial Data Clearinghouse", 0.3, 1011, 1011,
       "USGS National Agriculture Imagery Program (NAIP) (1m resolution)",
       0x11},
      {"North Dakota", "Maple River Watershed",
       "North Dakota GIS Hub Data Portal", 0.61, 613, 613,
       "USGS National Agriculture Imagery Program (NAIP) (1m resolution)",
       0x12},
      {"California", "Sacramento-Stone Corral Watershed", "USGS", 1.0, 2388,
       2388,
       "USGS National Agriculture Imagery Program (NAIP) (1m resolution)",
       0x13},
  };
  return catalog;
}

std::int64_t catalog_total_samples() {
  std::int64_t total = 0;
  for (const auto& r : region_catalog()) total += r.total_samples();
  return total;
}

}  // namespace dcnas::geodata
