#include "dcnas/geodata/ortho.hpp"

#include <algorithm>
#include <cmath>

#include "dcnas/geodata/terrain.hpp"

namespace dcnas::geodata {

OrthoBands render_orthophoto(const Grid& dem, const Grid& accumulation,
                             const Grid& road_mask, const OrthoOptions& options,
                             std::uint64_t seed) {
  DCNAS_CHECK(dem.height() == accumulation.height() &&
                  dem.height() == road_mask.height(),
              "layer size mismatch");
  OrthoBands bands{Grid(dem.height(), dem.width()),
                   Grid(dem.height(), dem.width()),
                   Grid(dem.height(), dem.width()),
                   Grid(dem.height(), dem.width())};
  for (std::int64_t y = 0; y < dem.height(); ++y) {
    for (std::int64_t x = 0; x < dem.width(); ++x) {
      const double acc = accumulation.at(y, x);
      // Wetness rises with contributing area (log scale).
      const double wetness = std::clamp(std::log1p(acc) / 8.0, 0.0, 1.0);
      const double veg_noise =
          0.5 + 0.5 * value_noise(x * options.vegetation_noise_frequency,
                                  y * options.vegetation_noise_frequency,
                                  mix_seed(seed, 0xFEEDULL));
      const double vegetation =
          std::clamp(0.25 + 0.55 * veg_noise + 0.3 * wetness, 0.0, 1.0);
      const double pixel_noise =
          0.04 * (2.0 * hash_unit(mix_seed(
                            seed, static_cast<std::uint64_t>(
                                      y * dem.width() + x))) -
                  1.0);

      double r, g, b, nir;
      if (road_mask.at(y, x) > 0.5f) {
        // Gravel/asphalt: flat gray, moderate NIR.
        r = 0.38;
        g = 0.38;
        b = 0.36;
        nir = 0.30;
      } else if (acc >= options.water_accumulation_threshold) {
        // Open water: green/blue bright, red lower, NIR strongly absorbed.
        r = 0.10;
        g = 0.22;
        b = 0.28;
        nir = 0.04;
      } else {
        // Soil <-> vegetation mixture.
        const double soil_r = 0.30, soil_g = 0.24, soil_b = 0.18,
                     soil_nir = 0.32;
        const double veg_r = 0.07, veg_g = 0.16, veg_b = 0.07,
                     veg_nir = 0.55 + 0.15 * wetness;
        r = soil_r + (veg_r - soil_r) * vegetation;
        g = soil_g + (veg_g - soil_g) * vegetation;
        b = soil_b + (veg_b - soil_b) * vegetation;
        nir = soil_nir + (veg_nir - soil_nir) * vegetation;
      }
      bands.red.at(y, x) = static_cast<float>(std::clamp(r + pixel_noise, 0.01, 1.0));
      bands.green.at(y, x) = static_cast<float>(std::clamp(g + pixel_noise, 0.01, 1.0));
      bands.blue.at(y, x) = static_cast<float>(std::clamp(b + pixel_noise, 0.01, 1.0));
      bands.nir.at(y, x) = static_cast<float>(std::clamp(nir + pixel_noise, 0.01, 1.0));
    }
  }
  return bands;
}

}  // namespace dcnas::geodata
