#include "dcnas/serve/wire.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::serve {

namespace {

obs::Counter& wire_request_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.wire.request.count");
  return c;
}

obs::Counter& wire_bad_frame_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.wire.bad_frame.count");
  return c;
}

obs::Counter& wire_connection_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.wire.connection.count");
  return c;
}

// ---------------------------------------------------------------------------
// Byte-level codec helpers. Writer appends host-endian POD values; Reader
// bounds-checks every access and throws InvalidArgument on truncation, so a
// decoder can never read past the frame whatever bytes arrive.

class Writer {
 public:
  template <class T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_bytes(&value, sizeof(T));
  }
  void put_bytes(const void* data, std::size_t n) {
    DCNAS_CHECK(n <= kWireMaxFrameBytes, "wire: frame payload exceeds cap");
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  template <class T>
  T get(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    DCNAS_CHECK(size_ - pos_ >= sizeof(T),
                std::string("wire: truncated frame reading ") + what);
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }
  const std::uint8_t* get_bytes(std::size_t n, const char* what) {
    DCNAS_CHECK(size_ - pos_ >= n,
                std::string("wire: truncated frame reading ") + what);
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void check_header(Reader& r) {
  const auto magic = r.get<std::uint32_t>("magic");
  DCNAS_CHECK(magic == kWireMagic, "wire: bad magic");
  const auto version = r.get<std::uint8_t>("version");
  DCNAS_CHECK(version == kWireVersion, "wire: unsupported protocol version");
}

Tensor decode_tensor(Reader& r) {
  const auto ndim = r.get<std::uint8_t>("ndim");
  DCNAS_CHECK(ndim >= 1 && ndim <= 4, "wire: tensor rank must be 1..4");
  Shape shape;
  std::uint64_t numel = 1;
  for (std::uint8_t i = 0; i < ndim; ++i) {
    const auto d = r.get<std::uint32_t>("dim");
    DCNAS_CHECK(d >= 1 && d <= kWireMaxFrameBytes, "wire: dim out of range");
    numel *= d;
    DCNAS_CHECK(numel * sizeof(float) <= kWireMaxFrameBytes,
                "wire: tensor payload exceeds frame cap");
    shape.push_back(static_cast<std::int64_t>(d));
  }
  const std::size_t payload =
      static_cast<std::size_t>(numel) * sizeof(float);
  DCNAS_CHECK(r.remaining() == payload,
              "wire: tensor payload size mismatch");
  Tensor t(shape);
  std::memcpy(t.data(), r.get_bytes(payload, "tensor data"), payload);
  return t;
}

void encode_tensor(Writer& w, const Tensor& t) {
  DCNAS_CHECK(t.ndim() >= 1 && t.ndim() <= 4,
              "wire: tensor rank must be 1..4");
  w.put<std::uint8_t>(static_cast<std::uint8_t>(t.ndim()));
  for (std::size_t i = 0; i < t.ndim(); ++i) {
    w.put<std::uint32_t>(static_cast<std::uint32_t>(t.dim(i)));
  }
  w.put_bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

// ---------------------------------------------------------------------------
// Socket helpers. All loops retry EINTR; writes use MSG_NOSIGNAL so a
// vanished peer yields EPIPE instead of killing the process.

bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

/// Reads exactly \p n bytes. Returns false on clean EOF before the first
/// byte; throws on EOF mid-read or a socket error.
bool read_exact(int fd, void* data, std::size_t n, bool eof_ok_at_start) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("wire: recv failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && eof_ok_at_start) return false;
      throw InvalidArgument("wire: truncated frame (peer closed mid-frame)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool send_frame(int fd, const std::vector<std::uint8_t>& payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  if (!write_all(fd, &length, sizeof(length))) return false;
  return write_all(fd, payload.data(), payload.size());
}

/// Reads one length-prefixed frame. Returns empty optional on clean EOF.
/// Throws InvalidArgument on an oversized length prefix or truncation.
std::optional<std::vector<std::uint8_t>> read_frame(int fd) {
  std::uint32_t length = 0;
  if (!read_exact(fd, &length, sizeof(length), /*eof_ok_at_start=*/true)) {
    return std::nullopt;
  }
  DCNAS_CHECK(length <= kWireMaxFrameBytes,
              "wire: oversized length prefix (" + std::to_string(length) +
                  " bytes, cap " + std::to_string(kWireMaxFrameBytes) + ")");
  std::vector<std::uint8_t> payload(length);
  if (length > 0) read_exact(fd, payload.data(), length, false);
  return payload;
}

WireResponse error_response(WireStatus status, std::string message) {
  WireResponse r;
  r.status = status;
  r.message = std::move(message);
  return r;
}

}  // namespace

const char* to_string(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kShutdown: return "shutdown";
    case WireStatus::kQueueFull: return "queue_full";
    case WireStatus::kShedOverload: return "shed_overload";
    case WireStatus::kDeadlineExpired: return "deadline_expired";
    case WireStatus::kBadRequest: return "bad_request";
    case WireStatus::kInternalError: return "internal_error";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_request(const WireRequest& request) {
  DCNAS_CHECK(!request.model.empty(), "wire: request needs a model name");
  DCNAS_CHECK(request.model.size() <= 0xFFFF, "wire: model name too long");
  Writer w;
  w.put<std::uint32_t>(kWireMagic);
  w.put<std::uint8_t>(kWireVersion);
  w.put<std::uint8_t>(kWireTypeInfer);
  w.put<std::uint16_t>(static_cast<std::uint16_t>(request.model.size()));
  w.put_bytes(request.model.data(), request.model.size());
  w.put<std::uint32_t>(request.deadline_us);
  encode_tensor(w, request.input);
  return w.take();
}

WireRequest decode_request(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  check_header(r);
  const auto type = r.get<std::uint8_t>("type");
  DCNAS_CHECK(type == kWireTypeInfer, "wire: unknown request type");
  const auto model_len = r.get<std::uint16_t>("model_len");
  DCNAS_CHECK(model_len >= 1, "wire: empty model name");
  const auto* model = r.get_bytes(model_len, "model name");
  WireRequest request;
  request.model.assign(reinterpret_cast<const char*>(model), model_len);
  request.deadline_us = r.get<std::uint32_t>("deadline_us");
  request.input = decode_tensor(r);
  return request;
}

std::vector<std::uint8_t> encode_response(const WireResponse& response) {
  Writer w;
  w.put<std::uint32_t>(kWireMagic);
  w.put<std::uint8_t>(kWireVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(response.status));
  if (response.status == WireStatus::kOk) {
    encode_tensor(w, response.output);
  } else {
    const std::size_t n = std::min<std::size_t>(response.message.size(), 0xFFFF);
    w.put<std::uint16_t>(static_cast<std::uint16_t>(n));
    w.put_bytes(response.message.data(), n);
  }
  return w.take();
}

WireResponse decode_response(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  check_header(r);
  const auto status = r.get<std::uint8_t>("status");
  DCNAS_CHECK(status <= static_cast<std::uint8_t>(WireStatus::kInternalError),
              "wire: unknown status byte");
  WireResponse response;
  response.status = static_cast<WireStatus>(status);
  if (response.status == WireStatus::kOk) {
    response.output = decode_tensor(r);
  } else {
    const auto n = r.get<std::uint16_t>("message_len");
    const auto* msg = r.get_bytes(n, "message");
    response.message.assign(reinterpret_cast<const char*>(msg), n);
    DCNAS_CHECK(r.remaining() == 0, "wire: trailing bytes after message");
  }
  return response;
}

// ---------------------------------------------------------------------------
// WireServer

struct WireServer::Impl {
  int listen_fd = -1;
  std::atomic<bool> stopping{false};
  std::thread acceptor;
  std::mutex mu;                       ///< guards conns + live_fds
  std::vector<std::thread> conns;
  std::vector<int> live_fds;
  bool unlink_on_stop = false;
};

WireServer::WireServer(Server& server, WireServerOptions options)
    : server_(server), options_(std::move(options)),
      impl_(std::make_unique<Impl>()) {
  if (!options_.unix_path.empty()) {
    DCNAS_CHECK(options_.unix_path.size() < sizeof(sockaddr_un{}.sun_path),
                "wire: unix socket path too long");
    impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DCNAS_CHECK(impl_->listen_fd >= 0, "wire: cannot create unix socket");
    ::unlink(options_.unix_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(impl_->listen_fd);
      throw Error("wire: cannot bind " + options_.unix_path + ": " +
                  std::strerror(errno));
    }
    impl_->unlink_on_stop = true;
  } else {
    impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DCNAS_CHECK(impl_->listen_fd >= 0, "wire: cannot create tcp socket");
    const int one = 1;
    ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(impl_->listen_fd);
      throw Error(std::string("wire: cannot bind tcp port: ") +
                  std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(impl_->listen_fd, options_.listen_backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(impl_->listen_fd);
    throw Error("wire: listen failed: " + err);
  }
  impl_->acceptor = std::thread([this] { accept_loop(); });
}

WireServer::~WireServer() { stop(); }

void WireServer::stop() {
  if (impl_->stopping.exchange(true)) return;
  // Closing the listener unblocks accept(); shutting down live connections
  // unblocks their reads so handlers exit promptly.
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  ::close(impl_->listen_fd);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const int fd : impl_->live_fds) ::shutdown(fd, SHUT_RDWR);
  }
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    conns.swap(impl_->conns);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (impl_->unlink_on_stop) ::unlink(options_.unix_path.c_str());
}

void WireServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    // Register under the same lock stop() uses to shut live fds down, so a
    // connection accepted while stop() runs is either closed here or
    // visible to stop()'s shutdown sweep — never a stranded blocking read.
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stopping.load()) {
      ::close(fd);
      return;
    }
    wire_connection_counter().add(1);
    impl_->live_fds.push_back(fd);
    impl_->conns.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void WireServer::handle_connection(int fd) {
  for (;;) {
    WireRequest request;
    try {
      auto frame = read_frame(fd);
      if (!frame) break;  // clean EOF
      request = decode_request(frame->data(), frame->size());
    } catch (const std::exception& e) {
      // Garbage framing: answer best-effort, then drop the connection —
      // after a framing error the byte stream can no longer be trusted.
      wire_bad_frame_counter().add(1);
      send_frame(fd, encode_response(
                         error_response(WireStatus::kBadRequest, e.what())));
      break;
    }
    wire_request_counter().add(1);
    obs::Span span("serve", "serve.wire.request");
    if (span.armed()) span.arg("model", request.model);
    WireResponse response;
    try {
      auto future = server_.submit(
          request.model, request.input,
          std::chrono::microseconds(request.deadline_us));
      response.output = future.get();
      response.status = WireStatus::kOk;
    } catch (const RejectedError& e) {
      response = error_response(
          static_cast<WireStatus>(static_cast<std::uint8_t>(e.reason())),
          e.what());
    } catch (const InvalidArgument& e) {
      response = error_response(WireStatus::kBadRequest, e.what());
    } catch (const std::exception& e) {
      response = error_response(WireStatus::kInternalError, e.what());
    }
    if (span.armed()) span.arg("status", to_string(response.status));
    if (!send_frame(fd, encode_response(response))) break;
  }
  // Deregister before closing: once closed, the fd number can be reused by
  // a concurrent accept, and erasing by value afterwards could remove the
  // new connection's entry instead.
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto it = impl_->live_fds.begin(); it != impl_->live_fds.end();
         ++it) {
      if (*it == fd) {
        impl_->live_fds.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// WireClient

WireClient WireClient::connect_unix(const std::string& path) {
  DCNAS_CHECK(path.size() < sizeof(sockaddr_un{}.sun_path),
              "wire: unix socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DCNAS_CHECK(fd >= 0, "wire: cannot create unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("wire: cannot connect to " + path + ": " + err);
  }
  return WireClient(fd);
}

WireClient WireClient::connect_tcp(const std::string& host,
                                   std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DCNAS_CHECK(fd >= 0, "wire: cannot create tcp socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw InvalidArgument("wire: bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("wire: cannot connect to " + host + ":" +
                std::to_string(port) + ": " + err);
  }
  return WireClient(fd);
}

WireClient::WireClient(WireClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WireResponse WireClient::infer_raw(const std::string& model,
                                   const Tensor& input,
                                   std::uint32_t deadline_us) {
  DCNAS_CHECK(fd_ >= 0, "wire: client is closed");
  WireRequest request;
  request.model = model;
  request.input = input;
  request.deadline_us = deadline_us;
  if (!send_frame(fd_, encode_request(request))) {
    throw Error("wire: send failed (connection lost)");
  }
  auto frame = read_frame(fd_);
  if (!frame) throw Error("wire: connection closed before response");
  return decode_response(frame->data(), frame->size());
}

Tensor WireClient::infer(const std::string& model, const Tensor& input,
                         std::uint32_t deadline_us) {
  WireResponse response = infer_raw(model, input, deadline_us);
  switch (response.status) {
    case WireStatus::kOk:
      return std::move(response.output);
    case WireStatus::kShutdown:
    case WireStatus::kQueueFull:
    case WireStatus::kShedOverload:
    case WireStatus::kDeadlineExpired:
      throw RejectedError(
          static_cast<RejectReason>(static_cast<std::uint8_t>(response.status)),
          "wire: " + response.message);
    case WireStatus::kBadRequest:
      throw InvalidArgument("wire: " + response.message);
    case WireStatus::kInternalError:
    default:
      throw Error("wire: " + response.message);
  }
}

}  // namespace dcnas::serve
