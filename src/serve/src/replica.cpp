#include "dcnas/serve/replica.hpp"

#include <cstring>
#include <exception>
#include <functional>
#include <thread>

#include "dcnas/common/profiler.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::serve {

namespace {

obs::Counter& routed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.replica.route.count");
  return c;
}

obs::Counter& spill_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.replica.spill.count");
  return c;
}

/// Cheap per-thread xorshift for routing draws — routing quality needs
/// uniformity, not cryptographic strength, and must not contend on a
/// shared generator.
std::uint64_t route_draw() {
  static thread_local std::uint64_t state =
      0x9E3779B97F4A7C15ull ^
      static_cast<std::uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()));
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

Replica::Replica(std::shared_ptr<ModelRegistry> registry,
                 const BatchPolicy& policy, std::size_t num_workers,
                 bool use_plans, ServingMetrics* metrics)
    : registry_(std::move(registry)),
      use_plans_(use_plans),
      metrics_(metrics),
      batcher_(policy),
      pool_(num_workers == 0 ? 1 : num_workers) {
  DCNAS_CHECK(registry_ != nullptr, "Replica requires a ModelRegistry");
  DCNAS_CHECK(metrics_ != nullptr, "Replica requires ServingMetrics");
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_.submit(std::function<void()>([this] { worker_loop(); }));
  }
}

Replica::~Replica() {
  close();
  drain();
}

std::future<Tensor> Replica::enqueue(const std::string& model,
                                     const Tensor& input,
                                     std::chrono::microseconds deadline) {
  return batcher_.enqueue(model, input, deadline);
}

void Replica::drain() { pool_.wait_idle(); }

void Replica::worker_loop() noexcept {
  // noexcept drain: next_batch answers merge failures through futures and
  // handle_batch answers execution failures the same way, so nothing here
  // can leak into the pool's fire-and-forget error slot (which wait_idle
  // would rethrow from a destructor -> std::terminate).
  try {
    while (auto batch = batcher_.next_batch()) {
      handle_batch(std::move(*batch));
    }
  } catch (...) {
    // Unreachable by contract; swallowing is still safer than terminating
    // the process mid-serve.
  }
}

void Replica::handle_batch(Batch&& batch) noexcept {
  const std::int64_t n = batch.size();
  obs::Span span("serve", "serve.batch.execute");
  if (span.armed()) {
    span.arg("model", batch.model);
    span.arg("rows", n);
  }
  std::vector<Tensor> rows;
  try {
    // One locked read hands back a coherent {executor, plan, version}
    // triple, so a concurrent hot-swap can never pair this batch with a
    // stale plan.
    const ModelSnapshot snap = registry_->snapshot(batch.model);
    const bool via_plan = use_plans_ && snap.plan != nullptr;
    if (span.armed()) span.arg("path", via_plan ? "plan" : "graph");
    Tensor out;
    {
      ScopedTimer timer("serve/run_batch");
      out = via_plan ? snap.plan->run(batch.input)
                     : snap.exec->run(batch.input);
    }
    DCNAS_ASSERT(out.ndim() >= 1 && out.dim(0) == n,
                 "batched output row count mismatch");
    const std::int64_t per = out.numel() / n;
    Shape row_shape = out.shape();
    row_shape[0] = 1;
    rows.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      Tensor row(row_shape);
      std::memcpy(row.data(), out.data() + i * per,
                  static_cast<std::size_t>(per) * sizeof(float));
      rows.push_back(std::move(row));
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (PendingRequest& req : batch.requests) {
      metrics_->record_error(batch.model);
      req.promise.set_exception(error);
    }
    return;
  }
  metrics_->record_batch(batch.model, n);
  const auto done = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < n; ++i) {
    PendingRequest& req = batch.requests[static_cast<std::size_t>(i)];
    const double latency_ms =
        std::chrono::duration<double, std::milli>(done - req.admitted).count();
    metrics_->record_request(batch.model, latency_ms);
    req.promise.set_value(std::move(rows[static_cast<std::size_t>(i)]));
  }
}

ReplicaGroup::ReplicaGroup(std::shared_ptr<ModelRegistry> registry,
                           const ReplicaGroupOptions& options,
                           ServingMetrics* metrics) {
  DCNAS_CHECK(options.num_replicas >= 1,
              "ReplicaGroup needs at least one replica");
  replicas_.reserve(options.num_replicas);
  for (std::size_t i = 0; i < options.num_replicas; ++i) {
    replicas_.push_back(std::make_unique<Replica>(
        registry, options.batch, options.workers_per_replica,
        options.use_plans, metrics));
  }
}

std::future<Tensor> ReplicaGroup::submit(const std::string& model,
                                         const Tensor& input,
                                         std::chrono::microseconds deadline) {
  routed_counter().add(1);
  const std::size_t n = replicas_.size();
  if (n == 1) return replicas_[0]->enqueue(model, input, deadline);

  // Power of two choices on pending depth.
  const std::size_t a = static_cast<std::size_t>(route_draw() % n);
  std::size_t b = static_cast<std::size_t>(route_draw() % (n - 1));
  if (b >= a) ++b;
  std::size_t first = a, second = b;
  if (replicas_[b]->pending() < replicas_[a]->pending()) {
    first = b;
    second = a;
  }
  try {
    return replicas_[first]->enqueue(model, input, deadline);
  } catch (const RejectedError& e) {
    // Spill a full replica's overflow to the other sampled choice; any
    // other rejection (shutdown) is final.
    if (e.reason() != RejectReason::kQueueFull) throw;
    spill_counter().add(1);
    return replicas_[second]->enqueue(model, input, deadline);
  }
}

std::size_t ReplicaGroup::pending() const {
  std::size_t total = 0;
  for (const auto& r : replicas_) total += r->pending();
  return total;
}

std::vector<std::size_t> ReplicaGroup::pending_per_replica() const {
  std::vector<std::size_t> depths;
  depths.reserve(replicas_.size());
  for (const auto& r : replicas_) depths.push_back(r->pending());
  return depths;
}

void ReplicaGroup::shutdown() {
  if (shut_down_.exchange(true)) return;
  // Close every intake before draining any replica: a drain that overlaps
  // another replica's open intake could strand routed work behind it.
  for (const auto& r : replicas_) r->close();
  for (const auto& r : replicas_) r->drain();
}

}  // namespace dcnas::serve
