#include "dcnas/serve/server.hpp"

namespace dcnas::serve {

ReplicaGroupOptions Server::group_options(const ServerOptions& options) {
  ReplicaGroupOptions g;
  g.num_replicas = options.num_replicas == 0 ? 1 : options.num_replicas;
  g.workers_per_replica = options.num_workers == 0 ? 1 : options.num_workers;
  g.batch = options.batch;
  g.use_plans = options.use_plans;
  return g;
}

Server::Server(std::shared_ptr<ModelRegistry> registry, ServerOptions options)
    : registry_(std::move(registry)),
      group_(registry_, group_options(options), &metrics_) {
  DCNAS_CHECK(registry_ != nullptr, "Server requires a ModelRegistry");
}

Server::~Server() { shutdown(); }

std::future<Tensor> Server::submit(const std::string& model,
                                   const Tensor& input) {
  return submit(model, input, std::chrono::microseconds(0));
}

std::future<Tensor> Server::submit(const std::string& model,
                                   const Tensor& input,
                                   std::chrono::microseconds deadline) {
  try {
    return group_.submit(model, input, deadline);
  } catch (const RejectedError&) {
    metrics_.record_error(model);
    throw;
  }
}

void Server::shutdown() { group_.shutdown(); }

}  // namespace dcnas::serve
