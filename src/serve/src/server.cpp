#include "dcnas/serve/server.hpp"

#include <cstring>
#include <exception>

#include "dcnas/common/profiler.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::serve {

Server::Server(std::shared_ptr<ModelRegistry> registry, ServerOptions options)
    : registry_(std::move(registry)),
      options_(options),
      batcher_(options.batch),
      pool_(options.num_workers == 0 ? 1 : options.num_workers) {
  DCNAS_CHECK(registry_ != nullptr, "Server requires a ModelRegistry");
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_.submit(std::function<void()>([this] { worker_loop(); }));
  }
}

Server::~Server() { shutdown(); }

std::future<Tensor> Server::submit(const std::string& model,
                                   const Tensor& input) {
  try {
    return batcher_.enqueue(model, input);
  } catch (const RejectedError&) {
    metrics_.record_error(model);
    throw;
  }
}

void Server::shutdown() {
  if (shut_down_.exchange(true)) return;
  batcher_.close();
  pool_.wait_idle();
}

void Server::worker_loop() {
  // Pool tasks must not throw; handle_batch answers failures through the
  // request futures instead.
  while (auto batch = batcher_.next_batch()) {
    handle_batch(std::move(*batch));
  }
}

void Server::handle_batch(Batch&& batch) {
  const std::int64_t n = batch.size();
  obs::Span span("serve", "serve.batch.execute");
  if (span.armed()) {
    span.arg("model", batch.model);
    span.arg("rows", n);
  }
  std::vector<Tensor> rows;
  try {
    // One locked read hands back a coherent {executor, plan, version}
    // triple, so a concurrent hot-swap can never pair this batch with a
    // stale plan.
    const ModelSnapshot snap = registry_->snapshot(batch.model);
    const bool via_plan = options_.use_plans && snap.plan != nullptr;
    if (span.armed()) span.arg("path", via_plan ? "plan" : "graph");
    Tensor out;
    {
      ScopedTimer timer("serve/run_batch");
      out = via_plan ? snap.plan->run(batch.input)
                     : snap.exec->run(batch.input);
    }
    DCNAS_ASSERT(out.ndim() >= 1 && out.dim(0) == n,
                 "batched output row count mismatch");
    const std::int64_t per = out.numel() / n;
    Shape row_shape = out.shape();
    row_shape[0] = 1;
    rows.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      Tensor row(row_shape);
      std::memcpy(row.data(), out.data() + i * per,
                  static_cast<std::size_t>(per) * sizeof(float));
      rows.push_back(std::move(row));
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (PendingRequest& req : batch.requests) {
      metrics_.record_error(batch.model);
      req.promise.set_exception(error);
    }
    return;
  }
  metrics_.record_batch(batch.model, n);
  const auto done = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < n; ++i) {
    PendingRequest& req = batch.requests[static_cast<std::size_t>(i)];
    const double latency_ms =
        std::chrono::duration<double, std::milli>(done - req.admitted).count();
    metrics_.record_request(batch.model, latency_ms);
    req.promise.set_value(std::move(rows[static_cast<std::size_t>(i)]));
  }
}

}  // namespace dcnas::serve
