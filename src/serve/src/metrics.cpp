#include "dcnas/serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dcnas/common/stats.hpp"

namespace dcnas::serve {

namespace {

std::string labeled(const char* base, const std::string& model) {
  return std::string(base) + "{model=" + model + "}";
}

}  // namespace

ServingMetrics::Handles ServingMetrics::handles(
    const std::string& model) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(model);
    if (it != models_.end()) return it->second;
  }
  // Register outside mu_ (the registry has its own lock), then publish.
  // A concurrent first-use of the same model is benign: the registry
  // returns the same metric pointers and the losing emplace is a no-op.
  Handles h;
  h.requests = &registry_.counter(labeled("serve.request.count", model));
  h.errors = &registry_.counter(labeled("serve.error.count", model));
  h.latency_ms =
      &registry_.summary(labeled("serve.request.latency_ms", model));
  h.batch_size = &registry_.summary(labeled("serve.batch.size", model));
  std::lock_guard<std::mutex> lock(mu_);
  return models_.emplace(model, h).first->second;
}

ServingMetrics::Handles ServingMetrics::find(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(model);
  return it == models_.end() ? Handles{} : it->second;
}

void ServingMetrics::record_request(const std::string& model,
                                    double latency_ms) {
  const Handles h = handles(model);
  h.requests->add(1);
  h.latency_ms->observe(latency_ms);
}

void ServingMetrics::record_error(const std::string& model) {
  handles(model).errors->add(1);
}

void ServingMetrics::record_batch(const std::string& model,
                                  std::int64_t batch_size) {
  handles(model).batch_size->observe(static_cast<double>(batch_size));
}

std::int64_t ServingMetrics::request_count(const std::string& model) const {
  const Handles h = find(model);
  return h.requests == nullptr ? 0 : h.requests->value();
}

std::int64_t ServingMetrics::error_count(const std::string& model) const {
  const Handles h = find(model);
  return h.errors == nullptr ? 0 : h.errors->value();
}

LatencySummary ServingMetrics::latency_summary(const std::string& model) const {
  const Handles h = find(model);
  if (h.latency_ms == nullptr) return {};
  const std::vector<double> samples = h.latency_ms->samples();
  if (samples.empty()) return {};
  LatencySummary s;
  s.count = samples.size();
  s.mean_ms = mean(samples);
  s.p50_ms = quantile(samples, 0.50);
  s.p95_ms = quantile(samples, 0.95);
  s.p99_ms = quantile(samples, 0.99);
  return s;
}

std::map<std::int64_t, std::int64_t> ServingMetrics::batch_histogram(
    const std::string& model) const {
  const Handles h = find(model);
  std::map<std::int64_t, std::int64_t> hist;
  if (h.batch_size == nullptr) return hist;
  for (const double size : h.batch_size->samples()) {
    ++hist[static_cast<std::int64_t>(std::llround(size))];
  }
  return hist;
}

std::string ServingMetrics::stats_report() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, _] : models_) names.push_back(name);
  }
  std::string out =
      "model                requests   errors   p50ms   p95ms   p99ms  batches\n";
  char line[256];
  for (const std::string& name : names) {
    const LatencySummary s = latency_summary(name);
    const auto hist = batch_histogram(name);
    std::string hist_str;
    for (const auto& [size, count] : hist) {
      if (!hist_str.empty()) hist_str += ' ';
      hist_str += std::to_string(size) + "x" + std::to_string(count);
    }
    std::snprintf(line, sizeof line,
                  "%-20s %8lld %8lld %7.2f %7.2f %7.2f  %s\n", name.c_str(),
                  static_cast<long long>(request_count(name)),
                  static_cast<long long>(error_count(name)), s.p50_ms,
                  s.p95_ms, s.p99_ms, hist_str.c_str());
    out += line;
  }
  return out;
}

void ServingMetrics::reset() {
  // The registry zeroes metrics in place (references stay valid); dropping
  // the handle cache empties stats_report()'s model list until new traffic
  // re-registers names.
  std::lock_guard<std::mutex> lock(mu_);
  models_.clear();
  registry_.reset();
}

}  // namespace dcnas::serve
