#include "dcnas/serve/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "dcnas/common/stats.hpp"

namespace dcnas::serve {

void ServingMetrics::record_request(const std::string& model,
                                    double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  PerModel& m = models_[model];
  ++m.requests;
  m.latencies_ms.push_back(latency_ms);
}

void ServingMetrics::record_error(const std::string& model) {
  std::lock_guard<std::mutex> lock(mu_);
  ++models_[model].errors;
}

void ServingMetrics::record_batch(const std::string& model,
                                  std::int64_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++models_[model].batch_hist[batch_size];
}

std::int64_t ServingMetrics::request_count(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(model);
  return it == models_.end() ? 0 : it->second.requests;
}

std::int64_t ServingMetrics::error_count(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(model);
  return it == models_.end() ? 0 : it->second.errors;
}

LatencySummary ServingMetrics::latency_summary(const std::string& model) const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(model);
    if (it == models_.end() || it->second.latencies_ms.empty()) return {};
    samples = it->second.latencies_ms;
  }
  LatencySummary s;
  s.count = samples.size();
  s.mean_ms = mean(samples);
  s.p50_ms = quantile(samples, 0.50);
  s.p95_ms = quantile(samples, 0.95);
  s.p99_ms = quantile(samples, 0.99);
  return s;
}

std::map<std::int64_t, std::int64_t> ServingMetrics::batch_histogram(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(model);
  return it == models_.end() ? std::map<std::int64_t, std::int64_t>{}
                             : it->second.batch_hist;
}

std::string ServingMetrics::stats_report() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, _] : models_) names.push_back(name);
  }
  std::string out =
      "model                requests   errors   p50ms   p95ms   p99ms  batches\n";
  char line[256];
  for (const std::string& name : names) {
    const LatencySummary s = latency_summary(name);
    const auto hist = batch_histogram(name);
    std::string hist_str;
    for (const auto& [size, count] : hist) {
      if (!hist_str.empty()) hist_str += ' ';
      hist_str += std::to_string(size) + "x" + std::to_string(count);
    }
    std::snprintf(line, sizeof line,
                  "%-20s %8lld %8lld %7.2f %7.2f %7.2f  %s\n", name.c_str(),
                  static_cast<long long>(request_count(name)),
                  static_cast<long long>(error_count(name)), s.p50_ms,
                  s.p95_ms, s.p99_ms, hist_str.c_str());
    out += line;
  }
  return out;
}

void ServingMetrics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  models_.clear();
}

}  // namespace dcnas::serve
