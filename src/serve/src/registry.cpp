#include "dcnas/serve/registry.hpp"

#include <limits>
#include <utility>

#include "dcnas/analysis/plan_verifier.hpp"
#include "dcnas/analysis/verifier.hpp"
#include "dcnas/common/error.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"
#include "dcnas/plan/compiler.hpp"

namespace dcnas::serve {

ModelRegistry::ModelRegistry(std::size_t capacity, bool compile_plans)
    : capacity_(capacity), compile_plans_(compile_plans) {}

int ModelRegistry::register_model(const std::string& name,
                                  graph::GraphExecutor exec) {
  DCNAS_CHECK(!name.empty(), "model name must be non-empty");
  // A registered model is served to every worker; refuse anything the
  // verifier rejects, even if the executor was constructed in-process.
  analysis::verify_or_throw(exec.graph(),
                            "ModelRegistry refuses model '" + name + "'");
  auto shared = std::make_shared<const graph::GraphExecutor>(std::move(exec));

  // Compile the plan from exactly this executor's weights *outside* the
  // lock (compilation copies every weight tensor), then install both in one
  // critical section: no interleaving can pair this executor with another
  // version's plan, and serving is never blocked on compilation. Even a
  // plan this registry compiled itself is re-verified before install —
  // serving never runs a plan the PlanVerifier has not passed.
  std::shared_ptr<const plan::PlanExecutor> compiled;
  if (compile_plans_) {
    obs::Span span("serve", "serve.registry.plan_compile");
    if (span.armed()) span.arg("model", name);
    static obs::Counter& compiles = obs::MetricsRegistry::global().counter(
        "serve.registry.plan_compile.count");
    plan::CompiledPlan plan = plan::compile_plan(*shared);
    analysis::verify_plan_or_throw(
        plan, *shared, "ModelRegistry refuses plan for '" + name + "'");
    compiled = std::make_shared<const plan::PlanExecutor>(std::move(plan));
    compiles.add(1);
  }
  return install(name, std::move(shared), std::move(compiled));
}

int ModelRegistry::register_model(const std::string& name,
                                  graph::GraphExecutor exec,
                                  plan::CompiledPlan plan) {
  DCNAS_CHECK(!name.empty(), "model name must be non-empty");
  analysis::verify_or_throw(exec.graph(),
                            "ModelRegistry refuses model '" + name + "'");
  auto shared = std::make_shared<const graph::GraphExecutor>(std::move(exec));

  // The untrusted-artifact trust boundary: statically verify the supplied
  // plan against this executor before constructing anything that would run
  // it (PlanExecutor's constructor already executes arena checks, so the
  // verifier must come first to report structured rule ids instead).
  static obs::Counter& rejects = obs::MetricsRegistry::global().counter(
      "serve.registry.plan_reject.count");
  try {
    analysis::verify_plan_or_throw(
        plan, *shared, "ModelRegistry refuses plan for '" + name + "'");
  } catch (const InvalidArgument&) {
    rejects.add(1);
    throw;
  }
  auto compiled =
      std::make_shared<const plan::PlanExecutor>(std::move(plan));
  return install(name, std::move(shared), std::move(compiled));
}

int ModelRegistry::install(
    const std::string& name,
    std::shared_ptr<const graph::GraphExecutor> exec,
    std::shared_ptr<const plan::PlanExecutor> plan) {
  MutexLock lock(mu_);
  const int version = ++versions_[name];
  Entry& e = entries_[name];
  e.exec = std::move(exec);
  e.plan = std::move(plan);
  e.version = version;
  e.last_used = ++tick_;
  if (capacity_ > 0 && entries_.size() > capacity_) evict_lru_locked(name);
  return version;
}

int ModelRegistry::load(const std::string& name, const std::string& path) {
  return register_model(name, graph::load_model(path));
}

std::shared_ptr<const graph::GraphExecutor> ModelRegistry::get(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(name);
  DCNAS_CHECK(it != entries_.end(), "model not registered: " + name);
  it->second.last_used = ++tick_;
  return it->second.exec;
}

ModelSnapshot ModelRegistry::snapshot(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(name);
  DCNAS_CHECK(it != entries_.end(), "model not registered: " + name);
  it->second.last_used = ++tick_;
  ModelSnapshot snap;
  snap.exec = it->second.exec;
  snap.plan = it->second.plan;
  snap.version = it->second.version;
  return snap;
}

bool ModelRegistry::contains(const std::string& name) const {
  MutexLock lock(mu_);
  return entries_.count(name) > 0;
}

bool ModelRegistry::evict(const std::string& name) {
  MutexLock lock(mu_);
  return entries_.erase(name) > 0;
}

int ModelRegistry::version(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

std::vector<std::string> ModelRegistry::names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void ModelRegistry::evict_lru_locked(const std::string& keep) {
  auto victim = entries_.end();
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == keep) continue;
    if (it->second.last_used < oldest) {
      oldest = it->second.last_used;
      victim = it;
    }
  }
  // Erasing the Entry drops the executor and its derived plan together;
  // in-flight holders of either keep them alive via shared ownership.
  if (victim != entries_.end()) entries_.erase(victim);
}

}  // namespace dcnas::serve
