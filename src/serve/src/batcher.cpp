#include "dcnas/serve/batcher.hpp"

#include <cstring>

#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::serve {

namespace {

/// Process-wide admission/flush counters. These complement the per-Server
/// ServingMetrics registry: they aggregate across every batcher instance, so
/// a single metrics export shows total serving pressure.
obs::Counter& admitted_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.request.admitted.count");
  return c;
}

obs::Counter& rejected_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.request.rejected.count");
  return c;
}

obs::Counter& flushed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.batch.flushed.count");
  return c;
}

obs::Histogram& batch_size_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "serve.batch.size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  return h;
}

/// Normalizes an accepted input to (C, H, W).
Tensor to_chw(const Tensor& input) {
  if (input.ndim() == 3) return input;
  DCNAS_CHECK(input.ndim() == 4 && input.dim(0) == 1,
              "serve request input must be (C,H,W) or (1,C,H,W)");
  return input.reshaped({input.dim(1), input.dim(2), input.dim(3)});
}

}  // namespace

void BatchPolicy::validate() const {
  DCNAS_CHECK(max_batch >= 1, "BatchPolicy.max_batch must be >= 1");
  DCNAS_CHECK(max_delay.count() >= 0, "BatchPolicy.max_delay must be >= 0");
  DCNAS_CHECK(queue_capacity >= 1, "BatchPolicy.queue_capacity must be >= 1");
}

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  policy_.validate();
}

std::future<Tensor> DynamicBatcher::enqueue(const std::string& model,
                                            const Tensor& input) {
  obs::Span span("serve", "serve.admit");
  if (span.armed()) span.arg("model", model);
  DCNAS_CHECK(!model.empty(), "serve request needs a model name");
  PendingRequest req;
  req.model = model;
  req.input = to_chw(input);
  req.admitted = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      rejected_counter().add(1);
      throw RejectedError("serve: rejected, server shutting down");
    }
    if (total_pending_ >= policy_.queue_capacity) {
      rejected_counter().add(1);
      throw RejectedError(
          "serve: rejected, pending queue full (" +
          std::to_string(policy_.queue_capacity) + " requests)");
    }
    queues_[model].push_back(std::move(req));
    ++total_pending_;
  }
  admitted_counter().add(1);
  // notify_all: a consumer may be sleeping on another model's deadline and
  // this admission could complete a full batch it should pop immediately.
  cv_pending_.notify_all();
  return fut;
}

std::map<std::string, DynamicBatcher::Queue>::iterator
DynamicBatcher::oldest_queue_locked() {
  auto best = queues_.end();
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    if (it->second.empty()) continue;
    if (best == queues_.end() ||
        it->second.front().admitted < best->second.front().admitted) {
      best = it;
    }
  }
  return best;
}

Batch DynamicBatcher::pop_batch_locked(
    std::map<std::string, Queue>::iterator it) {
  Queue& q = it->second;
  Batch batch;
  batch.model = it->first;
  const Shape shape = q.front().input.shape();  // copy: front is moved from
  while (!q.empty() &&
         batch.size() < policy_.max_batch &&
         q.front().input.shape() == shape) {
    batch.requests.push_back(std::move(q.front()));
    q.pop_front();
    --total_pending_;
  }
  if (q.empty()) queues_.erase(it);
  return batch;
}

std::optional<Batch> DynamicBatcher::next_batch() {
  Batch batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = oldest_queue_locked();
      if (it == queues_.end()) {
        if (closed_) return std::nullopt;
        cv_pending_.wait(lock);
        continue;
      }
      const Queue& q = it->second;
      const auto deadline = q.front().admitted + policy_.max_delay;
      const bool full = static_cast<std::int64_t>(q.size()) >= policy_.max_batch;
      if (closed_ || full ||
          std::chrono::steady_clock::now() >= deadline) {
        batch = pop_batch_locked(it);
        break;
      }
      cv_pending_.wait_until(lock, deadline);
    }
  }
  // Merge inputs outside the lock: copying image payloads is the expensive
  // part and needs no shared state.
  obs::Span merge_span("serve", "serve.batch.merge");
  if (merge_span.armed()) {
    merge_span.arg("model", batch.model);
    merge_span.arg("rows", batch.size());
  }
  const Shape& img = batch.requests.front().input.shape();
  Tensor merged({batch.size(), img[0], img[1], img[2]});
  const std::int64_t per = batch.requests.front().input.numel();
  for (std::int64_t i = 0; i < batch.size(); ++i) {
    std::memcpy(merged.data() + i * per,
                batch.requests[static_cast<std::size_t>(i)].input.data(),
                static_cast<std::size_t>(per) * sizeof(float));
  }
  batch.input = std::move(merged);
  flushed_counter().add(1);
  batch_size_histogram().observe(static_cast<double>(batch.size()));
  return batch;
}

void DynamicBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_pending_.notify_all();
}

bool DynamicBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t DynamicBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pending_;
}

}  // namespace dcnas::serve
