#include "dcnas/serve/batcher.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::serve {

namespace {

/// Process-wide admission/flush counters. These complement the per-Server
/// ServingMetrics registry: they aggregate across every batcher instance, so
/// a single metrics export shows total serving pressure.
obs::Counter& admitted_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.request.admitted.count");
  return c;
}

obs::Counter& rejected_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.request.rejected.count");
  return c;
}

obs::Counter& rejected_shutdown_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.reject.shutdown.count");
  return c;
}

obs::Counter& rejected_queue_full_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.reject.queue_full.count");
  return c;
}

obs::Counter& shed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.request.shed.count");
  return c;
}

obs::Counter& shed_overload_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.shed.overload.count");
  return c;
}

obs::Counter& shed_expired_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "serve.shed.deadline_expired.count");
  return c;
}

obs::Counter& flushed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("serve.batch.flushed.count");
  return c;
}

obs::Histogram& batch_size_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "serve.batch.size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  return h;
}

/// Normalizes an accepted input to (C, H, W).
Tensor to_chw(const Tensor& input) {
  if (input.ndim() == 3) return input;
  DCNAS_CHECK(input.ndim() == 4 && input.dim(0) == 1,
              "serve request input must be (C,H,W) or (1,C,H,W)");
  return input.reshaped({input.dim(1), input.dim(2), input.dim(3)});
}

/// Fails \p requests' futures with a RejectedError of \p reason. Runs
/// outside the batcher lock: set_exception wakes future waiters.
void shed_requests(std::vector<PendingRequest>&& requests, RejectReason reason,
                   obs::Counter& reason_counter) {
  for (PendingRequest& req : requests) {
    shed_counter().add(1);
    reason_counter.add(1);
    req.promise.set_exception(std::make_exception_ptr(RejectedError(
        reason, std::string("serve: request shed, ") + to_string(reason) +
                    " (model " + req.model + ")")));
  }
  requests.clear();
}

}  // namespace

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kShutdown: return "shutdown";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShedOverload: return "shed_overload";
    case RejectReason::kDeadlineExpired: return "deadline_expired";
  }
  return "unknown";
}

void BatchPolicy::validate() const {
  DCNAS_CHECK(max_batch >= 1, "BatchPolicy.max_batch must be >= 1");
  DCNAS_CHECK(max_delay.count() >= 0, "BatchPolicy.max_delay must be >= 0");
  DCNAS_CHECK(queue_capacity >= 1, "BatchPolicy.queue_capacity must be >= 1");
}

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  policy_.validate();
}

std::future<Tensor> DynamicBatcher::enqueue(const std::string& model,
                                            const Tensor& input,
                                            std::chrono::microseconds deadline) {
  obs::Span span("serve", "serve.admit");
  if (span.armed()) span.arg("model", model);
  DCNAS_CHECK(!model.empty(), "serve request needs a model name");
  PendingRequest req;
  req.model = model;
  req.input = to_chw(input);
  req.admitted = std::chrono::steady_clock::now();
  if (deadline.count() > 0) req.deadline = req.admitted + deadline;
  std::future<Tensor> fut = req.promise.get_future();
  std::optional<PendingRequest> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      rejected_counter().add(1);
      rejected_shutdown_counter().add(1);
      throw RejectedError(RejectReason::kShutdown,
                          "serve: rejected, server shutting down");
    }
    if (total_pending_ >= policy_.queue_capacity) {
      // Shed-oldest-past-deadline: a pending request that has already
      // missed its SLO will never be usefully executed, so its slot goes
      // to the newcomer instead of rejecting the newcomer outright.
      victim = take_oldest_expired_locked(req.admitted);
      if (!victim) {
        rejected_counter().add(1);
        rejected_queue_full_counter().add(1);
        throw RejectedError(
            RejectReason::kQueueFull,
            "serve: rejected, pending queue full (" +
                std::to_string(policy_.queue_capacity) + " requests)");
      }
    }
    queues_[model].push_back(std::move(req));
    ++total_pending_;
  }
  if (victim) {
    std::vector<PendingRequest> shed;
    shed.push_back(std::move(*victim));
    shed_requests(std::move(shed), RejectReason::kShedOverload,
                  shed_overload_counter());
  }
  admitted_counter().add(1);
  // notify_all: a consumer may be sleeping on another model's deadline and
  // this admission could complete a full batch it should pop immediately.
  cv_pending_.notify_all();
  return fut;
}

std::map<std::string, DynamicBatcher::Queue>::iterator
DynamicBatcher::ripest_queue_locked() {
  // A full queue flushes now, no matter how young: executing it cannot be
  // improved by waiting, and waiting starves it behind older sparse queues.
  // Among several full queues the oldest head wins (fairness); with none
  // full, the oldest head overall is the one whose delay deadline is next.
  auto best_full = queues_.end();
  auto best_old = queues_.end();
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    const Queue& q = it->second;
    if (q.empty()) continue;
    if (static_cast<std::int64_t>(q.size()) >= policy_.max_batch &&
        (best_full == queues_.end() ||
         q.front().admitted < best_full->second.front().admitted)) {
      best_full = it;
    }
    if (best_old == queues_.end() ||
        q.front().admitted < best_old->second.front().admitted) {
      best_old = it;
    }
  }
  return best_full != queues_.end() ? best_full : best_old;
}

Batch DynamicBatcher::pop_batch_locked(
    std::map<std::string, Queue>::iterator it) {
  Queue& q = it->second;
  Batch batch;
  batch.model = it->first;
  const Shape shape = q.front().input.shape();  // copy: front is moved from
  while (!q.empty() &&
         batch.size() < policy_.max_batch &&
         q.front().input.shape() == shape) {
    batch.requests.push_back(std::move(q.front()));
    q.pop_front();
    --total_pending_;
  }
  if (q.empty()) queues_.erase(it);
  return batch;
}

void DynamicBatcher::take_expired_locked(TimePoint now,
                                         std::vector<PendingRequest>* out) {
  for (auto it = queues_.begin(); it != queues_.end();) {
    Queue& q = it->second;
    bool any_expired = false;
    for (const PendingRequest& req : q) {
      if (req.deadline <= now) {
        any_expired = true;
        break;
      }
    }
    if (any_expired) {  // rebuild only queues that actually shed something
      Queue kept;
      for (PendingRequest& req : q) {
        if (req.deadline <= now) {
          out->push_back(std::move(req));
          --total_pending_;
        } else {
          kept.push_back(std::move(req));
        }
      }
      q = std::move(kept);
    }
    it = q.empty() ? queues_.erase(it) : std::next(it);
  }
  std::sort(out->begin(), out->end(),
            [](const PendingRequest& a, const PendingRequest& b) {
              return a.admitted < b.admitted;
            });
}

std::optional<PendingRequest> DynamicBatcher::take_oldest_expired_locked(
    TimePoint now) {
  auto best_queue = queues_.end();
  std::size_t best_index = 0;
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    const Queue& q = it->second;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].deadline > now) continue;
      if (best_queue == queues_.end() ||
          q[i].admitted < best_queue->second[best_index].admitted) {
        best_queue = it;
        best_index = i;
      }
    }
  }
  if (best_queue == queues_.end()) return std::nullopt;
  Queue& q = best_queue->second;
  PendingRequest victim = std::move(q[best_index]);
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(best_index));
  --total_pending_;
  if (q.empty()) queues_.erase(best_queue);
  return victim;
}

DynamicBatcher::TimePoint DynamicBatcher::earliest_deadline_locked() const {
  TimePoint earliest = TimePoint::max();
  for (const auto& [model, q] : queues_) {
    for (const PendingRequest& req : q) {
      if (req.deadline < earliest) earliest = req.deadline;
    }
  }
  return earliest;
}

std::optional<Batch> DynamicBatcher::next_batch() {
  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        const auto now = std::chrono::steady_clock::now();
        std::vector<PendingRequest> expired;
        take_expired_locked(now, &expired);
        if (!expired.empty()) {
          lock.unlock();
          shed_requests(std::move(expired), RejectReason::kDeadlineExpired,
                        shed_expired_counter());
          lock.lock();
          continue;  // queues changed under the dropped lock: re-evaluate
        }
        auto it = ripest_queue_locked();
        if (it == queues_.end()) {
          if (closed_) return std::nullopt;
          cv_pending_.wait(lock);
          continue;
        }
        const Queue& q = it->second;
        const auto flush_at = q.front().admitted + policy_.max_delay;
        const bool full =
            static_cast<std::int64_t>(q.size()) >= policy_.max_batch;
        if (closed_ || full || now >= flush_at) {
          batch = pop_batch_locked(it);
          break;
        }
        // Wake for whichever comes first: the oldest head aging out or the
        // earliest SLO expiry (so doomed requests are shed promptly instead
        // of rotting until the flush deadline).
        cv_pending_.wait_until(lock,
                               std::min(flush_at, earliest_deadline_locked()));
      }
    }
    // Merge inputs outside the lock: copying image payloads is the expensive
    // part and needs no shared state. A merge failure (e.g. bad_alloc on the
    // batch tensor) answers the popped requests' futures and keeps draining —
    // it must never escape into a worker loop and terminate the process.
    try {
      obs::Span merge_span("serve", "serve.batch.merge");
      if (merge_span.armed()) {
        merge_span.arg("model", batch.model);
        merge_span.arg("rows", batch.size());
      }
      if (merge_hook_) merge_hook_(batch);
      const Shape& img = batch.requests.front().input.shape();
      Tensor merged({batch.size(), img[0], img[1], img[2]});
      const std::int64_t per = batch.requests.front().input.numel();
      for (std::int64_t i = 0; i < batch.size(); ++i) {
        std::memcpy(merged.data() + i * per,
                    batch.requests[static_cast<std::size_t>(i)].input.data(),
                    static_cast<std::size_t>(per) * sizeof(float));
      }
      batch.input = std::move(merged);
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (PendingRequest& req : batch.requests) {
        req.promise.set_exception(error);
      }
      continue;  // this batch is answered (as failed); pop the next one
    }
    flushed_counter().add(1);
    batch_size_histogram().observe(static_cast<double>(batch.size()));
    return batch;
  }
}

void DynamicBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_pending_.notify_all();
}

bool DynamicBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t DynamicBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pending_;
}

}  // namespace dcnas::serve
