#pragma once
/// \file wire.hpp
/// \brief Length-prefixed binary wire protocol over POSIX sockets, so
/// external processes can submit chips to a Server and receive score rows.
///
/// ## Framing
///
/// Every message is one frame: a `u32 length` prefix (bytes that follow,
/// capped at kWireMaxFrameBytes — an oversized prefix is answered with
/// kBadRequest and the connection is closed) followed by `length` payload
/// bytes. Integers and floats are host-endian: the protocol targets
/// same-machine or same-architecture deployments (Unix-domain sockets or a
/// rack-local TCP loopback), mirroring the repo's .dcnx convention.
///
/// Request payload:
///   u32  magic      0x44434E57 ("DCNW")
///   u8   version    1
///   u8   type       1 = infer (the only type today)
///   u16  model_len  + model_len bytes of model name
///   u32  deadline_us  SLO deadline relative to admission; 0 = untagged
///   u8   ndim       3 = (C,H,W) or 4 = (1,C,H,W)
///   u32  dims[ndim]
///   f32  data[prod(dims)]
///
/// Response payload:
///   u32  magic
///   u8   version
///   u8   status     WireStatus; reject statuses 1..4 are RejectReason values
///   ok:     u8 ndim, u32 dims[ndim], f32 data[prod(dims)]
///   error:  u16 message_len + message bytes
///
/// ## Endpoints
///
/// WireServer accepts on a Unix-domain socket path or a TCP port (one
/// handler thread per connection; frames on one connection are processed
/// sequentially — clients wanting pipelining open several connections, as
/// bench_load does). WireClient is the blocking client library used by the
/// load generator, serve_daemon --self-test, and the integration tests.
/// Malformed input (bad magic, truncated frame, oversized length, shape /
/// payload mismatch) is answered with a kBadRequest frame where possible
/// and the connection is closed; the server never crashes on garbage bytes
/// (tests/serve/wire_test.cpp byte-flips valid frames to enforce this).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dcnas/serve/server.hpp"

namespace dcnas::serve {

inline constexpr std::uint32_t kWireMagic = 0x44434E57u;  // "DCNW"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint8_t kWireTypeInfer = 1;
/// Hard per-frame cap: a length prefix past this is a protocol error, not
/// an allocation request.
inline constexpr std::uint32_t kWireMaxFrameBytes = 64u << 20;  // 64 MiB

/// Response status byte. Reject statuses reuse RejectReason's numbering so
/// clients reconstruct the typed error losslessly.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kShutdown = 1,         ///< == RejectReason::kShutdown — gone, do not retry
  kQueueFull = 2,        ///< == RejectReason::kQueueFull — retry later
  kShedOverload = 3,     ///< == RejectReason::kShedOverload
  kDeadlineExpired = 4,  ///< == RejectReason::kDeadlineExpired
  kBadRequest = 5,       ///< malformed frame / unknown model / bad shape
  kInternalError = 6,    ///< execution failure; message carries details
};

static_assert(static_cast<std::uint8_t>(WireStatus::kShutdown) ==
                  static_cast<std::uint8_t>(RejectReason::kShutdown) &&
              static_cast<std::uint8_t>(WireStatus::kQueueFull) ==
                  static_cast<std::uint8_t>(RejectReason::kQueueFull) &&
              static_cast<std::uint8_t>(WireStatus::kShedOverload) ==
                  static_cast<std::uint8_t>(RejectReason::kShedOverload) &&
              static_cast<std::uint8_t>(WireStatus::kDeadlineExpired) ==
                  static_cast<std::uint8_t>(RejectReason::kDeadlineExpired),
              "wire status bytes must track RejectReason numbering");

const char* to_string(WireStatus status);

/// One decoded inference request.
struct WireRequest {
  std::string model;
  Tensor input;  ///< (C,H,W) or (1,C,H,W), as sent
  std::uint32_t deadline_us = 0;
};

/// One decoded response.
struct WireResponse {
  WireStatus status = WireStatus::kOk;
  Tensor output;        ///< valid when status == kOk
  std::string message;  ///< error detail otherwise
};

/// Frame payload codecs (exclusive of the u32 length prefix). Decoders
/// throw InvalidArgument on malformed bytes — and must never crash or read
/// out of bounds, whatever the input (fuzzed in tests/serve/wire_test.cpp).
std::vector<std::uint8_t> encode_request(const WireRequest& request);
WireRequest decode_request(const std::uint8_t* data, std::size_t size);
std::vector<std::uint8_t> encode_response(const WireResponse& response);
WireResponse decode_response(const std::uint8_t* data, std::size_t size);

/// Where a WireServer listens: a Unix-domain socket path when \p unix_path
/// is non-empty, else TCP on 127.0.0.1:\p tcp_port (0 = ephemeral; the
/// bound port is reported by WireServer::port()).
struct WireServerOptions {
  std::string unix_path;
  std::uint16_t tcp_port = 0;
  int listen_backlog = 64;
};

/// Socket front-end for a Server. Construction binds, listens, and starts
/// the accept thread; stop() (also the destructor) closes the listener and
/// every live connection, then joins all handler threads. The Server must
/// outlive the WireServer.
class WireServer {
 public:
  WireServer(Server& server, WireServerOptions options);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  void stop();

  /// Bound TCP port (0 when listening on a Unix socket).
  std::uint16_t port() const { return port_; }
  const std::string& unix_path() const { return options_.unix_path; }

 private:
  struct Impl;
  void accept_loop();
  void handle_connection(int fd);

  Server& server_;
  WireServerOptions options_;
  std::uint16_t port_ = 0;
  std::unique_ptr<Impl> impl_;
};

/// Blocking client: one connection, sequential request/response. Not
/// thread-safe; open one WireClient per concurrent stream.
class WireClient {
 public:
  static WireClient connect_unix(const std::string& path);
  static WireClient connect_tcp(const std::string& host, std::uint16_t port);

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  ~WireClient();

  /// Sends one inference request and returns the raw response (status +
  /// tensor or message). Throws Error on connection/framing failures only.
  WireResponse infer_raw(const std::string& model, const Tensor& input,
                         std::uint32_t deadline_us = 0);

  /// As infer_raw, but maps non-ok statuses to exceptions: reject statuses
  /// throw RejectedError carrying the decoded reason, kBadRequest throws
  /// InvalidArgument, kInternalError throws Error.
  Tensor infer(const std::string& model, const Tensor& input,
               std::uint32_t deadline_us = 0);

  void close();

 private:
  explicit WireClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace dcnas::serve
