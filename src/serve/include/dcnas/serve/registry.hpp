#pragma once
/// \file registry.hpp
/// \brief Model registry: loads DCNX artifacts into ready GraphExecutors and
/// caches them by name with hot-swap and LRU eviction.
///
/// Executors are handed out as shared_ptr<const GraphExecutor>, so a
/// hot-swap (re-registering a name) or an eviction never invalidates an
/// executor a worker is mid-inference with — the old instance stays alive
/// until its last holder drops it. GraphExecutor::run() is const and
/// reentrant (see executor.hpp), so one cached instance serves all workers.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dcnas/graph/model_file.hpp"

namespace dcnas::serve {

/// Thread-safe name -> executor cache.
class ModelRegistry {
 public:
  /// \p capacity bounds the number of resident models; 0 means unbounded.
  /// Registering past capacity evicts the least-recently-used other model.
  explicit ModelRegistry(std::size_t capacity = 0);

  /// Registers (or hot-swaps) \p name; returns the new version number.
  /// Versions start at 1 and survive eviction, so a reloaded model never
  /// reuses a stale version number. The executor's graph must pass the
  /// standard analysis::GraphVerifier pipeline; registration of a model
  /// with verifier errors throws InvalidArgument and leaves the registry
  /// (and any currently-resident version of \p name) untouched.
  int register_model(const std::string& name, graph::GraphExecutor exec);

  /// Loads a DCNX file via graph::load_model and registers it.
  int load(const std::string& name, const std::string& path);

  /// Returns the resident executor and bumps its LRU recency. Throws
  /// InvalidArgument when \p name is not registered.
  std::shared_ptr<const graph::GraphExecutor> get(
      const std::string& name) const;

  bool contains(const std::string& name) const;

  /// Drops the resident executor (in-flight holders keep theirs alive).
  /// Returns false when \p name was not resident.
  bool evict(const std::string& name);

  /// Latest version registered under \p name (0 when never registered).
  int version(const std::string& name) const;

  /// Currently resident model names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const graph::GraphExecutor> exec;
    int version = 0;
    std::uint64_t last_used = 0;
  };

  void evict_lru_locked(const std::string& keep);

  mutable std::mutex mu_;
  mutable std::uint64_t tick_ = 0;
  std::size_t capacity_;
  mutable std::map<std::string, Entry> entries_;  ///< mutable: get() bumps LRU
  std::map<std::string, int> versions_;  ///< monotone, survives eviction
};

}  // namespace dcnas::serve
