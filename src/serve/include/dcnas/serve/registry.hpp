#pragma once
/// \file registry.hpp
/// \brief Model registry: loads DCNX artifacts into ready GraphExecutors,
/// compiles them into inference plans, and caches both by name with
/// hot-swap and LRU eviction.
///
/// Executors and plans are handed out as shared_ptr<const ...>, so a
/// hot-swap (re-registering a name) or an eviction never invalidates an
/// instance a worker is mid-inference with — the old one stays alive until
/// its last holder drops it. Both GraphExecutor::run() and
/// PlanExecutor::run() are const and reentrant, so one cached instance of
/// each serves all workers.
///
/// Derived-state invalidation contract: everything the registry derives
/// from a model's weights (today: the compiled plan) lives in the same
/// Entry as the executor and is installed, hot-swapped, and evicted in one
/// critical section. snapshot() returns {executor, plan, version} from a
/// single locked read, so a caller can never observe a new executor paired
/// with a stale plan (or vice versa), no matter how registrations and
/// evictions interleave with serving.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dcnas/common/thread_annotations.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/plan/executor.hpp"

namespace dcnas::serve {

/// One coherent view of a registered model: the executor, the plan compiled
/// from exactly that executor's weights (nullptr when plan compilation is
/// disabled), and the version both belong to.
struct ModelSnapshot {
  std::shared_ptr<const graph::GraphExecutor> exec;
  std::shared_ptr<const plan::PlanExecutor> plan;
  int version = 0;
};

/// Thread-safe name -> {executor, compiled plan} cache.
class ModelRegistry {
 public:
  /// \p capacity bounds the number of resident models; 0 means unbounded.
  /// Registering past capacity evicts the least-recently-used other model.
  /// \p compile_plans controls whether register_model also compiles and
  /// caches a fused-plan executor (on by default; turn off to serve
  /// op-by-op, e.g. for differential benchmarking).
  explicit ModelRegistry(std::size_t capacity = 0, bool compile_plans = true);

  /// Registers (or hot-swaps) \p name; returns the new version number.
  /// Versions start at 1 and survive eviction, so a reloaded model never
  /// reuses a stale version number. The executor's graph must pass the
  /// standard analysis::GraphVerifier pipeline; registration of a model
  /// with verifier errors throws InvalidArgument and leaves the registry
  /// (and any currently-resident version of \p name) untouched. The plan
  /// is compiled *before* the swap and installed atomically with the
  /// executor, so serving never sees a half-updated model.
  int register_model(const std::string& name, graph::GraphExecutor exec);

  /// Registers (or hot-swaps) \p name with a caller-supplied precompiled
  /// plan instead of compiling one. This is the untrusted-artifact path: the
  /// plan is statically verified against \p exec by the full
  /// analysis::PlanVerifier pipeline *before* anything is installed — a
  /// byte-patched plan (shifted arena offsets, forged fusion provenance,
  /// reordered steps, perturbed folded weights) throws InvalidArgument
  /// naming the violated rule ids and leaves the registry, including any
  /// resident version of \p name, untouched.
  int register_model(const std::string& name, graph::GraphExecutor exec,
                     plan::CompiledPlan plan);

  /// Loads a DCNX file via graph::load_model and registers it.
  int load(const std::string& name, const std::string& path);

  /// Returns the resident executor and bumps its LRU recency. Throws
  /// InvalidArgument when \p name is not registered.
  std::shared_ptr<const graph::GraphExecutor> get(
      const std::string& name) const;

  /// Returns the resident {executor, plan, version} triple from one locked
  /// read and bumps LRU recency. Throws InvalidArgument when \p name is not
  /// registered. This is the serving lookup: Server::handle_batch runs
  /// snapshot().plan when present.
  ModelSnapshot snapshot(const std::string& name) const;

  bool contains(const std::string& name) const;

  /// Drops the resident executor and its plan (in-flight holders keep
  /// theirs alive). Returns false when \p name was not resident.
  bool evict(const std::string& name);

  /// Latest version registered under \p name (0 when never registered).
  int version(const std::string& name) const;

  /// Currently resident model names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool compiles_plans() const { return compile_plans_; }

 private:
  struct Entry {
    std::shared_ptr<const graph::GraphExecutor> exec;
    std::shared_ptr<const plan::PlanExecutor> plan;  ///< derived state
    int version = 0;
    std::uint64_t last_used = 0;
  };

  void evict_lru_locked(const std::string& keep) REQUIRES(mu_);
  int install(const std::string& name,
              std::shared_ptr<const graph::GraphExecutor> exec,
              std::shared_ptr<const plan::PlanExecutor> plan);

  mutable Mutex mu_;
  mutable std::uint64_t tick_ GUARDED_BY(mu_) = 0;
  std::size_t capacity_;
  bool compile_plans_;
  /// mutable: get() bumps LRU
  mutable std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
  /// monotone, survives eviction
  std::map<std::string, int> versions_ GUARDED_BY(mu_);
};

}  // namespace dcnas::serve
