#pragma once
/// \file metrics.hpp
/// \brief Per-model serving metrics: request/error counters, batch-size
/// histogram, and latency percentiles.
///
/// The latency numbers here are *measured end-to-end serving latency*
/// (admission -> response), the quantity the paper's latency objective
/// predicts analytically. bench_serve compares these measurements against
/// the latency-predictor path so the predictor's claims can be checked
/// against a real runtime instead of only the simulator.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dcnas::serve {

/// Latency percentiles over all completed requests of one model.
struct LatencySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Thread-safe accumulator shared by all server workers. All methods may be
/// called concurrently; reads observe a consistent snapshot.
class ServingMetrics {
 public:
  /// Records one successfully answered request and its end-to-end latency.
  void record_request(const std::string& model, double latency_ms);

  /// Records one failed or rejected request.
  void record_error(const std::string& model);

  /// Records one executed batch of \p batch_size requests.
  void record_batch(const std::string& model, std::int64_t batch_size);

  std::int64_t request_count(const std::string& model) const;
  std::int64_t error_count(const std::string& model) const;

  /// p50/p95/p99/mean over completed requests (zeros when none).
  LatencySummary latency_summary(const std::string& model) const;

  /// batch size -> number of batches executed at that size.
  std::map<std::int64_t, std::int64_t> batch_histogram(
      const std::string& model) const;

  /// Aligned text table: one row per model plus its batch histogram.
  std::string stats_report() const;

  void reset();

 private:
  struct PerModel {
    std::int64_t requests = 0;
    std::int64_t errors = 0;
    std::map<std::int64_t, std::int64_t> batch_hist;
    std::vector<double> latencies_ms;
  };

  mutable std::mutex mu_;
  std::map<std::string, PerModel> models_;
};

}  // namespace dcnas::serve
