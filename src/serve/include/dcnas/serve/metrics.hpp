#pragma once
/// \file metrics.hpp
/// \brief Per-model serving metrics: request/error counters, batch-size
/// histogram, and latency percentiles.
///
/// The latency numbers here are *measured end-to-end serving latency*
/// (admission -> response), the quantity the paper's latency objective
/// predicts analytically. bench_serve compares these measurements against
/// the latency-predictor path so the predictor's claims can be checked
/// against a real runtime instead of only the simulator.
///
/// ServingMetrics is a thin facade over a private obs::MetricsRegistry:
/// each model maps to the metric family `serve.request.count{model=<m>}`,
/// `serve.error.count{model=<m>}`, `serve.request.latency_ms{model=<m>}`
/// (summary, exact quantiles) and `serve.batch.size{model=<m>}`. The
/// registry is per-instance — each Server's metrics are isolated — and
/// exportable via registry().to_json()/to_text(). Process-wide serving
/// counters (admitted/rejected/flushed) live in obs::MetricsRegistry::
/// global(), recorded by the batcher and server directly.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dcnas/obs/metrics.hpp"

namespace dcnas::serve {

/// Latency percentiles over all completed requests of one model.
struct LatencySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Thread-safe accumulator shared by all server workers. All methods may be
/// called concurrently; reads observe a consistent snapshot.
class ServingMetrics {
 public:
  /// Records one successfully answered request and its end-to-end latency.
  void record_request(const std::string& model, double latency_ms);

  /// Records one failed or rejected request.
  void record_error(const std::string& model);

  /// Records one executed batch of \p batch_size requests.
  void record_batch(const std::string& model, std::int64_t batch_size);

  std::int64_t request_count(const std::string& model) const;
  std::int64_t error_count(const std::string& model) const;

  /// p50/p95/p99/mean over completed requests (zeros when none).
  LatencySummary latency_summary(const std::string& model) const;

  /// batch size -> number of batches executed at that size.
  std::map<std::int64_t, std::int64_t> batch_histogram(
      const std::string& model) const;

  /// Aligned text table: one row per model plus its batch histogram.
  std::string stats_report() const;

  void reset();

  /// The backing per-instance registry, for JSON/text export of this
  /// server's metrics (e.g. alongside a trace file).
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  struct Handles {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Summary* latency_ms = nullptr;
    obs::Summary* batch_size = nullptr;
  };

  /// Registers the model's metric family on first use. Returned by value:
  /// the metric pointers stay valid for the registry's lifetime even if a
  /// concurrent reset() clears the handle cache.
  Handles handles(const std::string& model) const;
  /// All-null handles when the model has never been recorded.
  Handles find(const std::string& model) const;

  /// Per-instance scope (not global()); mutable so const reads can lazily
  /// register a model's metric family.
  mutable obs::MetricsRegistry registry_;
  mutable std::mutex mu_;          ///< guards models_
  mutable std::map<std::string, Handles> models_;
};

}  // namespace dcnas::serve
