#pragma once
/// \file batcher.hpp
/// \brief Dynamic request batching: merges single-image requests into
/// batched NCHW tensors under a max-batch / max-queue-delay policy.
///
/// Producers call enqueue() and get a future for their single image's
/// output; consumers (server workers) call next_batch() and receive merged
/// (B,C,H,W) inputs plus the pending requests to answer. A batch is released
/// as soon as max_batch requests of one model are waiting, or when the
/// oldest waiting request has aged max_delay — whichever comes first — so
/// light traffic pays at most max_delay of extra latency while heavy
/// traffic amortizes the per-batch cost across full batches.
///
/// Backpressure is rejection, not buffering: once queue_capacity requests
/// are pending, enqueue() throws RejectedError instead of growing the queue
/// without bound.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/tensor/tensor.hpp"

namespace dcnas::serve {

/// Thrown on backpressure (pending queue full) and on enqueue after close().
class RejectedError : public Error {
 public:
  explicit RejectedError(const std::string& what) : Error(what) {}
};

/// Batching policy knobs.
struct BatchPolicy {
  std::int64_t max_batch = 8;  ///< requests merged per executor call (>= 1)
  std::chrono::microseconds max_delay{2000};  ///< max wait for a fuller batch
  std::size_t queue_capacity = 1024;  ///< pending bound across all models

  /// Throws InvalidArgument when values are out of range.
  void validate() const;
};

/// One admitted single-image request.
struct PendingRequest {
  std::string model;
  Tensor input;  ///< (C, H, W)
  std::promise<Tensor> promise;
  std::chrono::steady_clock::time_point admitted;
};

/// A released batch: requests share one model and image shape, in admission
/// order; input is the merged (B, C, H, W) tensor.
struct Batch {
  std::string model;
  Tensor input;
  std::vector<PendingRequest> requests;
  std::int64_t size() const {
    return static_cast<std::int64_t>(requests.size());
  }
};

/// Thread-safe multi-producer / multi-consumer batching queue with one
/// sub-queue per model (a batch never mixes models or image shapes).
class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy);

  /// Admits one image — (C,H,W), or (1,C,H,W) which is squeezed — and
  /// returns the future for its output. Throws RejectedError when the
  /// pending queue is full or the batcher is closed, InvalidArgument on a
  /// malformed input shape.
  std::future<Tensor> enqueue(const std::string& model, const Tensor& input);

  /// Blocks until a batch is due (full, aged out, or draining after
  /// close()); returns nullopt once closed and fully drained.
  std::optional<Batch> next_batch();

  /// Stops admissions and wakes all next_batch() waiters; already-pending
  /// requests remain poppable so consumers can drain without loss.
  void close();

  bool closed() const;

  /// Requests admitted but not yet handed to a consumer.
  std::size_t pending() const;

  const BatchPolicy& policy() const { return policy_; }

 private:
  using Queue = std::deque<PendingRequest>;

  /// The model queue whose head request is oldest (end() when all empty).
  std::map<std::string, Queue>::iterator oldest_queue_locked();
  Batch pop_batch_locked(std::map<std::string, Queue>::iterator it);

  BatchPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_pending_;
  std::map<std::string, Queue> queues_;
  std::size_t total_pending_ = 0;
  bool closed_ = false;
};

}  // namespace dcnas::serve
