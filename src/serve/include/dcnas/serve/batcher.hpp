#pragma once
/// \file batcher.hpp
/// \brief Dynamic request batching: merges single-image requests into
/// batched NCHW tensors under a max-batch / max-queue-delay policy, with
/// SLO-aware (deadline-tagged) admission.
///
/// Producers call enqueue() and get a future for their single image's
/// output; consumers (replica workers) call next_batch() and receive merged
/// (B,C,H,W) inputs plus the pending requests to answer. A batch is
/// released as soon as max_batch requests of one model are waiting, or when
/// the oldest waiting request has aged max_delay — whichever comes first —
/// so light traffic pays at most max_delay of extra latency while heavy
/// traffic amortizes the per-batch cost across full batches. *Any* full
/// queue flushes immediately, even while an older, sparser queue is still
/// inside its delay window: a full batch for model B must never starve
/// behind model A's aging head (the pre-PR-9 behavior).
///
/// Admission policy (in order, under one lock):
///   1. closed → RejectedError{kShutdown} — the server is gone, do not
///      retry.
///   2. pending < queue_capacity → admit.
///   3. queue full, but some pending request is already past its deadline →
///      shed the oldest such request (its future fails with
///      RejectedError{kShedOverload}) and admit the newcomer.
///   4. queue full, nothing sheddable → RejectedError{kQueueFull} — a
///      transient overload, retry later.
/// Consumers additionally shed requests whose deadline expires while they
/// queue (RejectedError{kDeadlineExpired}): executing a request that has
/// already missed its SLO only steals capacity from ones that can still
/// make theirs.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/tensor/tensor.hpp"

namespace dcnas::serve {

/// Why a request was refused or shed. Values double as the wire-protocol
/// status byte (see wire.hpp), so they are fixed: never renumber.
enum class RejectReason : std::uint8_t {
  kShutdown = 1,         ///< server shutting down — gone, do not retry
  kQueueFull = 2,        ///< overload, nothing sheddable — retry later
  kShedOverload = 3,     ///< past-deadline request shed to admit newer work
  kDeadlineExpired = 4,  ///< deadline passed while queued; never executed
};

const char* to_string(RejectReason reason);

/// Thrown on refused admission (enqueue) and delivered through the future
/// of a shed request. reason() distinguishes retry-later overload from
/// gone-for-good shutdown — clients and the wire protocol surface it.
class RejectedError : public Error {
 public:
  RejectedError(RejectReason reason, const std::string& what)
      : Error(what), reason_(reason) {}

  RejectReason reason() const { return reason_; }

  /// True for transient conditions a client may retry (everything except
  /// shutdown). A shed request's *payload* is gone either way; retryable
  /// means re-submitting is meaningful, not that the first copy survived.
  bool retryable() const { return reason_ != RejectReason::kShutdown; }

 private:
  RejectReason reason_;
};

/// Batching policy knobs.
struct BatchPolicy {
  std::int64_t max_batch = 8;  ///< requests merged per executor call (>= 1)
  std::chrono::microseconds max_delay{2000};  ///< max wait for a fuller batch
  std::size_t queue_capacity = 1024;  ///< pending bound across all models

  /// Throws InvalidArgument when values are out of range.
  void validate() const;
};

/// One admitted single-image request. deadline is the absolute SLO expiry
/// (time_point::max() when untagged): requests past it are shed, never run.
struct PendingRequest {
  std::string model;
  Tensor input;  ///< (C, H, W)
  std::promise<Tensor> promise;
  std::chrono::steady_clock::time_point admitted;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

/// A released batch: requests share one model and image shape, in admission
/// order; input is the merged (B, C, H, W) tensor.
struct Batch {
  std::string model;
  Tensor input;
  std::vector<PendingRequest> requests;
  std::int64_t size() const {
    return static_cast<std::int64_t>(requests.size());
  }
};

/// Thread-safe multi-producer / multi-consumer batching queue with one
/// sub-queue per model (a batch never mixes models or image shapes).
class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy);

  /// Admits one image — (C,H,W), or (1,C,H,W) which is squeezed — and
  /// returns the future for its output. \p deadline, when positive, tags
  /// the request with an SLO expiry of now + deadline; an expired request
  /// is shed (future fails with RejectedError) instead of executed. Throws
  /// RejectedError per the admission policy above, InvalidArgument on a
  /// malformed input shape.
  std::future<Tensor> enqueue(
      const std::string& model, const Tensor& input,
      std::chrono::microseconds deadline = std::chrono::microseconds(0));

  /// Blocks until a batch is due (full, aged out, or draining after
  /// close()); returns nullopt once closed and fully drained. Requests
  /// whose deadline expired while queued are shed here (their futures fail
  /// with RejectedError{kDeadlineExpired}) and never appear in a batch. A
  /// failure while merging the batch tensor (e.g. bad_alloc) is answered
  /// through the popped requests' futures and the consumer keeps draining —
  /// next_batch() itself only throws on internal invariant violations.
  std::optional<Batch> next_batch();

  /// Stops admissions and wakes all next_batch() waiters; already-pending
  /// requests remain poppable so consumers can drain without loss.
  void close();

  bool closed() const;

  /// Requests admitted but not yet handed to a consumer (or shed).
  std::size_t pending() const;

  const BatchPolicy& policy() const { return policy_; }

  /// Test seam: runs before every batch merge with the popped batch (e.g.
  /// to inject a bad_alloc that exercises the merge-failure drain path).
  /// Install before serving starts; not synchronized against next_batch().
  void set_merge_hook_for_testing(std::function<void(const Batch&)> hook) {
    merge_hook_ = std::move(hook);
  }

 private:
  using Queue = std::deque<PendingRequest>;
  using TimePoint = std::chrono::steady_clock::time_point;

  /// The queue to pop now or wait on: a *full* queue when one exists (the
  /// one with the oldest head, for fairness among full queues), otherwise
  /// the queue whose head request is oldest (end() when all empty).
  std::map<std::string, Queue>::iterator ripest_queue_locked();
  Batch pop_batch_locked(std::map<std::string, Queue>::iterator it);
  /// Moves every request whose deadline is <= now out of the queues into
  /// \p out (oldest first), erasing emptied queues.
  void take_expired_locked(TimePoint now, std::vector<PendingRequest>* out);
  /// Removes and returns the oldest pending request that is past its
  /// deadline at \p now (nullopt when none) — the overload-shed victim.
  std::optional<PendingRequest> take_oldest_expired_locked(TimePoint now);
  /// Earliest deadline tag across all pending requests (max() when none) —
  /// bounds consumer waits so expiry is shed promptly.
  TimePoint earliest_deadline_locked() const;

  BatchPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_pending_;
  std::map<std::string, Queue> queues_;
  std::size_t total_pending_ = 0;
  bool closed_ = false;
  std::function<void(const Batch&)> merge_hook_;
};

}  // namespace dcnas::serve
