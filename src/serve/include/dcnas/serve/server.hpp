#pragma once
/// \file server.hpp
/// \brief Concurrent inference server: registry -> dynamic batcher ->
/// worker threads -> per-model metrics.
///
/// submit() admits one image and returns a future; worker threads (a
/// dedicated dcnas::ThreadPool) pop merged batches, look the model up in
/// the ModelRegistry, run the (const, reentrant) GraphExecutor, and answer
/// each request's future with its row of the batched output. Overload is
/// surfaced as RejectedError from submit() — the queue never grows past
/// BatchPolicy.queue_capacity. shutdown() (also run by the destructor)
/// stops admissions, drains every in-flight request, and joins the workers,
/// so no accepted request is ever dropped.

#include <atomic>
#include <future>
#include <memory>
#include <string>

#include "dcnas/common/thread_pool.hpp"
#include "dcnas/serve/batcher.hpp"
#include "dcnas/serve/metrics.hpp"
#include "dcnas/serve/registry.hpp"

namespace dcnas::serve {

struct ServerOptions {
  std::size_t num_workers = 2;  ///< batch-executing threads (0 means 1)
  BatchPolicy batch;
  /// Serve from the registry's compiled plan when one is cached (fused
  /// kernels + static arena); false forces the op-by-op GraphExecutor —
  /// the differential baseline bench_serve compares against.
  bool use_plans = true;
};

class Server {
 public:
  Server(std::shared_ptr<ModelRegistry> registry, ServerOptions options = {});

  /// Drains and joins (shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits one image — (C,H,W) or (1,C,H,W) — for \p model. The future
  /// yields the model output for that image alone, shaped as a batch of one
  /// (e.g. (1, num_classes)); an unknown model or a failed run surfaces as
  /// an exception on the future. Throws RejectedError under overload or
  /// after shutdown.
  std::future<Tensor> submit(const std::string& model, const Tensor& input);

  /// Graceful stop: reject new work, drain all accepted requests, join
  /// workers. Idempotent.
  void shutdown();

  const ServingMetrics& metrics() const { return metrics_; }
  ModelRegistry& registry() { return *registry_; }
  std::size_t pending() const { return batcher_.pending(); }

  /// metrics().stats_report() convenience.
  std::string stats_report() const { return metrics_.stats_report(); }

 private:
  void worker_loop();
  void handle_batch(Batch&& batch);

  std::shared_ptr<ModelRegistry> registry_;
  ServerOptions options_;
  DynamicBatcher batcher_;
  ServingMetrics metrics_;
  std::atomic<bool> shut_down_{false};
  ThreadPool pool_;  ///< last member: destroyed (joined) first
};

}  // namespace dcnas::serve
