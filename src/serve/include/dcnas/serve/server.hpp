#pragma once
/// \file server.hpp
/// \brief Concurrent inference server: registry -> replica group (dynamic
/// batchers + worker pools) -> per-model metrics.
///
/// submit() admits one image and returns a future; the ReplicaGroup routes
/// it to one of num_replicas independent {batcher, pool} units
/// (power-of-two-choices on pending depth — see replica.hpp). Workers pop
/// merged batches, look the model up in the ModelRegistry, run the (const,
/// reentrant) compiled plan or GraphExecutor, and answer each request's
/// future with its row of the batched output. Overload surfaces as
/// RejectedError from submit() with a typed RejectReason — the queues never
/// grow past BatchPolicy.queue_capacity per replica; deadline-tagged
/// requests that miss their SLO are shed through their futures instead of
/// executed. shutdown() (also run by the destructor) stops admissions,
/// drains every in-flight request, and joins the workers, so no accepted
/// request is ever dropped.

#include <chrono>
#include <future>
#include <memory>
#include <string>

#include "dcnas/serve/batcher.hpp"
#include "dcnas/serve/metrics.hpp"
#include "dcnas/serve/registry.hpp"
#include "dcnas/serve/replica.hpp"

namespace dcnas::serve {

struct ServerOptions {
  std::size_t num_workers = 2;   ///< batch-executing threads *per replica*
  std::size_t num_replicas = 1;  ///< independent {batcher, pool} units
  BatchPolicy batch;             ///< per replica (capacity is per replica)
  /// Serve from the registry's compiled plan when one is cached (fused
  /// kernels + static arena); false forces the op-by-op GraphExecutor —
  /// the differential baseline bench_serve compares against.
  bool use_plans = true;
};

class Server {
 public:
  Server(std::shared_ptr<ModelRegistry> registry, ServerOptions options = {});

  /// Drains and joins (shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits one image — (C,H,W) or (1,C,H,W) — for \p model. The future
  /// yields the model output for that image alone, shaped as a batch of one
  /// (e.g. (1, num_classes)); an unknown model or a failed run surfaces as
  /// an exception on the future. Throws RejectedError (with reason()) under
  /// overload or after shutdown.
  std::future<Tensor> submit(const std::string& model, const Tensor& input);

  /// As above with an SLO deadline tag: the request must complete within
  /// \p deadline of admission or it is shed — its future fails with
  /// RejectedError{kDeadlineExpired} (expired while queued) or
  /// {kShedOverload} (evicted past-deadline to admit newer work). A
  /// non-positive deadline means untagged.
  std::future<Tensor> submit(const std::string& model, const Tensor& input,
                             std::chrono::microseconds deadline);

  /// Graceful stop: reject new work, drain all accepted requests, join
  /// workers. Idempotent.
  void shutdown();

  const ServingMetrics& metrics() const { return metrics_; }
  ModelRegistry& registry() { return *registry_; }
  std::size_t pending() const { return group_.pending(); }

  /// The routing layer, e.g. for per-replica pending depths.
  ReplicaGroup& replicas() { return group_; }
  const ReplicaGroup& replicas() const { return group_; }

  /// metrics().stats_report() convenience.
  std::string stats_report() const { return metrics_.stats_report(); }

 private:
  static ReplicaGroupOptions group_options(const ServerOptions& options);

  std::shared_ptr<ModelRegistry> registry_;
  ServingMetrics metrics_;
  ReplicaGroup group_;  ///< last member: shut down (joined) first
};

}  // namespace dcnas::serve
