#pragma once
/// \file replica.hpp
/// \brief Serving replicas: N independent {batcher, worker-pool} units
/// behind one routing front, scaling batch execution past a single queue.
///
/// A Replica is the unit the pre-PR-9 Server was in its entirety: one
/// DynamicBatcher feeding a dedicated ThreadPool of batch-executing
/// workers. A ReplicaGroup owns N of them and routes each request with
/// power-of-two-choices on pending queue depth — sample two distinct
/// replicas uniformly, enqueue on the shallower — which keeps the maximum
/// queue imbalance exponentially smaller than random routing at the cost of
/// two atomic reads per request (Mitzenmacher's "power of two choices").
///
/// Replicas hold **no model state**. Every batch execution takes a fresh
/// ModelRegistry::snapshot(), so a hot-swap (re-registration) propagates to
/// all replicas atomically at their next batch boundary: there is no
/// per-replica copy to update, and no window where two replicas serve
/// different versions longer than their in-flight batches.
///
/// Worker loops are noexcept drains: every failure — executor errors, merge
/// bad_alloc, snapshot misses — is answered through the affected requests'
/// futures, never leaked into the pool (where wait_idle() would rethrow it
/// from Server::~Server and terminate the process).

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "dcnas/common/thread_pool.hpp"
#include "dcnas/serve/batcher.hpp"
#include "dcnas/serve/metrics.hpp"
#include "dcnas/serve/registry.hpp"

namespace dcnas::serve {

/// One {batcher, pool} serving unit. Construction starts the workers;
/// destruction closes intake, drains accepted requests, and joins.
class Replica {
 public:
  /// \p metrics is shared across the owning group's replicas (ServingMetrics
  /// is thread-safe) and must outlive the replica.
  Replica(std::shared_ptr<ModelRegistry> registry, const BatchPolicy& policy,
          std::size_t num_workers, bool use_plans, ServingMetrics* metrics);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Admits one request into this replica's batcher (see
  /// DynamicBatcher::enqueue for the admission policy and deadline tag).
  std::future<Tensor> enqueue(
      const std::string& model, const Tensor& input,
      std::chrono::microseconds deadline = std::chrono::microseconds(0));

  /// Requests admitted to this replica but not yet executed or shed — the
  /// routing signal.
  std::size_t pending() const { return batcher_.pending(); }

  /// Stops admissions; pending requests stay drainable by the workers.
  void close() { batcher_.close(); }

  /// Blocks until the workers have drained every accepted request and gone
  /// idle. Call close() first or this never returns under open intake.
  void drain();

  /// Test seam: forwarded to the batcher (merge-failure injection).
  DynamicBatcher& batcher_for_testing() { return batcher_; }

 private:
  void worker_loop() noexcept;
  void handle_batch(Batch&& batch) noexcept;

  std::shared_ptr<ModelRegistry> registry_;
  bool use_plans_;
  ServingMetrics* metrics_;
  DynamicBatcher batcher_;
  ThreadPool pool_;  ///< last member: destroyed (joined) first
};

/// Replication + routing options, embedded in ServerOptions.
struct ReplicaGroupOptions {
  std::size_t num_replicas = 1;    ///< independent {batcher, pool} units
  std::size_t workers_per_replica = 2;
  BatchPolicy batch;               ///< per replica (capacity is per replica)
  bool use_plans = true;
};

/// N replicas behind power-of-two-choices routing. Thread-safe: submit()
/// may be called from any number of producer threads.
class ReplicaGroup {
 public:
  ReplicaGroup(std::shared_ptr<ModelRegistry> registry,
               const ReplicaGroupOptions& options, ServingMetrics* metrics);

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  /// Routes one request: two distinct replicas are sampled uniformly and
  /// the one with fewer pending requests admits it. When the chosen replica
  /// rejects with kQueueFull, the other choice is tried once before the
  /// rejection propagates — overflow spills to the second-best replica
  /// instead of surfacing while another queue still has room.
  std::future<Tensor> submit(
      const std::string& model, const Tensor& input,
      std::chrono::microseconds deadline = std::chrono::microseconds(0));

  /// Total pending across replicas (sampled per replica, not atomic).
  std::size_t pending() const;

  /// Per-replica pending depths, index-aligned with replica numbering.
  std::vector<std::size_t> pending_per_replica() const;

  /// Graceful stop: close every replica's intake, then drain them all.
  /// Idempotent.
  void shutdown();

  std::size_t size() const { return replicas_.size(); }

  Replica& replica_for_testing(std::size_t i) { return *replicas_[i]; }

 private:
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace dcnas::serve
