#include "dcnas/plan/compiler.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "dcnas/analysis/passes.hpp"
#include "dcnas/analysis/verifier.hpp"
#include "dcnas/common/error.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"
#include "dcnas/plan/executor.hpp"
#include "dcnas/quant/quantize.hpp"

namespace dcnas::plan {

namespace {

using graph::GraphNode;
using graph::KernelKind;
using graph::ModelGraph;
using graph::NodeState;
using graph::OpKind;

/// The trivial one-op-per-step grouping used when fusion is disabled.
std::vector<graph::FusedKernel> unfused_groups(const ModelGraph& g) {
  std::vector<graph::FusedKernel> kernels;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const GraphNode& n = g.nodes()[i];
    graph::FusedKernel k;
    k.name = n.name;
    k.in_shape = n.in_shape;
    k.out_shape = n.out_shape;
    k.attrs = n.attrs;
    k.flops = n.flops;
    k.params = n.params;
    k.nodes.push_back(static_cast<int>(i));
    switch (n.kind) {
      case OpKind::kInput:
      case OpKind::kOutput:
        continue;
      case OpKind::kConv: k.kind = KernelKind::kConv; break;
      case OpKind::kBatchNorm: k.kind = KernelKind::kBatchNorm; break;
      case OpKind::kRelu: k.kind = KernelKind::kRelu; break;
      case OpKind::kMaxPool: k.kind = KernelKind::kMaxPool; break;
      case OpKind::kGlobalAvgPool: k.kind = KernelKind::kGlobalAvgPool; break;
      case OpKind::kAdd: k.kind = KernelKind::kAdd; break;
      case OpKind::kLinear: k.kind = KernelKind::kLinear; break;
    }
    kernels.push_back(std::move(k));
  }
  return kernels;
}

bool is_conv_kind(KernelKind kind) {
  return kind == KernelKind::kConv || kind == KernelKind::kConvRelu ||
         kind == KernelKind::kConvBn || kind == KernelKind::kConvBnRelu;
}

/// Bakes BN running statistics into a conv weight/bias pair:
///   w'_oc = w_oc · γ_oc/√(σ²_oc+ε),  b'_oc = β_oc + (b_oc − μ_oc)·γ_oc/√(σ²_oc+ε)
void fold_bn_into(Tensor& weight, Tensor& bias, const NodeState& bn_state,
                  std::int64_t oc, std::int64_t row, float eps) {
  for (std::int64_t c = 0; c < oc; ++c) {
    const float inv_std = 1.0f / std::sqrt(bn_state.bn_var[c] + eps);
    const float scale = bn_state.bn_gamma[c] * inv_std;
    float* w_row = weight.data() + c * row;
    for (std::int64_t j = 0; j < row; ++j) w_row[j] *= scale;
    bias[c] = bn_state.bn_beta[c] + (bias[c] - bn_state.bn_mean[c]) * scale;
  }
}

/// Greedy best-fit free-list arena assignment over the step list: walk
/// steps in order, release slots whose last use has passed, and place each
/// step's output in the smallest free hole that fits (lowest offset on
/// ties), extending the arena top only when no hole fits. Deterministic.
void assign_arena(CompiledPlan& plan) {
  std::map<std::int64_t, std::int64_t> holes;  // offset -> size, coalesced
  std::int64_t top = 0;

  auto release = [&](std::int64_t offset, std::int64_t size) {
    auto [it, inserted] = holes.emplace(offset, size);
    DCNAS_ASSERT(inserted, "arena double free");
    // Coalesce with the next hole, then with the previous one.
    auto next = std::next(it);
    if (next != holes.end() && it->first + it->second == next->first) {
      it->second += next->second;
      holes.erase(next);
    }
    if (it != holes.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        holes.erase(it);
      }
    }
  };

  auto acquire = [&](std::int64_t size) -> std::int64_t {
    auto best = holes.end();
    for (auto it = holes.begin(); it != holes.end(); ++it) {
      if (it->second < size) continue;
      if (best == holes.end() || it->second < best->second) best = it;
    }
    if (best != holes.end()) {
      const std::int64_t offset = best->first;
      const std::int64_t remaining = best->second - size;
      holes.erase(best);
      if (remaining > 0) holes.emplace(offset + size, remaining);
      return offset;
    }
    const std::int64_t offset = top;
    top += size;
    return offset;
  };

  for (int t = 0; t < static_cast<int>(plan.steps.size()); ++t) {
    // Slots dead before this step free their bytes for this step's output;
    // slots read *by* this step stay resident (step kernels never write
    // over an operand they are still reading).
    for (std::size_t i = 0; i < plan.slots.size(); ++i) {
      ArenaSlot& s = plan.slots[i];
      if (s.def >= 0 && s.def < t && s.last_use == t - 1) {
        release(s.offset, s.size);
      }
    }
    ArenaSlot& out = plan.slots[static_cast<std::size_t>(plan.steps[
        static_cast<std::size_t>(t)].out)];
    out.offset = acquire(out.size);
  }
  plan.arena_size = top;
}

/// Post-compile int8 quantization (QUANTIZATION.md): calibrate activation
/// ranges by replaying the still-fp32 plan over the calibration batch, then
/// quantize every conv-family step's BN-folded weights per output channel
/// and attach the fused requantization scales. Slot ids are 1:1 with steps
/// (each step allocates a fresh slot), so a conv input's calibrated range
/// is simply its producer slot's observed absmax.
void quantize_plan(CompiledPlan& plan, const Tensor* calibration) {
  obs::Span span("quant", "quant.calibrate");
  static obs::Counter& quantized_steps =
      obs::MetricsRegistry::global().counter("plan.quant.steps.count");
  DCNAS_CHECK(calibration != nullptr,
              "int8 compilation requires a calibration batch");
  DCNAS_CHECK(calibration->ndim() == 4 && calibration->dim(0) >= 1 &&
                  calibration->dim(1) == plan.input_shape.c &&
                  calibration->dim(2) == plan.input_shape.h &&
                  calibration->dim(3) == plan.input_shape.w,
              "calibration batch shape does not match the model input");

  std::vector<float> slot_absmax(plan.steps.size(), 0.0f);
  const float input_absmax =
      quant::absmax(calibration->data(), calibration->numel());
  {
    PlanExecutor calib(plan);  // copies the fp32 plan; runs it once
    calib.run(*calibration,
              [&](const PlanStep& s, const float* data, std::int64_t n) {
                slot_absmax[static_cast<std::size_t>(s.out)] =
                    quant::absmax(data, n);
              });
  }

  for (PlanStep& step : plan.steps) {
    if (!is_conv_kind(step.kind)) continue;
    const std::int64_t oc = step.out_shape.c;
    const std::int64_t row = step.weight.numel() / oc;
    quant::QuantizedWeights qw =
        quant::quantize_weights(step.weight.data(), oc, row);
    const float in_absmax =
        step.args[0] == kInputSlot
            ? input_absmax
            : slot_absmax[static_cast<std::size_t>(step.args[0])];
    step.in_scale = quant::scale_for_absmax(in_absmax);
    step.weight_q = std::move(qw.q);
    step.weight_scale = std::move(qw.scale);
    step.requant_scale.resize(static_cast<std::size_t>(oc));
    for (std::int64_t c = 0; c < oc; ++c) {
      step.requant_scale[static_cast<std::size_t>(c)] =
          step.weight_scale[static_cast<std::size_t>(c)] * step.in_scale;
    }
    step.precision = graph::Precision::kInt8;
    ++plan.quantized_steps;
  }
  plan.precision = graph::Precision::kInt8;
  quantized_steps.add(plan.quantized_steps);
  if (span.armed()) {
    span.arg("steps", static_cast<std::int64_t>(plan.quantized_steps));
    span.arg("calib_rows", calibration->dim(0));
  }
}

}  // namespace

PlanCompiler::PlanCompiler(CompileOptions options) : options_(options) {}

CompiledPlan PlanCompiler::compile(const graph::GraphExecutor& exec) const {
  obs::Span span("plan", "plan.compile");
  static obs::Counter& compiles =
      obs::MetricsRegistry::global().counter("plan.compile.count");

  const ModelGraph& g = exec.graph();
  analysis::verify_or_throw(g, "PlanCompiler refuses graph");
  const auto& state = exec.node_states();
  const auto& identity = exec.identity_flags();
  const float eps = exec.bn_eps();

  // The fusion-legality pass gates folding: BN nodes it flags must stay
  // standalone. fuse_graph() applies the same single-consumer rules, so a
  // disagreement is an internal bug, checked below.
  std::vector<analysis::Diagnostic> diags;
  analysis::make_fusion_legality_pass()->run(g, diags);
  std::set<int> unfoldable_bn;
  for (const auto& d : diags) {
    if (d.rule == analysis::rules::kBnProducer) unfoldable_bn.insert(d.node);
  }

  const auto groups =
      options_.fuse ? graph::fuse_graph(g) : unfused_groups(g);

  CompiledPlan plan;
  plan.graph_nodes = static_cast<int>(g.size());
  plan.input_shape = g.nodes().front().out_shape;

  // node index -> slot id of the group that produces that node's value.
  std::map<int, int> node_slot;
  node_slot[0] = kInputSlot;

  for (const auto& group : groups) {
    DCNAS_ASSERT(!group.nodes.empty(), "fused group without provenance");
    const int primary = group.nodes.front();
    const int tail = group.nodes.back();
    const GraphNode& pn = g.node(primary);

    PlanStep step;
    step.kind = group.kind;
    step.name = group.name;
    step.node = primary;
    step.nodes = group.nodes;
    step.attrs = group.attrs;
    step.in_shape = pn.in_shape;
    step.out_shape = group.out_shape;
    for (int input : pn.inputs) {
      const auto it = node_slot.find(input);
      DCNAS_ASSERT(it != node_slot.end(),
                   "step '" + group.name + "' reads an unplanned node");
      step.args.push_back(it->second);
    }

    const NodeState& ps = state[static_cast<std::size_t>(primary)];
    if (is_conv_kind(group.kind)) {
      step.weight = ps.conv_weight;  // deep copy: the plan owns its weights
      const std::int64_t oc = pn.out_shape.c;
      const std::int64_t row =
          pn.in_shape.c * pn.attrs.kernel * pn.attrs.kernel;
      Tensor bias = ps.bias ? *ps.bias : Tensor({oc});
      bool has_bias = ps.bias.has_value();
      if (group.kind == KernelKind::kConvBn ||
          group.kind == KernelKind::kConvBnRelu) {
        const int bn = group.nodes[1];
        DCNAS_ASSERT(g.node(bn).kind == OpKind::kBatchNorm,
                     "conv-bn group without a BN node");
        DCNAS_ASSERT(unfoldable_bn.count(bn) == 0,
                     "fuse_graph folded a BN the legality pass refused");
        if (!identity[static_cast<std::size_t>(bn)]) {
          // Fold now; pre-folded executors already absorbed the BN.
          fold_bn_into(step.weight, bias,
                       state[static_cast<std::size_t>(bn)], oc, row, eps);
        }
        has_bias = true;
        ++plan.folded_batchnorms;
      }
      if (has_bias) step.bias = std::move(bias);
    } else if (group.kind == KernelKind::kLinear) {
      step.weight = ps.linear_weight;
      DCNAS_ASSERT(ps.bias.has_value(), "linear step without bias");
      step.bias = *ps.bias;
    } else if (group.kind == KernelKind::kBatchNorm) {
      if (identity[static_cast<std::size_t>(primary)]) {
        // Already folded into the producer conv: a pure passthrough.
        step.bn_scale = Tensor({pn.out_shape.c}, 1.0f);
        step.bn_shift = Tensor({pn.out_shape.c});
      } else {
        step.bn_scale = Tensor({pn.out_shape.c});
        step.bn_shift = Tensor({pn.out_shape.c});
        for (std::int64_t c = 0; c < pn.out_shape.c; ++c) {
          const float inv_std = 1.0f / std::sqrt(ps.bn_var[c] + eps);
          const float scale = ps.bn_gamma[c] * inv_std;
          step.bn_scale[c] = scale;
          step.bn_shift[c] = ps.bn_beta[c] - ps.bn_mean[c] * scale;
        }
      }
    }

    // Allocate the group's output slot and publish it under the tail node.
    ArenaSlot slot;
    slot.size = group.out_shape.numel();
    slot.def = static_cast<int>(plan.steps.size());
    slot.last_use = slot.def;
    const int slot_id = static_cast<int>(plan.slots.size());
    plan.slots.push_back(slot);
    step.out = slot_id;
    node_slot[tail] = slot_id;

    plan.steps.push_back(std::move(step));
  }

  // Liveness: a slot lives until the last step that reads it; the output
  // slot lives to the end of the plan.
  for (std::size_t t = 0; t < plan.steps.size(); ++t) {
    for (int arg : plan.steps[t].args) {
      if (arg == kInputSlot) continue;
      ArenaSlot& s = plan.slots[static_cast<std::size_t>(arg)];
      s.last_use = std::max(s.last_use, static_cast<int>(t));
    }
  }
  // Resolve the output node's source slot.
  for (const GraphNode& n : g.nodes()) {
    if (n.kind != OpKind::kOutput) continue;
    const auto it = node_slot.find(n.inputs.front());
    DCNAS_ASSERT(it != node_slot.end(), "plan output reads an unplanned node");
    plan.output_slot = it->second;
    plan.output_shape = n.out_shape;
  }
  if (plan.output_slot != kInputSlot) {
    ArenaSlot& out =
        plan.slots[static_cast<std::size_t>(plan.output_slot)];
    out.last_use = static_cast<int>(plan.steps.size());
  }

  assign_arena(plan);
  plan.check_arena();
  if (options_.precision == graph::Precision::kInt8) {
    quantize_plan(plan, options_.calibration);
  }
  if (const PlanSelfCheck check = plan_self_check()) {
    // Installed by dcnas_plan_analysis in debug builds (or explicitly by
    // tests): re-verifies the emitted plan against its source.
    check(plan, exec);
  }

  compiles.add(1);
  if (span.armed()) {
    span.arg("steps", static_cast<std::int64_t>(plan.steps.size()));
    span.arg("arena_floats", plan.arena_size);
  }
  return plan;
}

CompiledPlan compile_plan(const graph::GraphExecutor& exec,
                          CompileOptions options) {
  return PlanCompiler(options).compile(exec);
}

namespace {
std::atomic<PlanSelfCheck> g_plan_self_check{nullptr};
}  // namespace

void set_plan_self_check(PlanSelfCheck check) {
  g_plan_self_check.store(check, std::memory_order_release);
}

PlanSelfCheck plan_self_check() {
  return g_plan_self_check.load(std::memory_order_acquire);
}

}  // namespace dcnas::plan
