#include "dcnas/plan/executor.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "dcnas/common/error.hpp"
#include "dcnas/common/thread_pool.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"
#include "dcnas/quant/quantize.hpp"
#include "dcnas/tensor/gemm.hpp"
#include "dcnas/tensor/gemm_s8.hpp"

namespace dcnas::plan {

namespace {

using graph::KernelKind;

struct PlanMetrics {
  obs::Counter& runs;
  obs::Counter& allocs;
  obs::Counter& reuses;
  obs::Histogram& batch_rows;

  static PlanMetrics& get() {
    static PlanMetrics m{
        obs::MetricsRegistry::global().counter("plan.exec.run.count"),
        obs::MetricsRegistry::global().counter("plan.exec.allocs"),
        obs::MetricsRegistry::global().counter("plan.exec.arena_reuse.count"),
        obs::MetricsRegistry::global().histogram(
            "plan.exec.batch_rows", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})};
    return m;
  }
};

/// Bias + optional ReLU epilogue over one sample's (OC, OH·OW) block.
void conv_epilogue(float* o, std::int64_t oc, std::int64_t hw,
                   const float* bias, bool relu) {
  for (std::int64_t c = 0; c < oc; ++c) {
    const float b = bias ? bias[c] : 0.0f;
    float* row = o + c * hw;
    if (relu) {
      for (std::int64_t j = 0; j < hw; ++j) {
        row[j] = std::max(row[j] + b, 0.0f);
      }
    } else if (bias) {
      for (std::int64_t j = 0; j < hw; ++j) row[j] += b;
    }
  }
}

void maxpool_raw(const float* in, float* out, std::int64_t nc,
                 std::int64_t h, std::int64_t w, std::int64_t oh,
                 std::int64_t ow, const graph::OpAttrs& a) {
  parallel_for_chunked(0, nc, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t p = lo; p < hi; ++p) {
      const float* plane = in + p * h * w;
      float* out_plane = out + p * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < a.kernel; ++ky) {
            const std::int64_t iy = y * a.stride - a.padding + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < a.kernel; ++kx) {
              const std::int64_t ix = x * a.stride - a.padding + kx;
              if (ix < 0 || ix >= w) continue;
              best = std::max(best, plane[iy * w + ix]);
            }
          }
          out_plane[y * ow + x] = best;
        }
      }
    }
  });
}

}  // namespace

PlanExecutor::PlanExecutor(CompiledPlan plan) : plan_(std::move(plan)) {
  plan_.check_arena();
}

std::size_t PlanExecutor::pooled_arenas() const {
  MutexLock lock(pool_mu_);
  return pool_.size();
}

std::vector<float> PlanExecutor::acquire_arena(std::size_t needed) const {
  {
    MutexLock lock(pool_mu_);
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].capacity() < needed) continue;
      std::vector<float> buffer = std::move(pool_[i]);
      pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
      PlanMetrics::get().reuses.add(1);
      buffer.resize(needed);  // within capacity: no allocation
      return buffer;
    }
  }
  PlanMetrics::get().allocs.add(1);
  return std::vector<float>(needed);
}

void PlanExecutor::release_arena(std::vector<float>&& buffer) const {
  MutexLock lock(pool_mu_);
  pool_.push_back(std::move(buffer));
}

void PlanExecutor::run_step(const PlanStep& step, const float* in0,
                            const float* in1, float* out,
                            std::int64_t batch) const {
  const std::int64_t in_numel = step.in_shape.numel();
  const std::int64_t out_numel = step.out_shape.numel();
  switch (step.kind) {
    case KernelKind::kConv:
    case KernelKind::kConvRelu:
    case KernelKind::kConvBn:
    case KernelKind::kConvBnRelu: {
      if (step.precision == graph::Precision::kInt8) {
        run_conv_s8(step, in0, out, batch);
        return;
      }
      Im2colSpec spec;
      spec.channels = step.in_shape.c;
      spec.height = step.in_shape.h;
      spec.width = step.in_shape.w;
      spec.kernel = step.attrs.kernel;
      spec.stride = step.attrs.stride;
      spec.padding = step.attrs.padding;
      const std::int64_t oc = step.out_shape.c;
      const std::int64_t hw = step.out_shape.h * step.out_shape.w;
      const bool relu = step.kind == KernelKind::kConvRelu ||
                        step.kind == KernelKind::kConvBnRelu;
      const float* bias = step.bias ? step.bias->data() : nullptr;
      for (std::int64_t s = 0; s < batch; ++s) {
        float* o = out + s * out_numel;
        gemm_im2col(oc, 1.0f, step.weight.data(), in0 + s * in_numel, spec,
                    0.0f, o);
        if (bias || relu) conv_epilogue(o, oc, hw, bias, relu);
      }
      return;
    }
    case KernelKind::kMaxPool:
      maxpool_raw(in0, out, batch * step.in_shape.c, step.in_shape.h,
                  step.in_shape.w, step.out_shape.h, step.out_shape.w,
                  step.attrs);
      return;
    case KernelKind::kGlobalAvgPool: {
      const std::int64_t c_count = step.in_shape.c;
      const std::int64_t hw = step.in_shape.h * step.in_shape.w;
      const float inv = 1.0f / static_cast<float>(hw);
      for (std::int64_t p = 0; p < batch * c_count; ++p) {
        const float* plane = in0 + p * hw;
        float acc = 0.0f;
        for (std::int64_t j = 0; j < hw; ++j) acc += plane[j];
        out[p] = acc * inv;
      }
      return;
    }
    case KernelKind::kAdd:
    case KernelKind::kAddRelu: {
      const bool relu = step.kind == KernelKind::kAddRelu;
      const std::int64_t total = batch * out_numel;
      if (relu) {
        for (std::int64_t j = 0; j < total; ++j) {
          out[j] = std::max(in0[j] + in1[j], 0.0f);
        }
      } else {
        for (std::int64_t j = 0; j < total; ++j) out[j] = in0[j] + in1[j];
      }
      return;
    }
    case KernelKind::kRelu: {
      const std::int64_t total = batch * out_numel;
      for (std::int64_t j = 0; j < total; ++j) {
        out[j] = std::max(in0[j], 0.0f);
      }
      return;
    }
    case KernelKind::kBatchNorm: {
      const std::int64_t c_count = step.out_shape.c;
      const std::int64_t hw = step.out_shape.h * step.out_shape.w;
      for (std::int64_t s = 0; s < batch; ++s) {
        for (std::int64_t c = 0; c < c_count; ++c) {
          const float scale = step.bn_scale[c];
          const float shift = step.bn_shift[c];
          const float* xi = in0 + (s * c_count + c) * hw;
          float* oi = out + (s * c_count + c) * hw;
          for (std::int64_t j = 0; j < hw; ++j) oi[j] = xi[j] * scale + shift;
        }
      }
      return;
    }
    case KernelKind::kLinear: {
      const std::int64_t in_f = step.in_shape.numel();
      const std::int64_t out_f = step.out_shape.c;
      gemm_bt(batch, out_f, in_f, 1.0f, in0, step.weight.data(), 0.0f, out);
      for (std::int64_t s = 0; s < batch; ++s) {
        float* row = out + s * out_f;
        for (std::int64_t c = 0; c < out_f; ++c) row[c] += (*step.bias)[c];
      }
      return;
    }
  }
  throw InternalError("unhandled kernel kind in plan executor");
}

void PlanExecutor::run_conv_s8(const PlanStep& step, const float* in0,
                               float* out, std::int64_t batch) const {
  // Quantized conv: the input activations are quantized on the fly with the
  // calibrated per-tensor scale, the int8 GEMM accumulates exactly in
  // int32, and the fused epilogue requantizes straight to fp32 with the
  // per-channel scales (bias and ReLU folded in).
  thread_local std::vector<std::int8_t> t_q_in;
  const std::int64_t in_numel = step.in_shape.numel();
  const std::int64_t out_numel = step.out_shape.numel();
  if (t_q_in.size() < static_cast<std::size_t>(in_numel)) {
    t_q_in.resize(static_cast<std::size_t>(in_numel));
  }
  Im2colSpec spec;
  spec.channels = step.in_shape.c;
  spec.height = step.in_shape.h;
  spec.width = step.in_shape.w;
  spec.kernel = step.attrs.kernel;
  spec.stride = step.attrs.stride;
  spec.padding = step.attrs.padding;
  QuantEpilogue epi;
  epi.scale = step.requant_scale.data();
  epi.bias = step.bias ? step.bias->data() : nullptr;
  epi.relu = step.kind == KernelKind::kConvRelu ||
             step.kind == KernelKind::kConvBnRelu;
  const std::int64_t oc = step.out_shape.c;
  // 1x1/s1/p0 convolutions (projection shortcuts, and every 1x1 stem in the
  // wide lattice) have an identity im2col: the quantized input planes
  // (C x H·W) already *are* the B matrix. Skip the gather and hand the
  // planes straight to the packed GEMM — bitwise-identical output, since
  // both paths accumulate the same int32 products.
  const bool direct = step.attrs.kernel == 1 && step.attrs.stride == 1 &&
                      step.attrs.padding == 0;
  const std::int64_t hw = step.out_shape.h * step.out_shape.w;
  for (std::int64_t s = 0; s < batch; ++s) {
    quant::quantize_activations(in0 + s * in_numel, in_numel, step.in_scale,
                                t_q_in.data());
    if (direct) {
      gemm_s8(oc, hw, step.in_shape.c, step.weight_q.data(), t_q_in.data(),
              epi, out + s * out_numel);
    } else {
      gemm_s8_im2col(oc, step.weight_q.data(), t_q_in.data(), spec, epi,
                     out + s * out_numel);
    }
  }
}

Tensor PlanExecutor::run(const Tensor& input) const {
  return run(input, StepObserver());
}

Tensor PlanExecutor::run(const Tensor& input,
                         const StepObserver& observer) const {
  DCNAS_CHECK(input.ndim() == 4 && input.dim(1) == plan_.input_shape.c &&
                  input.dim(2) == plan_.input_shape.h &&
                  input.dim(3) == plan_.input_shape.w,
              "plan executor input shape mismatch");
  const std::int64_t batch = input.dim(0);
  DCNAS_CHECK(batch >= 1, "plan executor requires a non-empty batch");

  obs::Span span("plan", "plan.execute");
  if (span.armed()) span.arg("rows", batch);
  PlanMetrics& metrics = PlanMetrics::get();
  metrics.runs.add(1);
  metrics.batch_rows.observe(static_cast<double>(batch));

  std::vector<float> arena =
      acquire_arena(static_cast<std::size_t>(plan_.arena_size * batch));
  float* base = arena.data();
  auto slot_ptr = [&](int slot) -> float* {
    return base +
           plan_.slots[static_cast<std::size_t>(slot)].offset * batch;
  };

  for (const PlanStep& step : plan_.steps) {
    const float* in0 =
        step.args[0] == kInputSlot ? input.data() : slot_ptr(step.args[0]);
    const float* in1 =
        step.args.size() > 1
            ? (step.args[1] == kInputSlot ? input.data()
                                          : slot_ptr(step.args[1]))
            : nullptr;
    float* out = slot_ptr(step.out);
    run_step(step, in0, in1, out, batch);
    if (observer) observer(step, out, batch * step.out_shape.numel());
  }

  Shape out_shape;
  const graph::ActShape& os = plan_.output_shape;
  if (os.h == 1 && os.w == 1) {
    out_shape = {batch, os.c};  // classifier head: (B, classes)
  } else {
    out_shape = {batch, os.c, os.h, os.w};
  }
  Tensor result(out_shape);
  const float* src =
      plan_.output_slot == kInputSlot ? input.data()
                                      : slot_ptr(plan_.output_slot);
  std::memcpy(result.data(), src,
              static_cast<std::size_t>(result.numel()) * sizeof(float));
  release_arena(std::move(arena));
  return result;
}

}  // namespace dcnas::plan
