#include "dcnas/plan/plan.hpp"

#include <string>

#include "dcnas/common/error.hpp"

namespace dcnas::plan {

std::int64_t CompiledPlan::total_slot_size() const {
  std::int64_t sum = 0;
  for (const ArenaSlot& s : slots) sum += s.size;
  return sum;
}

void CompiledPlan::check_arena() const {
  const int num_steps = static_cast<int>(steps.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const ArenaSlot& s = slots[i];
    DCNAS_ASSERT(s.size > 0, "plan slot " + std::to_string(i) +
                                 " has non-positive size");
    DCNAS_ASSERT(s.offset >= 0 && s.offset + s.size <= arena_size,
                 "plan slot " + std::to_string(i) +
                     " exceeds the arena extent");
    DCNAS_ASSERT(s.def >= 0 && s.def < num_steps &&
                     s.last_use >= s.def,
                 "plan slot " + std::to_string(i) + " has bad liveness");
  }
  // Slots whose live ranges intersect must occupy disjoint byte ranges.
  for (std::size_t a = 0; a < slots.size(); ++a) {
    for (std::size_t b = a + 1; b < slots.size(); ++b) {
      const ArenaSlot& sa = slots[a];
      const ArenaSlot& sb = slots[b];
      const bool lives_overlap =
          sa.def <= sb.last_use && sb.def <= sa.last_use;
      const bool bytes_overlap =
          sa.offset < sb.offset + sb.size && sb.offset < sa.offset + sa.size;
      DCNAS_ASSERT(!(lives_overlap && bytes_overlap),
                   "plan slots " + std::to_string(a) + " and " +
                       std::to_string(b) +
                       " are simultaneously live but share arena bytes");
    }
  }
  for (const PlanStep& step : steps) {
    DCNAS_ASSERT(step.out >= 0 &&
                     step.out < static_cast<int>(slots.size()),
                 "plan step '" + step.name + "' writes an unknown slot");
    for (int arg : step.args) {
      DCNAS_ASSERT(arg == kInputSlot ||
                       (arg >= 0 && arg < static_cast<int>(slots.size())),
                   "plan step '" + step.name + "' reads an unknown slot");
    }
  }
  DCNAS_ASSERT(output_slot == kInputSlot ||
                   (output_slot >= 0 &&
                    output_slot < static_cast<int>(slots.size())),
               "plan output slot is unknown");
}

std::string CompiledPlan::to_string() const {
  std::string out = "CompiledPlan: " + std::to_string(steps.size()) +
                    " steps, arena " + std::to_string(arena_size) +
                    " floats/sample (slots sum " +
                    std::to_string(total_slot_size()) + "), " +
                    std::to_string(folded_batchnorms) + " BN folded\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    out += "  [" + std::to_string(i) + "] " +
           graph::kernel_kind_name(s.kind) + " '" + s.name + "' (";
    for (std::size_t a = 0; a < s.args.size(); ++a) {
      if (a > 0) out += ", ";
      if (s.args[a] == kInputSlot) {
        out += "input";
      } else {
        out += "s";
        out += std::to_string(s.args[a]);
      }
    }
    out += ") -> s" + std::to_string(s.out) + " @" +
           std::to_string(slots[static_cast<std::size_t>(s.out)].offset) +
           " " + s.in_shape.to_string() + " -> " + s.out_shape.to_string() +
           "\n";
  }
  return out;
}

}  // namespace dcnas::plan
