#pragma once
/// \file plan.hpp
/// \brief Compiled inference plans: the executable IR the serving hot path
/// runs instead of interpreting the op graph node by node.
///
/// A CompiledPlan is to the ModelGraph what a cudnn-frontend execution plan
/// is to its op graph: a frozen, topologically ordered list of *fused*
/// steps (Conv+BN+ReLU collapsed into one kernel with the BatchNorm baked
/// into the convolution weights at compile time) plus a static activation
/// arena. Every intermediate activation is assigned a fixed offset in one
/// reusable buffer by liveness analysis, so executing the plan performs
/// zero per-request activation allocations once an arena is warm.
///
/// Arena offsets are stored in *per-sample floats*: every activation in the
/// graph shares the batch dimension, so scaling each offset by the runtime
/// batch size preserves non-overlap and lets one plan serve any batch. The
/// compiler (compiler.hpp) produces plans; the executor (executor.hpp) runs
/// them; serve::ModelRegistry caches them next to the weights.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dcnas/graph/fusion.hpp"
#include "dcnas/graph/ir.hpp"
#include "dcnas/tensor/tensor.hpp"

namespace dcnas::plan {

/// Pseudo slot id meaning "the caller's input tensor" (not in the arena).
inline constexpr int kInputSlot = -1;

/// One fused, weight-bound, arena-addressed execution step.
struct PlanStep {
  graph::KernelKind kind = graph::KernelKind::kConv;
  std::string name;          ///< primary node's name (tracing/debugging)
  int node = -1;             ///< primary graph node index (provenance)
  /// Full fusion provenance: every source node this step absorbed, in
  /// execution order (nodes.front() == node). The PlanVerifier audits this
  /// list against the source graph — a plan whose provenance does not
  /// partition the graph into contiguous fusion-legal chains is refused at
  /// the serving trust boundary.
  std::vector<int> nodes;
  std::vector<int> args;     ///< input slot ids (kInputSlot = external input)
  int out = -1;              ///< output slot id
  graph::OpAttrs attrs;      ///< conv/pool geometry when applicable
  graph::ActShape in_shape;  ///< per-sample shape of args[0]
  graph::ActShape out_shape; ///< per-sample output shape

  /// Weights owned by the plan (deep copies — the plan outlives hot-swapped
  /// executors). Conv steps carry (OC, IC·k·k) with BN pre-folded; Linear
  /// steps carry (out, in).
  Tensor weight;
  std::optional<Tensor> bias;
  /// Standalone BatchNorm steps (fusion refused by the legality rules) are
  /// precomputed to per-channel scale/shift: y = x·scale[c] + shift[c].
  Tensor bn_scale, bn_shift;

  /// Post-training int8 payload (QUANTIZATION.md), populated only on
  /// conv-family steps of plans compiled with CompileOptions::precision ==
  /// kInt8. `weight` keeps the BN-folded fp32 reference so PlanVerifier can
  /// re-derive the whole payload bitwise ("plan.quant").
  graph::Precision precision = graph::Precision::kFp32;
  std::vector<std::int8_t> weight_q;  ///< quantized weights, weight.numel()
  std::vector<float> weight_scale;    ///< per-out-channel scales, size OC
  std::vector<float> requant_scale;   ///< weight_scale[oc] · in_scale
  float in_scale = 0.0f;              ///< calibrated per-tensor input scale
};

/// Arena placement and liveness of one intermediate activation.
struct ArenaSlot {
  std::int64_t offset = 0;  ///< per-sample floats from the arena base
  std::int64_t size = 0;    ///< per-sample floats
  int def = -1;             ///< step that writes the slot
  int last_use = -1;        ///< last step that reads it (inclusive)
};

/// The compiled artifact: steps + arena layout + provenance counters.
struct CompiledPlan {
  std::vector<PlanStep> steps;
  std::vector<ArenaSlot> slots;     ///< indexed by slot id
  std::int64_t arena_size = 0;      ///< per-sample floats, all slots packed
  int output_slot = kInputSlot;     ///< slot holding the final activation
  graph::ActShape input_shape;
  graph::ActShape output_shape;
  int folded_batchnorms = 0;        ///< BN nodes baked into conv weights
  int graph_nodes = 0;              ///< node count of the source graph
  /// kInt8 when the plan was compiled with a quantized conv path; the
  /// verifier insists a fp32 plan carries no quantized steps and that
  /// quantized_steps matches the steps' payloads.
  graph::Precision precision = graph::Precision::kFp32;
  int quantized_steps = 0;          ///< conv steps carrying int8 payloads

  /// Bytes one arena instance needs for the given batch size (fp32).
  std::int64_t arena_bytes(std::int64_t batch) const {
    return arena_size * batch * static_cast<std::int64_t>(sizeof(float));
  }

  /// Sum of slot sizes (per-sample floats) — compare against arena_size to
  /// see how much memory liveness-based reuse saved.
  std::int64_t total_slot_size() const;

  /// Internal-consistency check: every step's slots exist, every slot fits
  /// inside the arena, and no two slots with overlapping live ranges share
  /// bytes. Throws InternalError on violation. The compiler runs this as a
  /// post-condition; tests re-derive it independently.
  void check_arena() const;

  /// Multi-line human-readable dump: one line per step with kind, slot
  /// wiring, and arena offsets.
  std::string to_string() const;
};

}  // namespace dcnas::plan
