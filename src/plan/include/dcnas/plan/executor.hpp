#pragma once
/// \file executor.hpp
/// \brief Runs a CompiledPlan with zero steady-state allocations.
///
/// PlanExecutor is the serving twin of graph::GraphExecutor: run() is const
/// and reentrant, so one cached instance serves every worker thread. Each
/// invocation leases one arena buffer from an internal pool (a short
/// uncontended mutex), executes the step list writing every intermediate
/// activation at its compiled offset, copies the output slot into the
/// result tensor, and returns the buffer to the pool.
///
/// Allocation accounting: the `plan.exec.allocs` counter increments only
/// when a lease misses the pool and activation memory must actually be
/// allocated (first requests after start-up or after a larger batch than
/// ever seen). In steady state every lease is a pool hit
/// (`plan.exec.arena_reuse.count`) and the counter stays flat — bench_serve
/// gates on exactly that. The returned output Tensor is the API's
/// value-semantics copy-out and is not an arena allocation.

#include <cstdint>
#include <functional>
#include <vector>

#include "dcnas/common/thread_annotations.hpp"
#include "dcnas/plan/plan.hpp"
#include "dcnas/tensor/tensor.hpp"

namespace dcnas::plan {

class PlanExecutor {
 public:
  /// Takes ownership of the plan. Throws InternalError when the plan's
  /// arena layout is inconsistent (check_arena()).
  explicit PlanExecutor(CompiledPlan plan);

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  /// Batch inference (NCHW, any batch size >= 1). Thread-safe: any number
  /// of threads may run() one executor concurrently; each lease gets a
  /// private arena.
  Tensor run(const Tensor& input) const;

  /// Calibration hook: receives every step's freshly written output buffer
  /// (batch · out_numel floats) before the next step executes. Not a hot
  /// path — PlanCompiler uses it to collect per-activation absmax ranges
  /// for int8 quantization.
  using StepObserver =
      std::function<void(const PlanStep&, const float*, std::int64_t)>;

  /// run() variant that invokes \p observer after each step. Same
  /// thread-safety and pooling behavior as run().
  Tensor run(const Tensor& input, const StepObserver& observer) const;

  const CompiledPlan& plan() const { return plan_; }

  /// Arena buffers currently parked in the pool (test introspection).
  std::size_t pooled_arenas() const;

 private:
  std::vector<float> acquire_arena(std::size_t needed) const;
  void release_arena(std::vector<float>&& buffer) const;
  void run_step(const PlanStep& step, const float* in0, const float* in1,
                float* out, std::int64_t batch) const;
  void run_conv_s8(const PlanStep& step, const float* in0, float* out,
                   std::int64_t batch) const;

  CompiledPlan plan_;
  mutable Mutex pool_mu_;
  mutable std::vector<std::vector<float>> pool_ GUARDED_BY(pool_mu_);
};

}  // namespace dcnas::plan
