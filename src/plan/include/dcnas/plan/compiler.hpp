#pragma once
/// \file compiler.hpp
/// \brief Compiles a verified GraphExecutor into a CompiledPlan.
///
/// Compilation performs, in order:
///  1. Verification — the standard analysis::GraphVerifier pipeline must
///     pass (plans are built at trust boundaries, not on the hot path).
///  2. Fusion — graph::fuse_graph() groups Conv+BN(+ReLU) and Add+ReLU
///     chains along single-consumer edges; the analysis layer's
///     fusion-legality pass gates BN folding: any BatchNorm it flags
///     (producer is not a Conv) stays a standalone scale/shift step, and a
///     Conv whose output has multiple consumers never absorbs its BN.
///  3. Weight folding — for each fused Conv+BN, the BatchNorm running
///     statistics are baked into plan-owned copies of the conv weights:
///       w'_oc = w_oc · γ_oc / √(σ²_oc + ε)
///       b'_oc = β_oc + (b_oc − μ_oc) · γ_oc / √(σ²_oc + ε)
///     (b_oc = 0 unless the executor had already folded). Executors that
///     arrive pre-folded (identity BN nodes) are copied verbatim.
///  4. Arena assignment — liveness analysis over the step list assigns
///     every intermediate activation a fixed per-sample offset in one
///     arena via a greedy best-fit free-list sweep.

#include "dcnas/graph/executor.hpp"
#include "dcnas/plan/plan.hpp"

namespace dcnas::plan {

struct CompileOptions {
  /// When false, emits one step per graph op (no fusion, no BN folding).
  /// The unfused plan is the differential-testing baseline that isolates
  /// arena bugs from fusion bugs; production plans keep the default.
  bool fuse = true;

  /// kInt8 quantizes every conv-family step post-compile: weights per
  /// output channel (after BN folding, so requantization composes with the
  /// fold), activations per tensor with scales calibrated by running the
  /// fp32 plan over `calibration`. Pools, adds, BN and the Linear head stay
  /// fp32. See QUANTIZATION.md.
  graph::Precision precision = graph::Precision::kFp32;

  /// NCHW calibration batch, required (non-null, matching the model's
  /// input shape) when precision == kInt8; ignored otherwise. Borrowed for
  /// the duration of compile() only.
  const Tensor* calibration = nullptr;
};

class PlanCompiler {
 public:
  explicit PlanCompiler(CompileOptions options = {});

  /// Compiles \p exec's graph + weights. Throws InvalidArgument when the
  /// graph fails verification. The executor is only read; the plan owns
  /// deep copies of every tensor it needs.
  CompiledPlan compile(const graph::GraphExecutor& exec) const;

 private:
  CompileOptions options_;
};

/// One-shot convenience: PlanCompiler(options).compile(exec).
CompiledPlan compile_plan(const graph::GraphExecutor& exec,
                          CompileOptions options = {});

/// Post-compile self-check hook. When installed, PlanCompiler::compile
/// invokes it on every plan it emits (after its own check_arena()
/// post-condition) so the analysis layer can re-verify the artifact without
/// dcnas_plan linking against dcnas_plan_analysis (which would be a
/// dependency cycle). The analysis library installs
/// analysis::verify_plan_or_throw here via a static registrar in debug
/// builds; tests may install it explicitly in release builds. Thread-safe;
/// pass nullptr to uninstall.
using PlanSelfCheck = void (*)(const CompiledPlan&,
                               const graph::GraphExecutor&);
void set_plan_self_check(PlanSelfCheck check);
PlanSelfCheck plan_self_check();

}  // namespace dcnas::plan
