#include "dcnas/nas/search_space.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "dcnas/common/error.hpp"

namespace dcnas::nas {

namespace {
bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}
}  // namespace

nn::ResNetConfig TrialConfig::to_resnet_config() const {
  validate();
  nn::ResNetConfig cfg;
  cfg.in_channels = channels;
  cfg.conv1_kernel = kernel_size;
  cfg.conv1_stride = stride;
  cfg.conv1_padding = padding;
  cfg.with_pool = with_pool();
  cfg.pool_kernel = kernel_size_pool;
  cfg.pool_stride = stride_pool;
  cfg.init_width = initial_output_feature;
  cfg.num_classes = 2;
  return cfg;
}

TrialConfig TrialConfig::baseline(int channels, int batch) {
  TrialConfig c;
  c.channels = channels;
  c.batch = batch;
  c.validate();
  return c;
}

void TrialConfig::validate() const {
  DCNAS_CHECK(contains(SearchSpace::channel_options(), channels),
              "channels outside search space");
  DCNAS_CHECK(contains(SearchSpace::batch_options(), batch),
              "batch outside search space");
  DCNAS_CHECK(contains(SearchSpace::kernel_options(), kernel_size),
              "kernel_size outside search space");
  DCNAS_CHECK(contains(SearchSpace::stride_options(), stride),
              "stride outside search space");
  DCNAS_CHECK(contains(SearchSpace::padding_options(), padding),
              "padding outside search space");
  DCNAS_CHECK(contains(SearchSpace::pool_choice_options(), pool_choice),
              "pool_choice outside search space");
  DCNAS_CHECK(contains(SearchSpace::pool_kernel_options(), kernel_size_pool),
              "kernel_size_pool outside search space");
  DCNAS_CHECK(contains(SearchSpace::pool_stride_options(), stride_pool),
              "stride_pool outside search space");
  DCNAS_CHECK(contains(SearchSpace::width_options(), initial_output_feature),
              "initial_output_feature outside search space");
  DCNAS_CHECK(contains(SearchSpace::precision_options(), precision),
              "precision outside search space");
}

std::string TrialConfig::canonical_arch_key() const {
  std::ostringstream os;
  os << "ch" << channels << "_k" << kernel_size << "_s" << stride << "_p"
     << padding << "_w" << initial_output_feature;
  if (with_pool()) {
    os << "_pool" << kernel_size_pool << "x" << stride_pool;
  } else {
    os << "_nopool";
  }
  return os.str();
}

std::string TrialConfig::lattice_key() const {
  std::ostringstream os;
  os << canonical_arch_key() << "_b" << batch << "_pc" << pool_choice << "_pk"
     << kernel_size_pool << "_ps" << stride_pool;
  // Suffix only when quantized: every pre-existing fp32 key is unchanged,
  // so resume journals written before the precision axis stay valid.
  if (int8()) os << "_q8";
  return os.str();
}

std::uint64_t TrialConfig::encode() const {
  std::uint64_t code = 0;
  for (int v : {channels, batch, kernel_size, stride, padding, pool_choice,
                kernel_size_pool, stride_pool, initial_output_feature}) {
    code = code * 97 + static_cast<std::uint64_t>(v);
  }
  return code;
}

std::string TrialConfig::to_string() const {
  std::ostringstream os;
  os << "TrialConfig{ch=" << channels << ", b=" << batch
     << ", k=" << kernel_size << ", s=" << stride << ", p=" << padding
     << ", pool_choice=" << pool_choice << " (k=" << kernel_size_pool
     << ", s=" << stride_pool << "), w=" << initial_output_feature
     << (int8() ? ", int8" : "") << "}";
  return os.str();
}

const std::vector<int>& SearchSpace::channel_options() {
  static const std::vector<int> v = {5, 7};
  return v;
}
const std::vector<int>& SearchSpace::batch_options() {
  static const std::vector<int> v = {8, 16, 32};
  return v;
}
const std::vector<int>& SearchSpace::kernel_options() {
  static const std::vector<int> v = {3, 7};
  return v;
}
const std::vector<int>& SearchSpace::stride_options() {
  static const std::vector<int> v = {1, 2};
  return v;
}
const std::vector<int>& SearchSpace::padding_options() {
  static const std::vector<int> v = {1, 2, 3};
  return v;
}
const std::vector<int>& SearchSpace::pool_choice_options() {
  static const std::vector<int> v = {0, 1};
  return v;
}
const std::vector<int>& SearchSpace::pool_kernel_options() {
  static const std::vector<int> v = {2, 3};
  return v;
}
const std::vector<int>& SearchSpace::pool_stride_options() {
  static const std::vector<int> v = {1, 2};
  return v;
}
const std::vector<int>& SearchSpace::width_options() {
  static const std::vector<int> v = {32, 48, 64};
  return v;
}
const std::vector<int>& SearchSpace::precision_options() {
  static const std::vector<int> v = {0, 1};
  return v;
}

std::vector<TrialConfig> SearchSpace::enumerate_architectures(int channels,
                                                              int batch) {
  std::vector<TrialConfig> out;
  out.reserve(static_cast<std::size_t>(architectures_per_combo()));
  for (int k : kernel_options()) {
    for (int s : stride_options()) {
      for (int p : padding_options()) {
        for (int pc : pool_choice_options()) {
          for (int pk : pool_kernel_options()) {
            for (int ps : pool_stride_options()) {
              for (int w : width_options()) {
                TrialConfig c;
                c.channels = channels;
                c.batch = batch;
                c.kernel_size = k;
                c.stride = s;
                c.padding = p;
                c.pool_choice = pc;
                c.kernel_size_pool = pk;
                c.stride_pool = ps;
                c.initial_output_feature = w;
                c.validate();
                out.push_back(c);
              }
            }
          }
        }
      }
    }
  }
  DCNAS_ASSERT(static_cast<std::int64_t>(out.size()) ==
                   architectures_per_combo(),
               "architecture enumeration count mismatch");
  return out;
}

std::vector<TrialConfig> SearchSpace::enumerate_all() {
  std::vector<TrialConfig> out;
  out.reserve(static_cast<std::size_t>(lattice_size()));
  for (int ch : channel_options()) {
    for (int b : batch_options()) {
      const auto combo = enumerate_architectures(ch, b);
      out.insert(out.end(), combo.begin(), combo.end());
    }
  }
  return out;
}

std::int64_t SearchSpace::architectures_per_combo() {
  return static_cast<std::int64_t>(
      kernel_options().size() * stride_options().size() *
      padding_options().size() * pool_choice_options().size() *
      pool_kernel_options().size() * pool_stride_options().size() *
      width_options().size());
}

std::int64_t SearchSpace::lattice_size() {
  return architectures_per_combo() *
         static_cast<std::int64_t>(channel_options().size() *
                                   batch_options().size());
}

std::int64_t SearchSpace::unique_architectures_per_combo() {
  const auto combo = enumerate_architectures(5, 8);
  std::set<std::string> keys;
  for (const auto& c : combo) keys.insert(c.canonical_arch_key());
  return static_cast<std::int64_t>(keys.size());
}

TrialConfig SearchSpace::sample(Rng& rng, int channels, int batch) {
  auto pick = [&rng](const std::vector<int>& v) {
    return v[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  };
  TrialConfig c;
  c.channels = channels;
  c.batch = batch;
  c.kernel_size = pick(kernel_options());
  c.stride = pick(stride_options());
  c.padding = pick(padding_options());
  c.pool_choice = pick(pool_choice_options());
  c.kernel_size_pool = pick(pool_kernel_options());
  c.stride_pool = pick(pool_stride_options());
  c.initial_output_feature = pick(width_options());
  return c;
}

}  // namespace dcnas::nas
