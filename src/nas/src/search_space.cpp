#include "dcnas/nas/search_space.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "dcnas/common/error.hpp"
#include "dcnas/common/strings.hpp"

namespace dcnas::nas {

namespace {
bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}
}  // namespace

nn::ResNetConfig TrialConfig::to_resnet_config() const {
  validate_universe();
  nn::ResNetConfig cfg;
  cfg.in_channels = channels;
  cfg.conv1_kernel = kernel_size;
  cfg.conv1_stride = stride;
  cfg.conv1_padding = padding;
  cfg.with_pool = with_pool();
  cfg.pool_kernel = kernel_size_pool;
  cfg.pool_stride = stride_pool;
  cfg.init_width = initial_output_feature;
  cfg.blocks_per_stage = depth;
  cfg.num_classes = 2;
  return cfg;
}

TrialConfig TrialConfig::baseline(int channels, int batch) {
  TrialConfig c;
  c.channels = channels;
  c.batch = batch;
  c.validate();
  return c;
}

void TrialConfig::validate() const {
  DCNAS_CHECK(contains(SearchSpace::channel_options(), channels),
              "channels outside search space");
  DCNAS_CHECK(contains(SearchSpace::batch_options(), batch),
              "batch outside search space");
  DCNAS_CHECK(contains(SearchSpace::kernel_options(), kernel_size),
              "kernel_size outside search space");
  DCNAS_CHECK(contains(SearchSpace::stride_options(), stride),
              "stride outside search space");
  DCNAS_CHECK(contains(SearchSpace::padding_options(), padding),
              "padding outside search space");
  DCNAS_CHECK(contains(SearchSpace::pool_choice_options(), pool_choice),
              "pool_choice outside search space");
  DCNAS_CHECK(contains(SearchSpace::pool_kernel_options(), kernel_size_pool),
              "kernel_size_pool outside search space");
  DCNAS_CHECK(contains(SearchSpace::pool_stride_options(), stride_pool),
              "stride_pool outside search space");
  DCNAS_CHECK(contains(SearchSpace::width_options(), initial_output_feature),
              "initial_output_feature outside search space");
  DCNAS_CHECK(contains(SearchSpace::precision_options(), precision),
              "precision outside search space");
  DCNAS_CHECK(depth == 2, "depth outside the paper search space");
}

void TrialConfig::validate_universe() const {
  const SearchSpaceSpec u = SearchSpaceSpec::wide();
  DCNAS_CHECK(contains(u.channels, channels), "channels outside universe");
  DCNAS_CHECK(contains(u.batches, batch), "batch outside universe");
  DCNAS_CHECK(contains(u.kernels, kernel_size), "kernel_size outside universe");
  DCNAS_CHECK(contains(u.strides, stride), "stride outside universe");
  DCNAS_CHECK(contains(u.paddings, padding), "padding outside universe");
  DCNAS_CHECK(contains(u.pool_choices, pool_choice),
              "pool_choice outside universe");
  DCNAS_CHECK(contains(u.pool_kernels, kernel_size_pool),
              "kernel_size_pool outside universe");
  DCNAS_CHECK(contains(u.pool_strides, stride_pool),
              "stride_pool outside universe");
  DCNAS_CHECK(contains(u.widths, initial_output_feature),
              "initial_output_feature outside universe");
  DCNAS_CHECK(contains(u.precisions, precision), "precision outside universe");
  DCNAS_CHECK(contains(u.depths, depth), "depth outside universe");
}

std::string TrialConfig::canonical_arch_key() const {
  std::ostringstream os;
  os << "ch" << channels << "_k" << kernel_size << "_s" << stride << "_p"
     << padding << "_w" << initial_output_feature;
  if (with_pool()) {
    os << "_pool" << kernel_size_pool << "x" << stride_pool;
  } else {
    os << "_nopool";
  }
  // Suffix only off the default so every pre-depth-axis key is unchanged.
  if (depth != 2) os << "_d" << depth;
  return os.str();
}

std::string TrialConfig::lattice_key() const {
  std::ostringstream os;
  os << canonical_arch_key() << "_b" << batch << "_pc" << pool_choice << "_pk"
     << kernel_size_pool << "_ps" << stride_pool;
  // Suffix only when quantized: every pre-existing fp32 key is unchanged,
  // so resume journals written before the precision axis stay valid.
  if (int8()) os << "_q8";
  return os.str();
}

std::uint64_t TrialConfig::encode() const {
  std::uint64_t code = 0;
  for (int v : {channels, batch, kernel_size, stride, padding, pool_choice,
                kernel_size_pool, stride_pool, initial_output_feature}) {
    code = code * 97 + static_cast<std::uint64_t>(v);
  }
  // Folded in only off the default (like the key suffixes) so every
  // pre-depth-axis encoding — and the oracle noise keyed on it — is stable.
  if (depth != 2) {
    code = splitmix64(code ^ (0xd00dULL + static_cast<std::uint64_t>(depth)));
  }
  return code;
}

std::string TrialConfig::to_string() const {
  std::ostringstream os;
  os << "TrialConfig{ch=" << channels << ", b=" << batch
     << ", k=" << kernel_size << ", s=" << stride << ", p=" << padding
     << ", pool_choice=" << pool_choice << " (k=" << kernel_size_pool
     << ", s=" << stride_pool << "), w=" << initial_output_feature
     << ", d=" << depth << (int8() ? ", int8" : "") << "}";
  return os.str();
}

const std::vector<int>& SearchSpace::channel_options() {
  static const std::vector<int> v = {5, 7};
  return v;
}
const std::vector<int>& SearchSpace::batch_options() {
  static const std::vector<int> v = {8, 16, 32};
  return v;
}
const std::vector<int>& SearchSpace::kernel_options() {
  static const std::vector<int> v = {3, 7};
  return v;
}
const std::vector<int>& SearchSpace::stride_options() {
  static const std::vector<int> v = {1, 2};
  return v;
}
const std::vector<int>& SearchSpace::padding_options() {
  static const std::vector<int> v = {1, 2, 3};
  return v;
}
const std::vector<int>& SearchSpace::pool_choice_options() {
  static const std::vector<int> v = {0, 1};
  return v;
}
const std::vector<int>& SearchSpace::pool_kernel_options() {
  static const std::vector<int> v = {2, 3};
  return v;
}
const std::vector<int>& SearchSpace::pool_stride_options() {
  static const std::vector<int> v = {1, 2};
  return v;
}
const std::vector<int>& SearchSpace::width_options() {
  static const std::vector<int> v = {32, 48, 64};
  return v;
}
const std::vector<int>& SearchSpace::precision_options() {
  static const std::vector<int> v = {0, 1};
  return v;
}

std::vector<TrialConfig> SearchSpace::enumerate_architectures(int channels,
                                                              int batch) {
  std::vector<TrialConfig> out;
  out.reserve(static_cast<std::size_t>(architectures_per_combo()));
  for (int k : kernel_options()) {
    for (int s : stride_options()) {
      for (int p : padding_options()) {
        for (int pc : pool_choice_options()) {
          for (int pk : pool_kernel_options()) {
            for (int ps : pool_stride_options()) {
              for (int w : width_options()) {
                TrialConfig c;
                c.channels = channels;
                c.batch = batch;
                c.kernel_size = k;
                c.stride = s;
                c.padding = p;
                c.pool_choice = pc;
                c.kernel_size_pool = pk;
                c.stride_pool = ps;
                c.initial_output_feature = w;
                c.validate();
                out.push_back(c);
              }
            }
          }
        }
      }
    }
  }
  DCNAS_ASSERT(static_cast<std::int64_t>(out.size()) ==
                   architectures_per_combo(),
               "architecture enumeration count mismatch");
  return out;
}

std::vector<TrialConfig> SearchSpace::enumerate_all() {
  std::vector<TrialConfig> out;
  out.reserve(static_cast<std::size_t>(lattice_size()));
  for (int ch : channel_options()) {
    for (int b : batch_options()) {
      const auto combo = enumerate_architectures(ch, b);
      out.insert(out.end(), combo.begin(), combo.end());
    }
  }
  return out;
}

std::int64_t SearchSpace::architectures_per_combo() {
  return static_cast<std::int64_t>(
      kernel_options().size() * stride_options().size() *
      padding_options().size() * pool_choice_options().size() *
      pool_kernel_options().size() * pool_stride_options().size() *
      width_options().size());
}

std::int64_t SearchSpace::lattice_size() {
  return architectures_per_combo() *
         static_cast<std::int64_t>(channel_options().size() *
                                   batch_options().size());
}

std::int64_t SearchSpace::unique_architectures_per_combo() {
  const auto combo = enumerate_architectures(5, 8);
  std::set<std::string> keys;
  for (const auto& c : combo) keys.insert(c.canonical_arch_key());
  return static_cast<std::int64_t>(keys.size());
}

SearchSpaceSpec SearchSpaceSpec::paper() {
  SearchSpaceSpec s;
  s.channels = SearchSpace::channel_options();
  s.batches = SearchSpace::batch_options();
  s.kernels = SearchSpace::kernel_options();
  s.strides = SearchSpace::stride_options();
  s.paddings = SearchSpace::padding_options();
  s.pool_choices = SearchSpace::pool_choice_options();
  s.pool_kernels = SearchSpace::pool_kernel_options();
  s.pool_strides = SearchSpace::pool_stride_options();
  s.widths = SearchSpace::width_options();
  s.precisions = {0};
  s.depths = {2};
  return s;
}

SearchSpaceSpec SearchSpaceSpec::wide() {
  SearchSpaceSpec s;
  s.channels = {5, 7};
  s.batches = {4, 8, 16, 32, 64};
  s.kernels = {1, 3, 5, 7};
  s.strides = {1, 2};
  s.paddings = {0, 1, 2, 3};
  s.pool_choices = {0, 1};
  s.pool_kernels = {2, 3, 4};
  s.pool_strides = {1, 2};
  s.widths = {16, 24, 32, 48, 64, 96};
  s.precisions = {0, 1};
  s.depths = {1, 2, 3};
  return s;
}

std::int64_t SearchSpaceSpec::size() const {
  std::int64_t n = 1;
  for (const auto* dim :
       {&channels, &batches, &kernels, &strides, &paddings, &pool_choices,
        &pool_kernels, &pool_strides, &widths, &precisions, &depths}) {
    n *= static_cast<std::int64_t>(dim->size());
  }
  return n;
}

TrialConfig SearchSpaceSpec::at(std::int64_t i) const {
  DCNAS_CHECK(i >= 0 && i < size(), "lattice index out of range");
  TrialConfig c;
  // Mixed-radix decode, least-significant dimension last — the same nesting
  // order as SearchSpace::enumerate_all, so paper().at(i) reproduces the
  // historical enumeration exactly.
  int* fields[] = {&c.channels,        &c.batch,
                   &c.kernel_size,     &c.stride,
                   &c.padding,         &c.pool_choice,
                   &c.kernel_size_pool, &c.stride_pool,
                   &c.initial_output_feature, &c.precision, &c.depth};
  const std::vector<int>* dims[] = {
      &channels,     &batches,      &kernels, &strides,    &paddings,
      &pool_choices, &pool_kernels, &pool_strides, &widths, &precisions,
      &depths};
  for (int d = 10; d >= 0; --d) {
    const auto radix = static_cast<std::int64_t>(dims[d]->size());
    *fields[d] = (*dims[d])[static_cast<std::size_t>(i % radix)];
    i /= radix;
  }
  return c;
}

bool SearchSpaceSpec::contains(const TrialConfig& c) const {
  const auto in = [](const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  return in(channels, c.channels) && in(batches, c.batch) &&
         in(kernels, c.kernel_size) && in(strides, c.stride) &&
         in(paddings, c.padding) && in(pool_choices, c.pool_choice) &&
         in(pool_kernels, c.kernel_size_pool) &&
         in(pool_strides, c.stride_pool) &&
         in(widths, c.initial_output_feature) &&
         in(precisions, c.precision) && in(depths, c.depth);
}

std::string SearchSpaceSpec::describe() const {
  std::ostringstream os;
  os << "dcnas-lattice v1";
  const char* names[] = {"ch", "b",  "k", "s", "p", "pc",
                         "pk", "ps", "w", "q", "d"};
  const std::vector<int>* dims[] = {
      &channels,     &batches,      &kernels, &strides,    &paddings,
      &pool_choices, &pool_kernels, &pool_strides, &widths, &precisions,
      &depths};
  for (int d = 0; d < 11; ++d) {
    os << ';' << names[d] << '=';
    for (std::size_t j = 0; j < dims[d]->size(); ++j) {
      if (j) os << ',';
      os << (*dims[d])[j];
    }
  }
  os << ";n=" << size();
  return os.str();
}

std::uint64_t SearchSpaceSpec::fingerprint() const {
  return fnv1a64(describe());
}

std::vector<TrialConfig> SearchSpaceSpec::enumerate() const {
  const std::int64_t n = size();
  std::vector<TrialConfig> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    TrialConfig c = at(i);
    if (!c.geometry_ok()) continue;  // same skip rule as LatticeStream
    out.push_back(std::move(c));
  }
  return out;
}

void SearchSpaceSpec::validate() const {
  for (const auto* dim :
       {&channels, &batches, &kernels, &strides, &paddings, &pool_choices,
        &pool_kernels, &pool_strides, &widths, &precisions, &depths}) {
    DCNAS_CHECK(!dim->empty(), "search space dimension has no options");
  }
  // Every lattice corner must be universe-legal; checking the per-dimension
  // extremes is equivalent because validate_universe is per-field.
  at(0).validate_universe();
  at(size() - 1).validate_universe();
}

LatticeStream::LatticeStream(const SearchSpaceSpec& spec, std::int64_t start,
                             std::int64_t stride)
    : spec_(spec), next_index_(start), stride_(stride), size_(spec.size()) {
  DCNAS_CHECK(start >= 0, "lattice stream start must be >= 0");
  DCNAS_CHECK(stride >= 1, "lattice stream stride must be >= 1");
  spec_.validate();
}

std::optional<TrialConfig> LatticeStream::next() {
  // Unbuildable lattice points (see TrialConfig::geometry_ok) are skipped,
  // not yielded — the same rule enumerate() applies, so a streamed sweep
  // and a serial sweep evaluate exactly the same set.
  while (next_index_ < size_) {
    TrialConfig c = spec_.at(next_index_);
    next_index_ += stride_;
    if (c.geometry_ok()) return c;
  }
  return std::nullopt;
}

std::int64_t LatticeStream::total() const {
  // Upper bound: geometry-skipped points still count (progress accounting
  // only; exact filtering would cost a full lattice walk).
  const std::int64_t start =
      next_index_;  // call before consuming for the full count
  if (start >= size_) return 0;
  return (size_ - start + stride_ - 1) / stride_;
}

TrialConfig SearchSpace::sample(Rng& rng, int channels, int batch) {
  auto pick = [&rng](const std::vector<int>& v) {
    return v[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  };
  TrialConfig c;
  c.channels = channels;
  c.batch = batch;
  c.kernel_size = pick(kernel_options());
  c.stride = pick(stride_options());
  c.padding = pick(padding_options());
  c.pool_choice = pick(pool_choice_options());
  c.kernel_size_pool = pick(pool_kernel_options());
  c.stride_pool = pick(pool_stride_options());
  c.initial_output_feature = pick(width_options());
  return c;
}

}  // namespace dcnas::nas
