#include "dcnas/nas/experiment.hpp"

#include "dcnas/common/logging.hpp"
#include "dcnas/common/profiler.hpp"
#include "dcnas/common/strings.hpp"
#include "dcnas/graph/fusion.hpp"
#include "dcnas/graph/serialize.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::nas {

void TrialDatabase::add(TrialRecord record) {
  records_.push_back(std::move(record));
}

const TrialRecord& TrialDatabase::record(std::size_t i) const {
  DCNAS_CHECK(i < records_.size(), "trial index out of range");
  return records_[i];
}

const TrialRecord& TrialDatabase::best_accuracy() const {
  DCNAS_CHECK(!records_.empty(), "empty trial database");
  const TrialRecord* best = &records_.front();
  for (const auto& r : records_) {
    if (r.accuracy > best->accuracy) best = &r;
  }
  return *best;
}

namespace {
const std::vector<std::string>& csv_header() {
  static const std::vector<std::string> header = {
      "channels",     "batch",       "accuracy",
      "latency_ms",   "lat_std",     "memory_mb",
      "kernel_size",  "stride",      "padding",
      "pool_choice",  "kernel_size_pool", "stride_pool",
      "initial_output_feature", "precision", "depth", "fold_accuracies"};
  return header;
}
}  // namespace

CsvTable TrialDatabase::to_csv() const {
  CsvTable table(csv_header());
  for (const auto& r : records_) {
    std::vector<std::string> folds;
    folds.reserve(r.fold_accuracies.size());
    for (double f : r.fold_accuracies) folds.push_back(format_fixed(f, 4));
    table.add_row({std::to_string(r.config.channels),
                   std::to_string(r.config.batch), format_fixed(r.accuracy, 4),
                   format_fixed(r.latency_ms, 4), format_fixed(r.lat_std, 4),
                   format_fixed(r.memory_mb, 4),
                   std::to_string(r.config.kernel_size),
                   std::to_string(r.config.stride),
                   std::to_string(r.config.padding),
                   std::to_string(r.config.pool_choice),
                   std::to_string(r.config.kernel_size_pool),
                   std::to_string(r.config.stride_pool),
                   std::to_string(r.config.initial_output_feature),
                   std::to_string(r.config.precision),
                   std::to_string(r.config.depth), join(folds, ";")});
  }
  return table;
}

TrialDatabase TrialDatabase::from_csv(const CsvTable& table) {
  // Loads are a trust boundary (resume journals, hand-edited artifacts), so
  // every numeric cell parses locale-independently and failures name the
  // row/column instead of surfacing a bare std::stod exception. Fold lists
  // must be non-empty and the same length on every row: a truncated or
  // mixed-provenance file fails loudly here, not in downstream statistics.
  TrialDatabase db;
  std::size_t expected_folds = 0;
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    TrialRecord r;
    r.config.channels = static_cast<int>(table.at_int(i, "channels"));
    r.config.batch = static_cast<int>(table.at_int(i, "batch"));
    r.config.kernel_size = static_cast<int>(table.at_int(i, "kernel_size"));
    r.config.stride = static_cast<int>(table.at_int(i, "stride"));
    r.config.padding = static_cast<int>(table.at_int(i, "padding"));
    r.config.pool_choice = static_cast<int>(table.at_int(i, "pool_choice"));
    r.config.kernel_size_pool =
        static_cast<int>(table.at_int(i, "kernel_size_pool"));
    r.config.stride_pool = static_cast<int>(table.at_int(i, "stride_pool"));
    r.config.initial_output_feature =
        static_cast<int>(table.at_int(i, "initial_output_feature"));
    // Optional columns: journals written before the precision/depth axes
    // carry neither and load as fp32 ResNet-18.
    r.config.precision = table.has_column("precision")
                             ? static_cast<int>(table.at_int(i, "precision"))
                             : 0;
    r.config.depth = table.has_column("depth")
                         ? static_cast<int>(table.at_int(i, "depth"))
                         : 2;
    r.config.validate_universe();
    r.accuracy = table.at_double(i, "accuracy");
    r.latency_ms = table.at_double(i, "latency_ms");
    r.lat_std = table.at_double(i, "lat_std");
    r.memory_mb = table.at_double(i, "memory_mb");
    const auto parts = split(table.at(i, "fold_accuracies"), ';');
    for (std::size_t j = 0; j < parts.size(); ++j) {
      r.fold_accuracies.push_back(
          parse_double(parts[j], "trial CSV row " + std::to_string(i) +
                                     ", fold " + std::to_string(j)));
    }
    DCNAS_CHECK(!r.fold_accuracies.empty(),
                "trial CSV row " + std::to_string(i) + " has no fold "
                "accuracies");
    if (i == 0) expected_folds = r.fold_accuracies.size();
    DCNAS_CHECK(r.fold_accuracies.size() == expected_folds,
                "trial CSV row " + std::to_string(i) + " has " +
                    std::to_string(r.fold_accuracies.size()) +
                    " fold accuracies, expected " +
                    std::to_string(expected_folds));
    db.add(std::move(r));
  }
  return db;
}

void TrialDatabase::save(const std::string& path) const {
  to_csv().save(path);
}

TrialDatabase TrialDatabase::load(const std::string& path) {
  return from_csv(CsvTable::load(path));
}

Experiment::Experiment(Evaluator& evaluator, const latency::NnMeter& meter,
                       const ExperimentOptions& options)
    : evaluator_(evaluator), meter_(meter), options_(options) {}

TrialRecord Experiment::run_trial(const TrialConfig& config) const {
  obs::Span span("nas", "nas.trial.run");
  if (span.armed()) span.arg("config", config.lattice_key());
  const ScopedTimer trial_timer("experiment.trial");
  config.validate_universe();
  TrialRecord r;
  r.config = config;
  EvalResult eval;
  {
    const ScopedTimer timer("experiment.accuracy_eval");
    eval = evaluator_.evaluate(config);
  }
  r.fold_accuracies = eval.fold_accuracies;
  r.accuracy = eval.mean_accuracy;
  fill_hardware_objectives(r);
  return r;
}

void Experiment::fill_hardware_objectives(TrialRecord& r) const {
  DCNAS_TRACE_SPAN("nas", "nas.trial.hardware");
  const ScopedTimer hw_timer("experiment.hardware_objectives");
  // The hardware objectives depend only on (architecture, precision) —
  // never batch — so trials sharing an architecture reuse one prediction.
  // Memoized values are bit-identical to a fresh computation (same graph,
  // same meter), so the serial-vs-scheduled parity contract is unaffected.
  const std::string cache_key =
      r.config.canonical_arch_key() + (r.config.int8() ? "|q8" : "|f32");
  {
    std::lock_guard<std::mutex> lock(hw_cache_mu_);
    auto it = hw_cache_.find(cache_key);
    if (it != hw_cache_.end()) {
      r.latency_ms = it->second.latency_ms;
      r.lat_std = it->second.lat_std;
      r.per_device_ms = it->second.per_device_ms;
      r.memory_mb = it->second.memory_mb;
      return;
    }
  }
  const graph::ModelGraph g = graph::build_resnet_graph(
      r.config.to_resnet_config(), options_.deployment_input_hw);
  // Int8 trials are metered on the quantized serving artifact: conv kernels
  // marked int8 (predictors route them to the int8 forests / roof) and
  // model size counted at 1 byte per conv weight + per-channel scales.
  const graph::Precision p =
      r.config.int8() ? graph::Precision::kInt8 : graph::Precision::kFp32;
  auto kernels = graph::fuse_graph(g);
  if (r.config.int8()) graph::set_kernels_precision(kernels, p);
  const auto latency = meter_.predict_kernels(kernels);
  r.latency_ms = latency.mean_ms;
  r.lat_std = latency.std_ms;
  r.per_device_ms = latency.per_device_ms;
  r.memory_mb = graph::model_memory_mb(g, p);
  {
    std::lock_guard<std::mutex> lock(hw_cache_mu_);
    hw_cache_.emplace(cache_key, HwObjectives{r.latency_ms, r.lat_std,
                                              r.per_device_ms, r.memory_mb});
  }
}

TrialDatabase Experiment::run_all(
    const std::vector<TrialConfig>& configs) const {
  TrialDatabase db;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    db.add(run_trial(configs[i]));
    if (options_.log_progress && (i + 1) % 200 == 0) {
      DCNAS_LOG_INFO << "experiment progress: " << (i + 1) << "/"
                     << configs.size() << " trials";
    }
  }
  return db;
}

}  // namespace dcnas::nas
