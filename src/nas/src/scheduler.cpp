#include "dcnas/nas/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "dcnas/common/logging.hpp"
#include "dcnas/common/stats.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::nas {

namespace {

struct SchedulerMetrics {
  obs::Counter& completed;
  obs::Counter& resumed;
  obs::Counter& pruned;
  obs::Counter& folds_evaluated;
  obs::Counter& folds_skipped;
  obs::Gauge& inflight;
  obs::Gauge& queue_depth;
  obs::Gauge& trials_per_s;
  obs::Summary& trial_ms;

  static SchedulerMetrics& instance() {
    auto& reg = obs::MetricsRegistry::global();
    static SchedulerMetrics m{
        reg.counter("nas.sched.trial.completed.count"),
        reg.counter("nas.sched.trial.resumed.count"),
        reg.counter("nas.sched.trial.pruned.count"),
        reg.counter("nas.sched.fold.evaluated.count"),
        reg.counter("nas.sched.fold.skipped.count"),
        reg.gauge("nas.sched.trials.inflight"),
        reg.gauge("nas.sched.queue_depth"),
        reg.gauge("nas.sched.trials_per_s"),
        reg.summary("nas.sched.trial.latency_ms"),
    };
    return m;
  }
};

/// Running-mean curve of a completed trial: entry i = mean of folds 0..i.
std::vector<double> running_means(const std::vector<double>& fold_acc) {
  std::vector<double> curve;
  curve.reserve(fold_acc.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < fold_acc.size(); ++i) {
    sum += fold_acc[i];
    curve.push_back(sum / static_cast<double>(i + 1));
  }
  return curve;
}

}  // namespace

MedianStopRule::MedianStopRule(const MedianStopOptions& options)
    : options_(options) {
  DCNAS_CHECK(options_.warmup_trials >= 1,
              "median-stop warmup must be >= 1 trial");
  DCNAS_CHECK(options_.min_folds >= 1, "median-stop min_folds must be >= 1");
  DCNAS_CHECK(options_.margin >= 0.0, "median-stop margin must be >= 0");
}

void MedianStopRule::report_completed(
    const std::vector<double>& running_means) {
  if (running_means.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  curves_.push_back(running_means);
}

bool MedianStopRule::should_prune(double running_mean, int folds_done) const {
  if (!options_.enabled || folds_done < options_.min_folds) return false;
  std::vector<double> peers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (curves_.size() < static_cast<std::size_t>(options_.warmup_trials)) {
      return false;
    }
    const auto step = static_cast<std::size_t>(folds_done) - 1;
    peers.reserve(curves_.size());
    for (const auto& curve : curves_) {
      if (step < curve.size()) peers.push_back(curve[step]);
    }
  }
  if (peers.size() < static_cast<std::size_t>(options_.warmup_trials)) {
    return false;
  }
  // Median of the peers' running means at the same fold step.
  const std::size_t mid = peers.size() / 2;
  std::nth_element(peers.begin(), peers.begin() + static_cast<std::ptrdiff_t>(mid),
                   peers.end());
  double median = peers[mid];
  if (peers.size() % 2 == 0) {
    const double lower =
        *std::max_element(peers.begin(), peers.begin() + static_cast<std::ptrdiff_t>(mid));
    median = 0.5 * (median + lower);
  }
  return running_mean < median - options_.margin;
}

std::size_t MedianStopRule::completed_curves() const {
  std::lock_guard<std::mutex> lock(mu_);
  return curves_.size();
}

/// Book-keeping for one in-flight trial. fold_acc/fold_done are indexed by
/// fold; done_count/remaining_tasks/pruned/failed are guarded by state_mu.
struct TrialScheduler::TrialState {
  TrialConfig config;
  std::size_t index = 0;  ///< submission order — the merge key
  int folds = 0;

  std::mutex state_mu;
  std::vector<double> fold_acc;
  std::vector<char> fold_done;
  int done_count = 0;
  int remaining_tasks = 0;
  bool pruned = false;
  bool failed = false;

  /// Set at finalize; slots with keep==true merge into the database.
  bool keep = false;
  std::optional<TrialRecord> result;
  std::chrono::steady_clock::time_point admitted_at;
};

TrialScheduler::TrialScheduler(const Experiment& experiment,
                               const SchedulerOptions& options)
    : experiment_(experiment), options_(options), pool_(options.threads) {
  DCNAS_CHECK(options_.kernel_threads_per_trial >= 1,
              "kernel_threads_per_trial must be >= 1");
}

TrialScheduler::~TrialScheduler() = default;

void TrialScheduler::prepare_run() {
  stats_ = {};
  {
    std::lock_guard<std::mutex> lock(mu_);
    abort_ = false;
    first_error_ = nullptr;
    inflight_ = 0;
  }
  rule_ = std::make_unique<MedianStopRule>(options_.pruner);
  journal_.reset();
  if (!options_.journal_path.empty()) {
    journal_ = std::make_unique<TrialJournal>(options_.journal_path,
                                              options_.fsync_journal);
  }
  store_.reset();
  if (!options_.store_dir.empty()) {
    TrialStoreOptions sopt;
    sopt.lattice_fingerprint = options_.store_fingerprint;
    sopt.fsync_each = options_.fsync_store;
    store_ = std::make_unique<TrialStore>(options_.store_dir, sopt);
  }
}

bool TrialScheduler::resolve_from_history(TrialState* trial) {
  // Store first (the multi-process source of truth), then the journal.
  // Copy under journal_mu_: in streamed mode finalizes append (and thus
  // mutate the store's key index) concurrently with admission lookups.
  std::lock_guard<std::mutex> lock(journal_mu_);
  const std::string key = trial->config.lattice_key();
  const JournalEntry* entry = nullptr;
  if (store_ != nullptr) entry = store_->find(key);
  if (entry == nullptr && journal_ != nullptr) entry = journal_->find(key);
  if (entry == nullptr) return false;
  if (entry->status == TrialStatus::kOk &&
      entry->record.fold_accuracies.size() ==
          static_cast<std::size_t>(trial->folds)) {
    trial->keep = true;
    trial->result = entry->record;
    if (options_.pruner.enabled) {
      rule_->report_completed(running_means(entry->record.fold_accuracies));
    }
    return true;
  }
  // A pruned entry only resolves a run that also prunes; an
  // exact-reproduction (pruner-off) run re-evaluates it in full.
  return entry->status == TrialStatus::kPruned && options_.pruner.enabled;
}

void TrialScheduler::commit_entry(const JournalEntry& entry) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (store_ != nullptr) store_->append(entry);
  if (journal_ != nullptr) journal_->append(entry);
}

TrialDatabase TrialScheduler::run(const std::vector<TrialConfig>& configs) {
  obs::Span run_span("nas", "nas.sched.run");
  if (run_span.armed()) {
    run_span.arg("trials", static_cast<std::int64_t>(configs.size()));
    run_span.arg("threads", static_cast<std::int64_t>(pool_.size()));
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto& metrics = SchedulerMetrics::instance();

  prepare_run();

  const int folds = experiment_.evaluator().fold_count();
  DCNAS_CHECK(folds >= 1, "evaluator must report >= 1 fold");

  // Resolve every config against the store/journal history; the rest
  // become pending work.
  trials_.clear();
  trials_.reserve(configs.size());
  std::vector<TrialState*> pending;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    auto state = std::make_unique<TrialState>();
    state->config = configs[i];
    state->index = i;
    state->folds = folds;
    const bool resolved = resolve_from_history(state.get());
    if (resolved) {
      ++stats_.resumed;
      metrics.resumed.add(1);
    }
    trials_.push_back(std::move(state));
    if (!resolved) pending.push_back(trials_.back().get());
  }

  const std::size_t max_inflight =
      options_.max_inflight_trials != 0
          ? options_.max_inflight_trials
          : std::max<std::size_t>(1, 2 * pool_.size());

  // Admission loop: verify + fan the trial's folds out, holding at most
  // max_inflight trials in flight.
  std::size_t admitted = 0;
  TrialState* admitting = nullptr;  ///< trial being fanned out right now
  int submitted = 0;                ///< its fold tasks actually enqueued
  try {
    for (TrialState* trial : pending) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return inflight_ < max_inflight || abort_; });
        if (abort_) break;
        ++inflight_;
        metrics.inflight.set(static_cast<double>(inflight_));
      }
      ++admitted;
      metrics.queue_depth.set(static_cast<double>(pending.size() - admitted));
      admitting = trial;
      submitted = 0;
      // The same trust boundary the serial path runs (once per trial, not
      // per fold). Throws before any fold task is queued.
      verify_candidate(trial->config);
      trial->admitted_at = std::chrono::steady_clock::now();
      trial->fold_acc.assign(static_cast<std::size_t>(folds), 0.0);
      trial->fold_done.assign(static_cast<std::size_t>(folds), 0);
      trial->remaining_tasks = folds;
      ++stats_.scheduled;
      for (int f = 0; f < folds; ++f) {
        pool_.submit(std::function<void()>(
            [this, trial, f] { run_fold_task(trial, f); }));
        ++submitted;
      }
      admitting = nullptr;
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      abort_ = true;
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (submitted == 0) {
      // The trial never fanned out (verification threw): its admission
      // slot retires here.
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    } else {
      // Partial fan-out (a submit threw mid-loop): account for the fold
      // tasks that never enqueued so the already-queued ones — which see
      // abort_ and skip evaluation — can still drive the trial to
      // finalize and release its slot. If they all ran before this
      // adjustment, finalize here.
      bool finalize_now;
      {
        std::lock_guard<std::mutex> lock(admitting->state_mu);
        admitting->remaining_tasks -= admitting->folds - submitted;
        finalize_now = admitting->remaining_tasks == 0;
      }
      if (finalize_now) finalize_trial(admitting);
    }
    cv_.notify_all();
  }

  // Drain: every admitted trial finalizes (fold tasks of aborted runs skip
  // their evaluation but still run their bookkeeping).
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return inflight_ == 0; });
  }
  pool_.wait_idle();

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);

  // Deterministic merge: submission order, keep-slots only.
  TrialDatabase db;
  for (const auto& trial : trials_) {
    if (trial->keep) db.add(std::move(*trial->result));
  }
  trials_.clear();

  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  metrics.inflight.set(0.0);
  metrics.queue_depth.set(0.0);
  if (stats_.wall_seconds > 0.0) {
    metrics.trials_per_s.set(
        static_cast<double>(stats_.completed + stats_.pruned) /
        stats_.wall_seconds);
  }
  if (options_.log_progress) {
    DCNAS_LOG_INFO << "scheduler run: " << stats_.completed << " completed, "
                   << stats_.resumed << " resumed, " << stats_.pruned
                   << " pruned in " << stats_.wall_seconds << "s on "
                   << pool_.size() << " threads";
  }
  return db;
}

SchedulerStats TrialScheduler::run_streamed(CandidateStream& stream) {
  DCNAS_CHECK(!options_.store_dir.empty(),
              "run_streamed requires SchedulerOptions::store_dir — streamed "
              "results live in the store, not a returned database");
  obs::Span run_span("nas", "nas.sched.run_streamed");
  if (run_span.armed()) {
    run_span.arg("trials", static_cast<std::int64_t>(stream.total()));
    run_span.arg("threads", static_cast<std::int64_t>(pool_.size()));
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto& metrics = SchedulerMetrics::instance();

  prepare_run();

  const int folds = experiment_.evaluator().fold_count();
  DCNAS_CHECK(folds >= 1, "evaluator must report >= 1 fold");

  trials_.clear();
  live_.clear();
  streaming_ = true;

  const std::size_t max_inflight =
      options_.max_inflight_trials != 0
          ? options_.max_inflight_trials
          : std::max<std::size_t>(1, 2 * pool_.size());
  const std::int64_t total = stream.total();
  std::int64_t consumed = 0;

  TrialState* admitting = nullptr;  ///< trial being fanned out right now
  int submitted = 0;                ///< its fold tasks actually enqueued
  try {
    while (std::optional<TrialConfig> config = stream.next()) {
      ++consumed;
      TrialState* trial;
      {
        auto state = std::make_unique<TrialState>();
        state->config = *config;
        state->index = static_cast<std::size_t>(consumed - 1);
        state->folds = folds;
        if (resolve_from_history(state.get())) {
          ++stats_.resumed;
          metrics.resumed.add(1);
          continue;  // state frees here; the record is already on disk
        }
        trial = state.get();
        std::lock_guard<std::mutex> lock(mu_);
        live_.emplace(trial, std::move(state));
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return inflight_ < max_inflight || abort_; });
        if (abort_) {
          live_.erase(trial);
          break;
        }
        ++inflight_;
        metrics.inflight.set(static_cast<double>(inflight_));
      }
      metrics.queue_depth.set(static_cast<double>(total - consumed));
      admitting = trial;
      submitted = 0;
      verify_candidate(trial->config);
      trial->admitted_at = std::chrono::steady_clock::now();
      trial->fold_acc.assign(static_cast<std::size_t>(folds), 0.0);
      trial->fold_done.assign(static_cast<std::size_t>(folds), 0);
      trial->remaining_tasks = folds;
      ++stats_.scheduled;
      for (int f = 0; f < folds; ++f) {
        pool_.submit(std::function<void()>(
            [this, trial, f] { run_fold_task(trial, f); }));
        ++submitted;
      }
      admitting = nullptr;
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      abort_ = true;
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (admitting != nullptr && submitted == 0) {
      // Verification threw before any fold task enqueued: retire the slot
      // and the state here.
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      live_.erase(admitting);
    } else if (admitting != nullptr) {
      // Partial fan-out: same accounting as run() — the queued tasks see
      // abort_, skip evaluation, and drive the trial to finalize.
      bool finalize_now;
      {
        std::lock_guard<std::mutex> lock(admitting->state_mu);
        admitting->remaining_tasks -= admitting->folds - submitted;
        finalize_now = admitting->remaining_tasks == 0;
      }
      if (finalize_now) finalize_trial(admitting);
    }
    cv_.notify_all();
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return inflight_ == 0; });
  }
  pool_.wait_idle();
  streaming_ = false;

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = first_error_;
    live_.clear();  // abort may leave never-admitted states behind
  }
  if (error) std::rethrow_exception(error);

  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  metrics.inflight.set(0.0);
  metrics.queue_depth.set(0.0);
  if (stats_.wall_seconds > 0.0) {
    metrics.trials_per_s.set(
        static_cast<double>(stats_.completed + stats_.pruned) /
        stats_.wall_seconds);
  }
  if (options_.log_progress) {
    DCNAS_LOG_INFO << "scheduler streamed run: " << stats_.completed
                   << " completed, " << stats_.resumed << " resumed, "
                   << stats_.pruned << " pruned in " << stats_.wall_seconds
                   << "s on " << pool_.size() << " threads";
  }
  return stats_;
}

void TrialScheduler::run_fold_task(TrialState* trial, int fold) {
  bool skip;
  {
    std::lock_guard<std::mutex> lock(trial->state_mu);
    skip = trial->pruned || trial->failed;
  }
  if (!skip) {
    std::lock_guard<std::mutex> lock(mu_);
    skip = abort_;
  }

  double acc = 0.0;
  std::exception_ptr error;
  if (!skip) {
    obs::Span span("nas", "nas.sched.fold");
    if (span.armed()) {
      span.arg("trial", static_cast<std::int64_t>(trial->index));
      span.arg("fold", static_cast<std::int64_t>(fold));
    }
    try {
      // Budget the kernels this fold may fan out over; without it, T
      // concurrent trials x full GEMM fan-out would thrash the machine.
      KernelBudgetScope budget(options_.kernel_threads_per_trial);
      acc = experiment_.evaluator().evaluate_fold(trial->config, fold);
    } catch (...) {
      error = std::current_exception();
    }
  }

  if (error) {
    std::lock_guard<std::mutex> lock(mu_);
    abort_ = true;
    if (!first_error_) first_error_ = error;
  }

  bool finalize;
  {
    std::lock_guard<std::mutex> lock(trial->state_mu);
    if (error) {
      trial->failed = true;
    } else if (!skip) {
      trial->fold_acc[static_cast<std::size_t>(fold)] = acc;
      trial->fold_done[static_cast<std::size_t>(fold)] = 1;
      ++trial->done_count;
      if (options_.pruner.enabled && !trial->pruned &&
          trial->done_count < trial->folds) {
        double sum = 0.0;
        for (int f = 0; f < trial->folds; ++f) {
          if (trial->fold_done[static_cast<std::size_t>(f)]) {
            sum += trial->fold_acc[static_cast<std::size_t>(f)];
          }
        }
        const double mean_so_far =
            sum / static_cast<double>(trial->done_count);
        if (rule_->should_prune(mean_so_far, trial->done_count)) {
          trial->pruned = true;
        }
      }
    }
    finalize = (--trial->remaining_tasks == 0);
  }
  if (finalize) finalize_trial(trial);
}

void TrialScheduler::finalize_trial(TrialState* trial) {
  auto& metrics = SchedulerMetrics::instance();
  bool failed;
  bool pruned;
  int done;
  {
    std::lock_guard<std::mutex> lock(trial->state_mu);
    failed = trial->failed;
    pruned = trial->pruned;
    done = trial->done_count;
  }
  // An aborted run leaves fold tasks skipped on trials that neither failed
  // nor pruned themselves (done < folds). Those are incomplete: a kOk
  // journal entry would persist zero-filled accuracies that a resume run
  // trusts verbatim, so they get no journal entry and no keep-slot — the
  // next run re-evaluates them from scratch.
  const bool complete = !failed && !pruned && done == trial->folds;

  // Nothing below may escape: this runs on a pool worker, and run() blocks
  // on inflight_ reaching zero — an escaped exception (journal append on a
  // full disk, fill_hardware_objectives) would skip the bookkeeping and
  // hang the run forever instead of reporting the error.
  bool finalize_ok = true;
  try {
    if (!failed && pruned) {
      DCNAS_TRACE_SPAN("nas", "nas.sched.trial.pruned");
      if (journal_ != nullptr || store_ != nullptr) {
        JournalEntry entry;
        entry.status = TrialStatus::kPruned;
        entry.record.config = trial->config;
        for (int f = 0; f < trial->folds; ++f) {
          if (trial->fold_done[static_cast<std::size_t>(f)]) {
            entry.fold_indices.push_back(f);
            entry.record.fold_accuracies.push_back(
                trial->fold_acc[static_cast<std::size_t>(f)]);
          }
        }
        if (!entry.record.fold_accuracies.empty()) {
          entry.record.accuracy = mean(entry.record.fold_accuracies);
        }
        commit_entry(entry);
      }
    } else if (complete) {
      DCNAS_TRACE_SPAN("nas", "nas.sched.trial.finalize");
      TrialRecord record;
      record.config = trial->config;
      record.fold_accuracies = trial->fold_acc;
      record.accuracy = mean(record.fold_accuracies);
      experiment_.fill_hardware_objectives(record);
      if (options_.pruner.enabled) {
        rule_->report_completed(running_means(record.fold_accuracies));
      }
      if (journal_ != nullptr || store_ != nullptr) {
        JournalEntry entry;
        entry.status = TrialStatus::kOk;
        entry.record = record;
        for (int f = 0; f < trial->folds; ++f) entry.fold_indices.push_back(f);
        commit_entry(entry);
      }
      metrics.trial_ms.observe(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - trial->admitted_at)
              .count());
      trial->result = std::move(record);
      trial->keep = true;
    }
  } catch (...) {
    finalize_ok = false;
    std::lock_guard<std::mutex> lock(mu_);
    abort_ = true;
    if (!first_error_) first_error_ = std::current_exception();
  }

  std::size_t finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finalize_ok && ((!failed && pruned) || complete)) {
      if (pruned) {
        ++stats_.pruned;
        stats_.folds_skipped +=
            static_cast<std::size_t>(trial->folds - done);
        metrics.pruned.add(1);
        metrics.folds_skipped.add(trial->folds - done);
      } else {
        ++stats_.completed;
        metrics.completed.add(1);
      }
      stats_.folds_evaluated += static_cast<std::size_t>(done);
      metrics.folds_evaluated.add(done);
    }
    --inflight_;
    metrics.inflight.set(static_cast<double>(inflight_));
    finished = stats_.completed + stats_.pruned;
  }
  cv_.notify_all();
  if (options_.log_progress && finished % 200 == 0 && finished > 0) {
    DCNAS_LOG_INFO << "scheduler progress: " << finished
                   << " trials finished";
  }
  if (streaming_) {
    // Streamed trials retire here: the record is in the store, nothing
    // merges later, and this task is provably the last to touch the state
    // (remaining_tasks hit zero above). Without this, a 10^5-point sweep
    // would accumulate one TrialState per lattice point.
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(trial);
  }
}

}  // namespace dcnas::nas
