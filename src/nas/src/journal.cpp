#include "dcnas/nas/journal.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "dcnas/common/logging.hpp"
#include "dcnas/common/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define DCNAS_JOURNAL_HAS_FSYNC 1
#else
#define DCNAS_JOURNAL_HAS_FSYNC 0
#endif

namespace dcnas::nas {

namespace {

constexpr const char* kMagic = "dcnas-trial-journal v1";
constexpr const char* kLineTag = "J1";

std::string status_token(TrialStatus status) {
  return status == TrialStatus::kOk ? "ok" : "pruned";
}

std::optional<TrialStatus> parse_status(const std::string& token) {
  if (token == "ok") return TrialStatus::kOk;
  if (token == "pruned") return TrialStatus::kPruned;
  return std::nullopt;
}

}  // namespace

std::string TrialJournal::encode_line(const JournalEntry& entry) {
  const TrialRecord& r = entry.record;
  DCNAS_CHECK(entry.fold_indices.size() == r.fold_accuracies.size(),
              "journal entry fold indices/accuracies size mismatch");
  std::vector<std::string> folds;
  folds.reserve(r.fold_accuracies.size());
  for (std::size_t i = 0; i < r.fold_accuracies.size(); ++i) {
    folds.push_back(std::to_string(entry.fold_indices[i]) + ":" +
                    format_double_roundtrip(r.fold_accuracies[i]));
  }
  std::vector<std::string> devices;
  devices.reserve(r.per_device_ms.size());
  for (const auto& [device, ms] : r.per_device_ms) {
    devices.push_back(device + "=" + format_double_roundtrip(ms));
  }
  std::ostringstream os;
  os << kLineTag << ',' << status_token(entry.status) << ','
     << r.config.lattice_key() << ',' << r.config.channels << ','
     << r.config.batch << ',' << r.config.kernel_size << ','
     << r.config.stride << ',' << r.config.padding << ','
     << r.config.pool_choice << ',' << r.config.kernel_size_pool << ','
     << r.config.stride_pool << ',' << r.config.initial_output_feature << ','
     << format_double_roundtrip(r.accuracy) << ','
     << format_double_roundtrip(r.latency_ms) << ','
     << format_double_roundtrip(r.lat_std) << ','
     << format_double_roundtrip(r.memory_mb) << ',' << join(folds, ";") << ','
     << join(devices, ";") << ',';
  std::string line = os.str();
  char crc[17];
  std::snprintf(crc, sizeof(crc), "%016llx",
                static_cast<unsigned long long>(fnv1a64(line)));
  line += crc;
  return line;
}

std::optional<JournalEntry> TrialJournal::decode_line(const std::string& line) {
  const auto fields = split(line, ',');
  if (fields.size() != 19 || fields[0] != kLineTag) return std::nullopt;
  // Checksum covers everything up to and including the comma before it.
  const std::size_t crc_pos = line.rfind(',');
  const std::string stored_crc = line.substr(crc_pos + 1);
  char expect[17];
  std::snprintf(expect, sizeof(expect), "%016llx",
                static_cast<unsigned long long>(
                    fnv1a64(std::string_view(line).substr(0, crc_pos + 1))));
  if (stored_crc != expect) return std::nullopt;

  try {
    JournalEntry entry;
    const auto status = parse_status(fields[1]);
    if (!status) return std::nullopt;
    entry.status = *status;
    TrialRecord& r = entry.record;
    const char* ctx = "journal line";
    r.config.channels = static_cast<int>(parse_int(fields[3], ctx));
    r.config.batch = static_cast<int>(parse_int(fields[4], ctx));
    r.config.kernel_size = static_cast<int>(parse_int(fields[5], ctx));
    r.config.stride = static_cast<int>(parse_int(fields[6], ctx));
    r.config.padding = static_cast<int>(parse_int(fields[7], ctx));
    r.config.pool_choice = static_cast<int>(parse_int(fields[8], ctx));
    r.config.kernel_size_pool = static_cast<int>(parse_int(fields[9], ctx));
    r.config.stride_pool = static_cast<int>(parse_int(fields[10], ctx));
    r.config.initial_output_feature =
        static_cast<int>(parse_int(fields[11], ctx));
    r.config.validate();
    if (r.config.lattice_key() != fields[2]) return std::nullopt;
    r.accuracy = parse_double(fields[12], ctx);
    r.latency_ms = parse_double(fields[13], ctx);
    r.lat_std = parse_double(fields[14], ctx);
    r.memory_mb = parse_double(fields[15], ctx);
    if (!fields[16].empty()) {
      for (const auto& part : split(fields[16], ';')) {
        const auto colon = part.find(':');
        if (colon == std::string::npos) return std::nullopt;
        entry.fold_indices.push_back(
            static_cast<int>(parse_int(part.substr(0, colon), ctx)));
        r.fold_accuracies.push_back(parse_double(part.substr(colon + 1), ctx));
      }
    }
    if (!fields[17].empty()) {
      for (const auto& part : split(fields[17], ';')) {
        const auto eq = part.rfind('=');
        if (eq == std::string::npos) return std::nullopt;
        r.per_device_ms.emplace_back(part.substr(0, eq),
                                     parse_double(part.substr(eq + 1), ctx));
      }
    }
    return entry;
  } catch (const Error&) {
    return std::nullopt;
  }
}

TrialJournal::TrialJournal(std::string path, bool fsync_each)
    : path_(std::move(path)), fsync_each_(fsync_each) {
  DCNAS_CHECK(!path_.empty(), "journal path must not be empty");

  // Replay: read the existing file (if any) and find the longest valid
  // prefix — magic header plus whole, checksum-passing lines.
  std::size_t valid_bytes = 0;
  bool existing = false;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in.good()) {
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      if (!text.empty()) {
        existing = true;
        const std::size_t magic_end = text.find('\n');
        DCNAS_CHECK(magic_end != std::string::npos &&
                        text.substr(0, magic_end) == kMagic,
                    "not a dcnas trial journal: " + path_);
        std::size_t pos = magic_end + 1;
        valid_bytes = pos;
        while (pos < text.size()) {
          const std::size_t eol = text.find('\n', pos);
          if (eol == std::string::npos) break;  // torn tail: no newline
          const std::string line = text.substr(pos, eol - pos);
          auto entry = decode_line(line);
          if (!entry) break;  // torn or corrupt line: drop it and the rest
          entries_[entry->record.config.lattice_key()] = std::move(*entry);
          pos = eol + 1;
          valid_bytes = pos;
        }
        replayed_ = entries_.size();
      }
    }
  }

  if (existing) {
    // Drop any torn tail before appending, so damage never sits mid-file.
    // Must happen on every platform: appending onto a torn fragment merges
    // it with the first new entry, whose checksum then fails on replay and
    // takes every later entry down with it.
    std::error_code ec;
    std::filesystem::resize_file(path_, valid_bytes, ec);
    DCNAS_CHECK(!ec,
                "cannot truncate journal " + path_ + ": " + ec.message());
  }

  file_ = std::fopen(path_.c_str(), existing ? "ab" : "wb");
  DCNAS_CHECK(file_ != nullptr, "cannot open journal " + path_);
  if (!existing) {
    std::fprintf(file_, "%s\n", kMagic);
    std::fflush(file_);
  }
}

TrialJournal::~TrialJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

const JournalEntry* TrialJournal::find(const std::string& lattice_key) const {
  const auto it = entries_.find(lattice_key);
  return it == entries_.end() ? nullptr : &it->second;
}

void TrialJournal::append(const JournalEntry& entry) {
  const std::string line = encode_line(entry);
  const std::size_t written =
      std::fwrite(line.data(), 1, line.size(), file_);
  DCNAS_CHECK(written == line.size() && std::fputc('\n', file_) == '\n',
              "journal write failed: " + path_);
  DCNAS_CHECK(std::fflush(file_) == 0, "journal flush failed: " + path_);
#if DCNAS_JOURNAL_HAS_FSYNC
  if (fsync_each_) {
    DCNAS_CHECK(::fsync(fileno(file_)) == 0,
                "journal fsync failed: " + path_);
  }
#endif
  entries_[entry.record.config.lattice_key()] = entry;
}

}  // namespace dcnas::nas
