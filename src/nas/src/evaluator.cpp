#include "dcnas/nas/evaluator.hpp"

#include <mutex>
#include <unordered_set>

#include "dcnas/analysis/verifier.hpp"
#include "dcnas/common/stats.hpp"
#include "dcnas/geodata/kfold.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/nn/trainer.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"

namespace dcnas::nas {

void verify_candidate(const TrialConfig& config) {
  obs::Span span("nas", "nas.candidate.verify");
  if (span.armed()) span.arg("config", config.lattice_key());
  config.validate_universe();
  // Verification depends only on the architecture (batch and precision do
  // not change the built graph), so successes are memoized per canonical
  // key: a wide-lattice sweep shares each architecture across dozens of
  // (batch, precision) lattice points and verifies it once. Failures throw
  // before insertion, so they are never cached. Bounded so an adversarial
  // stream of unique architectures cannot grow the set without limit.
  static std::mutex mu;
  static std::unordered_set<std::string> verified_archs;
  constexpr std::size_t kMaxCached = 1 << 20;
  const std::string arch_key = config.canonical_arch_key();
  {
    std::lock_guard<std::mutex> lock(mu);
    if (verified_archs.count(arch_key) != 0) return;
  }
  const graph::ModelGraph g =
      graph::build_resnet_graph(config.to_resnet_config());
  analysis::verify_or_throw(g, "NAS candidate " + config.lattice_key());
  static obs::Counter& verified =
      obs::MetricsRegistry::global().counter("nas.candidate.verified.count");
  verified.add(1);
  {
    std::lock_guard<std::mutex> lock(mu);
    if (verified_archs.size() >= kMaxCached) verified_archs.clear();
    verified_archs.insert(arch_key);
  }
}

OracleEvaluator::OracleEvaluator(const OracleOptions& options)
    : oracle_(options) {}

namespace {

void count_trial_evaluated() {
  static obs::Counter& evaluated =
      obs::MetricsRegistry::global().counter("nas.trial.evaluated.count");
  evaluated.add(1);
}

}  // namespace

EvalResult OracleEvaluator::evaluate(const TrialConfig& config) {
  DCNAS_TRACE_SPAN("nas", "nas.trial.evaluate");
  verify_candidate(config);
  EvalResult r;
  r.fold_accuracies = oracle_.fold_accuracies(config);
  r.mean_accuracy = mean(r.fold_accuracies);
  count_trial_evaluated();
  return r;
}

double OracleEvaluator::evaluate_fold(const TrialConfig& config, int fold) {
  DCNAS_CHECK(fold >= 0 && fold < fold_count(), "fold index out of range");
  return oracle_.fold_accuracy(config, fold);
}

TrainingEvaluator::TrainingEvaluator(const geodata::DrainageDataset& dataset5,
                                     const geodata::DrainageDataset& dataset7,
                                     const Options& options)
    : dataset5_(dataset5), dataset7_(dataset7), options_(options) {
  DCNAS_CHECK(dataset5_.channels == 5 && dataset7_.channels == 7,
              "TrainingEvaluator needs the 5- and 7-channel datasets");
  DCNAS_CHECK(options_.folds >= 2, "cross-validation needs >= 2 folds");
  DCNAS_CHECK(options_.epochs >= 1, "training needs >= 1 epoch");
}

EvalResult TrainingEvaluator::evaluate(const TrialConfig& config) {
  DCNAS_TRACE_SPAN("nas", "nas.trial.evaluate");
  verify_candidate(config);
  EvalResult result;
  result.fold_accuracies.reserve(static_cast<std::size_t>(options_.folds));
  for (int f = 0; f < options_.folds; ++f) {
    result.fold_accuracies.push_back(evaluate_fold(config, f));
  }
  result.mean_accuracy = mean(result.fold_accuracies);
  count_trial_evaluated();
  return result;
}

double TrainingEvaluator::evaluate_fold(const TrialConfig& config, int fold) {
  DCNAS_CHECK(fold >= 0 && fold < options_.folds, "fold index out of range");
  obs::Span fold_span("nas", "nas.fold.evaluate");
  if (fold_span.armed()) {
    fold_span.arg("fold", static_cast<std::int64_t>(fold));
  }
  const geodata::DrainageDataset& ds =
      (config.channels == 5) ? dataset5_ : dataset7_;
  DCNAS_CHECK(ds.size() >= 2 * options_.folds,
              "dataset too small for the requested fold count");

  // Splits are deterministic in (labels, folds, seed), so recomputing them
  // per fold — the price of folds being independent tasks — reproduces the
  // exact slices a whole-trial loop would use.
  const auto splits =
      geodata::stratified_kfold(ds.labels, options_.folds, options_.seed);
  const auto f = static_cast<std::size_t>(fold);

  // Fresh weights per fold, seeded by (trial, fold) for reproducibility.
  Rng init_rng(mix_seed(options_.seed ^ config.encode(), f));
  nn::ConfigurableResNet model(config.to_resnet_config(), init_rng);

  const Tensor train_x = nn::gather_batch(ds.images, splits[f].train_indices);
  std::vector<int> train_y;
  train_y.reserve(splits[f].train_indices.size());
  for (auto i : splits[f].train_indices) {
    train_y.push_back(ds.labels[static_cast<std::size_t>(i)]);
  }
  const Tensor val_x = nn::gather_batch(ds.images, splits[f].val_indices);
  std::vector<int> val_y;
  val_y.reserve(splits[f].val_indices.size());
  for (auto i : splits[f].val_indices) {
    val_y.push_back(ds.labels[static_cast<std::size_t>(i)]);
  }

  nn::TrainOptions topt;
  topt.epochs = options_.epochs;
  topt.batch_size = config.batch;
  topt.lr = options_.lr;
  topt.momentum = options_.momentum;
  topt.weight_decay = options_.weight_decay;
  topt.seed = mix_seed(options_.seed, config.encode() + f);
  nn::fit(model, train_x, train_y, topt);

  return nn::evaluate_accuracy(model, val_x, val_y) * 100.0;
}

}  // namespace dcnas::nas
