#include "dcnas/nas/oracle.hpp"

#include <algorithm>
#include <cmath>

#include "dcnas/common/error.hpp"
#include "dcnas/common/rng.hpp"

namespace dcnas::nas {

namespace {

/// Table 5 anchors: stock ResNet-18 (w64, k7, p3, pooled, d=4) accuracy per
/// (channels, batch). The 7-channel inputs help ~1.5-2 points; batch 16 is
/// the sweet spot; batch 32 hurts the 5-channel variant hardest (matching
/// the paper's observation that less informative inputs destabilize large
/// batches under a 5-epoch budget).
double base_accuracy(int channels, int batch) {
  // Batches {4, 64} are wide-lattice extensions: tiny batches pay a noisy-
  // gradient tax, batch 64 extends the paper's large-batch instability.
  if (channels == 5) {
    if (batch == 4) return 91.85;
    if (batch == 8) return 92.90;
    if (batch == 16) return 93.60;
    if (batch == 32) return 89.67;
    return 87.40;  // 64
  }
  if (batch == 4) return 93.95;
  if (batch == 8) return 94.76;
  if (batch == 16) return 95.37;
  if (batch == 32) return 94.51;
  return 92.80;  // 64
}

/// Gaussian draw from a counter-hash (Box-Muller over two hash_units).
double hash_normal(std::uint64_t key) {
  const double u1 = std::max(hash_unit(key), 1e-12);
  const double u2 = hash_unit(splitmix64(key ^ 0x6a09e667f3bcc909ULL));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(6.283185307179586 * u2);
}

}  // namespace

AccuracyOracle::AccuracyOracle(const OracleOptions& options)
    : options_(options) {
  DCNAS_CHECK(options_.folds >= 1, "oracle needs at least one fold");
  DCNAS_CHECK(options_.trial_noise_sigma >= 0.0 &&
                  options_.fold_noise_sigma >= 0.0,
              "noise sigmas must be non-negative");
}

double AccuracyOracle::expected_accuracy(const TrialConfig& config) const {
  config.validate_universe();
  double acc = base_accuracy(config.channels, config.batch);

  // Capacity/epoch-budget: at 5 epochs the narrow nets converge further
  // (the paper's "streamlined architecture ... would effectively address
  // our objective" expectation, §3.2). Widths {16, 24, 96} are wide-lattice
  // extensions: w16 is too narrow to hold the signature, w96 is the most
  // under-trained at the epoch budget.
  switch (config.initial_output_feature) {
    case 16: acc += 0.10; break;
    case 24: acc += 0.42; break;
    case 32: acc += 0.55; break;
    case 48: acc += 0.30; break;
    case 96: acc -= 0.50; break;
    default: break;  // 64 is the anchor
  }
  // Small stem kernels suit the small culvert signature (Fig. 4's shared
  // trait: all winners use the smallest kernel). Anchored at k7 (baseline);
  // k1 loses the local texture a 3x3 stem captures, k5 sits between.
  switch (config.kernel_size) {
    case 1: acc += 0.02; break;
    case 3: acc += 0.09; break;
    case 5: acc += 0.04; break;
    default: break;  // 7 is the anchor
  }
  // Minimal padding wins (Fig. 4: minimal padding across all winners).
  // Anchored at p3 (baseline); with the width/kernel terms this puts the
  // paper's best configuration (7ch/b16/w32/k3/p1) at exactly 96.13.
  switch (config.padding) {
    case 0: acc += 0.14; break;
    case 1: acc += 0.12; break;
    case 2: acc += 0.06; break;
    default: break;
  }
  // Depth (wide lattice only; 2 = ResNet-18 is the anchor). The shallower
  // ResNet-10 converges a touch further inside 5 epochs; ResNet-26 is the
  // most under-trained.
  switch (config.depth) {
    case 1: acc += 0.18; break;
    case 3: acc -= 0.65; break;
    default: break;
  }
  // Stem downsampling. d=4 (stride-2 conv + stride-2 pool) is the anchor;
  // d=2 leaves 2x feature maps (slightly under-trained at 5 epochs);
  // d=1 feeds full-resolution maps into the backbone and collapses under
  // the epoch budget — the paper's 76.19% floor lives here.
  const int d = config.stem_downsample();
  if (d == 2) {
    acc -= 0.45;
  } else if (d == 1) {
    acc -= 6.0;
    if (config.batch == 32) acc -= 3.5;       // large batch destabilizes
    if (config.kernel_size == 7) acc -= 1.8;  // huge stem at full res
    if (config.channels == 5) acc -= 1.2;     // fewer cues to recover with
  }
  return acc - quantization_drop(config);
}

double AccuracyOracle::quantization_drop(const TrialConfig& config) const {
  if (!config.int8()) return 0.0;
  // Per-architecture, not per-fold: quantization is a deterministic
  // post-training transform of the trained network, so the same net loses
  // the same amount on every fold. Keyed on the precision-free encode() so
  // the draw is stable under seed and shared by twin comparisons.
  const std::uint64_t key =
      mix_seed(options_.seed ^ 0x862e8ULL, config.encode());
  return 0.15 + 0.55 * hash_unit(key);
}

double AccuracyOracle::fold_accuracy(const TrialConfig& config,
                                     int fold) const {
  DCNAS_CHECK(fold >= 0 && fold < options_.folds, "fold index out of range");
  const double expected = expected_accuracy(config);
  // Trial noise: one draw per lattice point (duplicated no-pool lattice
  // points are distinct NNI trials and get distinct draws, like the paper's
  // rows 3 and 5 of Table 4).
  const std::uint64_t trial_key = mix_seed(options_.seed, config.encode());
  const double trial_noise =
      options_.trial_noise_sigma * hash_normal(trial_key);
  const double fold_noise =
      options_.fold_noise_sigma *
      hash_normal(mix_seed(trial_key, static_cast<std::uint64_t>(fold) + 1));
  return std::clamp(expected + trial_noise + fold_noise, 50.0, 99.5);
}

std::vector<double> AccuracyOracle::fold_accuracies(
    const TrialConfig& config) const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(options_.folds));
  for (int f = 0; f < options_.folds; ++f) {
    out.push_back(fold_accuracy(config, f));
  }
  return out;
}

}  // namespace dcnas::nas
