#include "dcnas/nas/nsga2.hpp"

#include <algorithm>
#include <set>

namespace dcnas::nas {

namespace {

pareto::Objectives objectives_of(const TrialRecord& r) {
  return {r.accuracy, r.latency_ms, r.memory_mb};
}

int pick_different(const std::vector<int>& options, int current, Rng& rng) {
  int value = current;
  while (value == current && options.size() > 1) {
    value = options[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1))];
  }
  return value;
}

}  // namespace

Nsga2::Nsga2(std::function<TrialRecord(const TrialConfig&)> evaluate,
             const Nsga2Options& options)
    : evaluate_(std::move(evaluate)), options_(options) {
  DCNAS_CHECK(static_cast<bool>(evaluate_), "NSGA-II needs an evaluator");
  DCNAS_CHECK(options_.population_size >= 4, "population too small");
  DCNAS_CHECK(options_.generations >= 1, "need at least one generation");
  DCNAS_CHECK(options_.crossover_rate >= 0.0 && options_.crossover_rate <= 1.0,
              "crossover rate must be a probability");
}

Nsga2::Nsga2(const Experiment& experiment, const Nsga2Options& options)
    : Nsga2([&experiment](const TrialConfig& c) { return experiment.run_trial(c); },
            options) {}

Nsga2::Nsga2(const Experiment& experiment, TrialScheduler& scheduler,
             const Nsga2Options& options)
    : Nsga2(experiment, options) {
  DCNAS_CHECK(!scheduler.options().pruner.enabled,
              "NSGA-II batch evaluation maps records to configs 1:1; run the "
              "scheduler with the median-stop pruner disabled");
  batch_evaluate_ =
      [&scheduler](const std::vector<TrialConfig>& configs) {
        const TrialDatabase batch = scheduler.run(configs);
        return std::vector<TrialRecord>(batch.records().begin(),
                                        batch.records().end());
      };
}

TrialConfig Nsga2::crossover(const TrialConfig& a, const TrialConfig& b,
                             Rng& rng) const {
  TrialConfig child = a;
  if (rng.bernoulli(0.5)) child.kernel_size = b.kernel_size;
  if (rng.bernoulli(0.5)) child.stride = b.stride;
  if (rng.bernoulli(0.5)) child.padding = b.padding;
  if (rng.bernoulli(0.5)) child.pool_choice = b.pool_choice;
  if (rng.bernoulli(0.5)) child.kernel_size_pool = b.kernel_size_pool;
  if (rng.bernoulli(0.5)) child.stride_pool = b.stride_pool;
  if (rng.bernoulli(0.5))
    child.initial_output_feature = b.initial_output_feature;
  if (options_.search_input_combos) {
    if (rng.bernoulli(0.5)) child.channels = b.channels;
    if (rng.bernoulli(0.5)) child.batch = b.batch;
  }
  if (options_.search_precision) {
    if (rng.bernoulli(0.5)) child.precision = b.precision;
  }
  child.validate();
  return child;
}

TrialConfig Nsga2::mutate(const TrialConfig& parent, Rng& rng) const {
  TrialConfig child = parent;
  // Dimension indices: 0-6 architecture, 7-8 input combo, 9 precision.
  // When input combos are fixed the draw skips 7-8 so precision keeps a
  // stable index and the RNG stream matches the fp32-only search when
  // search_precision is off.
  const std::int64_t dims = (options_.search_input_combos ? 9 : 7) +
                            (options_.search_precision ? 1 : 0);
  std::int64_t dim = rng.uniform_int(0, dims - 1);
  if (!options_.search_input_combos && dim >= 7) dim = 9;
  switch (dim) {
    case 0:
      child.kernel_size =
          pick_different(SearchSpace::kernel_options(), parent.kernel_size, rng);
      break;
    case 1:
      child.stride =
          pick_different(SearchSpace::stride_options(), parent.stride, rng);
      break;
    case 2:
      child.padding =
          pick_different(SearchSpace::padding_options(), parent.padding, rng);
      break;
    case 3:
      child.pool_choice = pick_different(SearchSpace::pool_choice_options(),
                                         parent.pool_choice, rng);
      break;
    case 4:
      child.kernel_size_pool = pick_different(
          SearchSpace::pool_kernel_options(), parent.kernel_size_pool, rng);
      break;
    case 5:
      child.stride_pool = pick_different(SearchSpace::pool_stride_options(),
                                         parent.stride_pool, rng);
      break;
    case 6:
      child.initial_output_feature = pick_different(
          SearchSpace::width_options(), parent.initial_output_feature, rng);
      break;
    case 7:
      child.channels =
          pick_different(SearchSpace::channel_options(), parent.channels, rng);
      break;
    case 8:
      child.batch =
          pick_different(SearchSpace::batch_options(), parent.batch, rng);
      break;
    default:
      child.precision = pick_different(SearchSpace::precision_options(),
                                       parent.precision, rng);
      break;
  }
  child.validate();
  return child;
}

const TrialRecord& Nsga2::evaluate_cached(const TrialConfig& config) {
  const std::string key = config.lattice_key();
  const auto it = cache_.find(key);
  if (it != cache_.end()) return db_.record(it->second);
  TrialRecord record = evaluate_(config);
  db_.add(std::move(record));
  cache_.emplace(key, db_.size() - 1);
  return db_.record(db_.size() - 1);
}

void Nsga2::prefetch(const std::vector<TrialConfig>& configs) {
  if (!batch_evaluate_) return;
  // First-encounter order matches the serial evaluate_cached sequence, so
  // the database fills in exactly the same order.
  std::vector<TrialConfig> fresh;
  std::set<std::string> seen;
  for (const auto& cfg : configs) {
    const std::string key = cfg.lattice_key();
    if (cache_.count(key) != 0 || !seen.insert(key).second) continue;
    fresh.push_back(cfg);
  }
  if (fresh.empty()) return;
  const std::vector<TrialRecord> records = batch_evaluate_(fresh);
  DCNAS_CHECK(records.size() == fresh.size(),
              "batch evaluator returned " + std::to_string(records.size()) +
                  " records for " + std::to_string(fresh.size()) + " configs");
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    db_.add(records[i]);
    cache_.emplace(fresh[i].lattice_key(), db_.size() - 1);
  }
}

void Nsga2::assign_rank_and_crowding(std::vector<Individual>& pop) const {
  std::vector<pareto::Objectives> pts;
  pts.reserve(pop.size());
  for (const auto& ind : pop) pts.push_back(ind.objectives);
  const auto fronts = pareto::fast_non_dominated_sort(pts, options_.dominance);
  for (std::size_t layer = 0; layer < fronts.size(); ++layer) {
    const auto crowding = pareto::crowding_distances(pts, fronts[layer]);
    for (std::size_t k = 0; k < fronts[layer].size(); ++k) {
      pop[fronts[layer][k]].rank = static_cast<int>(layer);
      pop[fronts[layer][k]].crowding = crowding[k];
    }
  }
}

const Nsga2::Individual& Nsga2::tournament(const std::vector<Individual>& pop,
                                           Rng& rng) const {
  auto pick = [&]() -> const Individual& {
    return pop[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))];
  };
  const Individual& a = pick();
  const Individual& b = pick();
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  return a.crowding >= b.crowding ? a : b;
}

Nsga2Result Nsga2::run() {
  Rng rng(options_.seed);

  auto make_individual = [&](const TrialConfig& cfg) {
    Individual ind;
    ind.config = cfg;
    const std::string key = cfg.lattice_key();
    const TrialRecord& rec = evaluate_cached(cfg);
    ind.record_index = cache_.at(key);
    ind.objectives = objectives_of(rec);
    return ind;
  };

  // Initial population: uniform lattice samples. Config generation consumes
  // the RNG, evaluation does not — so every phase generates its configs
  // first, prefetches the uncached ones in one (possibly parallel) batch,
  // then builds the individuals off cache hits. Serial and batch evaluation
  // therefore walk identical RNG and database sequences.
  std::vector<TrialConfig> init_configs;
  while (init_configs.size() < options_.population_size) {
    const int ch = options_.search_input_combos
                       ? SearchSpace::channel_options()[static_cast<std::size_t>(
                             rng.uniform_int(0, 1))]
                       : 7;
    const int batch = options_.search_input_combos
                          ? SearchSpace::batch_options()[static_cast<std::size_t>(
                                rng.uniform_int(0, 2))]
                          : 16;
    TrialConfig cfg = SearchSpace::sample(rng, ch, batch);
    if (options_.search_precision) {
      cfg.precision = static_cast<int>(rng.uniform_int(0, 1));
    }
    init_configs.push_back(cfg);
  }
  prefetch(init_configs);
  std::vector<Individual> pop;
  pop.reserve(init_configs.size());
  for (const auto& cfg : init_configs) pop.push_back(make_individual(cfg));
  assign_rank_and_crowding(pop);

  Nsga2Result result;
  for (int gen = 0; gen < options_.generations; ++gen) {
    // Offspring: generate every child config, then evaluate as one batch.
    std::vector<TrialConfig> child_configs;
    while (child_configs.size() < options_.population_size) {
      const Individual& p1 = tournament(pop, rng);
      TrialConfig child;
      if (rng.bernoulli(options_.crossover_rate)) {
        const Individual& p2 = tournament(pop, rng);
        child = crossover(p1.config, p2.config, rng);
        child = mutate(child, rng);
      } else {
        child = mutate(p1.config, rng);
      }
      child_configs.push_back(child);
    }
    prefetch(child_configs);
    std::vector<Individual> offspring;
    offspring.reserve(child_configs.size());
    for (const auto& cfg : child_configs) offspring.push_back(make_individual(cfg));
    // Environmental selection over parents + offspring.
    std::vector<Individual> merged = pop;
    merged.insert(merged.end(), offspring.begin(), offspring.end());
    assign_rank_and_crowding(merged);
    std::sort(merged.begin(), merged.end(),
              [](const Individual& a, const Individual& b) {
                if (a.rank != b.rank) return a.rank < b.rank;
                return a.crowding > b.crowding;
              });
    merged.resize(options_.population_size);
    pop = std::move(merged);
    assign_rank_and_crowding(pop);

    // Progress metric: hypervolume of the population's first front,
    // skipping points outside the reference octant.
    std::vector<pareto::Objectives> front_pts;
    for (const auto& ind : pop) {
      if (ind.rank == 0 && ind.objectives.accuracy >= options_.reference.accuracy &&
          ind.objectives.latency_ms <= options_.reference.latency_ms &&
          ind.objectives.memory_mb <= options_.reference.memory_mb) {
        front_pts.push_back(ind.objectives);
      }
    }
    result.hypervolume_history.push_back(
        front_pts.empty() ? 0.0
                          : pareto::hypervolume(front_pts, options_.reference));
  }

  // Final front over everything evaluated.
  std::vector<pareto::Objectives> all;
  for (const auto& r : db_.records()) all.push_back(objectives_of(r));
  result.front = pareto::non_dominated_indices(all, options_.dominance);
  result.unique_evaluations = db_.size();
  result.evaluated = std::move(db_);
  return result;
}

}  // namespace dcnas::nas
