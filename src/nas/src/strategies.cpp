#include "dcnas/nas/strategies.hpp"

#include <algorithm>

#include "dcnas/common/error.hpp"

namespace dcnas::nas {

GridStrategy::GridStrategy(int channels, int batch)
    : lattice_(SearchSpace::enumerate_architectures(channels, batch)) {}

TrialConfig GridStrategy::ask() {
  DCNAS_CHECK(!exhausted(), "grid strategy exhausted");
  return lattice_[cursor_++];
}

RandomStrategy::RandomStrategy(int channels, int batch, std::uint64_t seed)
    : lattice_(SearchSpace::enumerate_architectures(channels, batch)) {
  Rng rng(seed);
  rng.shuffle(lattice_);
}

TrialConfig RandomStrategy::ask() {
  DCNAS_CHECK(!exhausted(), "random strategy exhausted");
  return lattice_[cursor_++];
}

EvolutionStrategy::EvolutionStrategy(int channels, int batch,
                                     const Options& options)
    : channels_(channels), batch_(batch), options_(options), rng_(options.seed) {
  DCNAS_CHECK(options_.population_size >= 2, "population too small");
  DCNAS_CHECK(options_.tournament_size >= 1 &&
                  options_.tournament_size <= options_.population_size,
              "bad tournament size");
}

TrialConfig EvolutionStrategy::mutate(const TrialConfig& parent,
                                      Rng& rng) const {
  TrialConfig child = parent;
  // Pick one of the seven architecture dimensions and move it to a
  // different value (input combination stays fixed, as in the paper).
  auto pick_different = [&rng](const std::vector<int>& options, int current) {
    int value = current;
    while (value == current && options.size() > 1) {
      value = options[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(options.size()) - 1))];
    }
    return value;
  };
  switch (rng.uniform_int(0, 6)) {
    case 0:
      child.kernel_size =
          pick_different(SearchSpace::kernel_options(), parent.kernel_size);
      break;
    case 1:
      child.stride =
          pick_different(SearchSpace::stride_options(), parent.stride);
      break;
    case 2:
      child.padding =
          pick_different(SearchSpace::padding_options(), parent.padding);
      break;
    case 3:
      child.pool_choice = pick_different(SearchSpace::pool_choice_options(),
                                         parent.pool_choice);
      break;
    case 4:
      child.kernel_size_pool = pick_different(
          SearchSpace::pool_kernel_options(), parent.kernel_size_pool);
      break;
    case 5:
      child.stride_pool = pick_different(SearchSpace::pool_stride_options(),
                                         parent.stride_pool);
      break;
    default:
      child.initial_output_feature =
          pick_different(SearchSpace::width_options(),
                         parent.initial_output_feature);
      break;
  }
  child.validate();
  return child;
}

TrialConfig EvolutionStrategy::ask() {
  if (population_.size() < options_.population_size) {
    return SearchSpace::sample(rng_, channels_, batch_);  // warm-up
  }
  // Tournament selection over random members.
  const Member* best = nullptr;
  for (std::size_t t = 0; t < options_.tournament_size; ++t) {
    const auto idx = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(population_.size()) - 1));
    if (!best || population_[idx].fitness > best->fitness) {
      best = &population_[idx];
    }
  }
  return mutate(best->config, rng_);
}

void EvolutionStrategy::tell(const TrialConfig& config, double fitness) {
  population_.push_back({config, fitness});
  while (population_.size() > options_.population_size) {
    population_.pop_front();  // aging: retire the oldest
  }
}

}  // namespace dcnas::nas
