#include "dcnas/nas/store/multiproc.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/common/logging.hpp"

namespace dcnas::nas {

namespace {

/// Worker body, run inside the forked child. Never returns: exits 0 on
/// success, 1 on any exception (after printing it — the child's stderr is
/// the parent's stderr).
[[noreturn]] void worker_main(const Experiment& experiment,
                              const SearchSpaceSpec& spec, int worker,
                              const MultiProcSweepOptions& options) {
  try {
    SchedulerOptions sched = options.scheduler;
    sched.store_fingerprint = spec.fingerprint();
    TrialScheduler scheduler(experiment, sched);
    LatticeStream shard(spec, worker, options.workers);
    scheduler.run_streamed(shard);
    std::_Exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nas store worker %d failed: %s\n", worker, e.what());
  } catch (...) {
    std::fprintf(stderr, "nas store worker %d failed: unknown exception\n",
                 worker);
  }
  std::_Exit(1);
}

}  // namespace

MultiProcSweepStats run_multiprocess_sweep(
    const Experiment& experiment, const SearchSpaceSpec& spec,
    const std::string& store_dir, const MultiProcSweepOptions& options) {
  DCNAS_CHECK(options.workers >= 1, "multi-process sweep needs >= 1 worker");
  DCNAS_CHECK(options.scheduler.journal_path.empty(),
              "multi-process sweeps use the store, not a journal");
  spec.validate();
  const auto t0 = std::chrono::steady_clock::now();

  MultiProcSweepOptions opts = options;
  opts.scheduler.store_dir = store_dir;

  // Create (or recover) the store before forking so workers race on
  // appends, never on initialization/recovery.
  {
    TrialStoreOptions sopt;
    sopt.lattice_fingerprint = spec.fingerprint();
    sopt.fsync_each = opts.scheduler.fsync_store;
    TrialStore store(store_dir, sopt);
  }

  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(opts.workers));
  for (int w = 0; w < opts.workers; ++w) {
    const pid_t pid = ::fork();
    DCNAS_CHECK(pid >= 0, "fork failed for store worker");
    if (pid == 0) worker_main(experiment, spec, w, opts);  // never returns
    pids.push_back(pid);
  }

  int failures = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(pid, &status, 0);
    } while (rc < 0 && errno == EINTR);
    DCNAS_CHECK(rc == pid, "waitpid failed for store worker");
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  DCNAS_ASSERT(failures == 0,
               std::to_string(failures) + " store worker(s) failed");

  MultiProcSweepStats stats;
  stats.workers = opts.workers;
  stats.lattice_size = spec.size();
  {
    TrialStoreOptions sopt;
    sopt.lattice_fingerprint = spec.fingerprint();
    TrialStore store(store_dir, sopt);
    stats.store_records = store.size();
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace dcnas::nas
