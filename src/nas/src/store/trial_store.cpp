#include "dcnas/nas/store/trial_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "dcnas/common/error.hpp"
#include "dcnas/common/strings.hpp"

namespace dcnas::nas {

namespace {

using store::ControlBlock;
using store::TrialSlot;

std::uint64_t bytes_crc(const void* data, std::size_t len) {
  return fnv1a64(
      std::string_view(static_cast<const char*>(data), len));
}

std::uint64_t slot_crc(const TrialSlot& slot) {
  TrialSlot copy = slot;
  copy.crc = 0;
  return bytes_crc(&copy, sizeof(copy));
}

std::uint64_t control_crc(const ControlBlock& ctrl) {
  ControlBlock copy = ctrl;
  copy.crc = 0;
  return bytes_crc(&copy, sizeof(copy));
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void pwrite_all(int fd, const void* buf, std::size_t len, std::uint64_t off,
                const char* what) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(off));
    if (n < 0 && errno == EINTR) continue;
    DCNAS_CHECK(n > 0, errno_text(what));
    p += n;
    off += static_cast<std::uint64_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

bool pread_all(int fd, void* buf, std::size_t len, std::uint64_t off) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = ::pread(fd, p, len, static_cast<off_t>(off));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // error or short file
    p += n;
    off += static_cast<std::uint64_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void fsync_checked(int fd, const char* what) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  DCNAS_CHECK(rc == 0, errno_text(what));
}

std::string chunk_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "trials-%05llu.chunk",
                static_cast<unsigned long long>(index));
  return buf;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

std::uint64_t file_size(int fd, const char* what) {
  struct stat st {};
  DCNAS_CHECK(::fstat(fd, &st) == 0, errno_text(what));
  return static_cast<std::uint64_t>(st.st_size);
}

TrialStatus status_from_disk(std::uint32_t status) {
  DCNAS_CHECK(status == store::kStatusOk || status == store::kStatusPruned,
              "store record has unknown status value");
  return status == store::kStatusOk ? TrialStatus::kOk : TrialStatus::kPruned;
}

/// Bounds a slot's string references against the pool's committed bytes —
/// shared by decode (corruption detection) and control rebuild (prefix
/// acceptance).
bool strings_in_bounds(const TrialSlot& slot, std::uint64_t pool_bytes) {
  if (slot.key_off + slot.key_len > pool_bytes) return false;
  if (slot.device_count > store::kMaxDevices) return false;
  for (std::uint32_t d = 0; d < slot.device_count; ++d) {
    const auto& dev = slot.devices[d];
    if (dev.name_off + dev.name_len > pool_bytes) return false;
  }
  return true;
}

}  // namespace

struct TrialStore::Chunk {
  int fd = -1;
  void* map = nullptr;
  std::size_t map_len = 0;
};

TrialStore::TrialStore(std::string dir, const TrialStoreOptions& options)
    : dir_(std::move(dir)), options_(options) {
  DCNAS_CHECK(!dir_.empty(), "store directory path is empty");
  if (options_.chunk_capacity == 0) {
    options_.chunk_capacity = store::kDefaultChunkCapacity;
  }
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine; stat below is the check
  struct stat st {};
  DCNAS_CHECK(::stat(dir_.c_str(), &st) == 0 && S_ISDIR(st.st_mode),
              "store path is not a directory: " + dir_);
  try {
    lock_fd_ = ::open((dir_ + "/store.lock").c_str(),
                      O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    DCNAS_CHECK(lock_fd_ >= 0, errno_text("open store.lock"));
    pool_fd_ = ::open((dir_ + "/strings.pool").c_str(),
                      O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    DCNAS_CHECK(pool_fd_ >= 0, errno_text("open strings.pool"));
    ctrl_fd_ = ::open((dir_ + "/store.ctrl").c_str(),
                      O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    DCNAS_CHECK(ctrl_fd_ >= 0, errno_text("open store.ctrl"));

    lock_file();
    try {
      load_or_create_control();
      recover_locked();
    } catch (...) {
      unlock_file();
      throw;
    }
    unlock_file();

    committed_ = ctrl_.committed_records;
    index_records(0, committed_);
  } catch (...) {
    // The destructor does not run for a partially constructed object.
    for (auto& c : chunks_) {
      if (c.map != nullptr) ::munmap(c.map, c.map_len);
      if (c.fd >= 0) ::close(c.fd);
    }
    if (ctrl_fd_ >= 0) ::close(ctrl_fd_);
    if (pool_fd_ >= 0) ::close(pool_fd_);
    if (lock_fd_ >= 0) ::close(lock_fd_);
    throw;
  }
}

TrialStore::~TrialStore() {
  for (auto& c : chunks_) {
    if (c.map != nullptr) ::munmap(c.map, c.map_len);
    if (c.fd >= 0) ::close(c.fd);
  }
  if (ctrl_fd_ >= 0) ::close(ctrl_fd_);
  if (pool_fd_ >= 0) ::close(pool_fd_);
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void TrialStore::lock_file() const {
  struct flock fl {};
  fl.l_type = F_WRLCK;
  fl.l_whence = SEEK_SET;
  fl.l_start = 0;
  fl.l_len = 0;  // whole file
  int rc;
  do {
    rc = ::fcntl(lock_fd_, F_SETLKW, &fl);
  } while (rc != 0 && errno == EINTR);
  DCNAS_CHECK(rc == 0, errno_text("store lock"));
}

void TrialStore::unlock_file() const {
  struct flock fl {};
  fl.l_type = F_UNLCK;
  fl.l_whence = SEEK_SET;
  fl.l_start = 0;
  fl.l_len = 0;
  ::fcntl(lock_fd_, F_SETLK, &fl);
}

void TrialStore::load_or_create_control() {
  const std::uint64_t size = file_size(ctrl_fd_, "stat store.ctrl");
  if (size == 0) {
    std::memcpy(ctrl_.magic, store::kControlMagic, sizeof(ctrl_.magic));
    ctrl_.version = store::kFormatVersion;
    ctrl_.record_size = sizeof(TrialSlot);
    ctrl_.lattice_fingerprint = options_.lattice_fingerprint;
    ctrl_.chunk_capacity = options_.chunk_capacity;
    ctrl_.committed_records = 0;
    ctrl_.committed_string_bytes = 0;
    write_control();
    return;
  }
  DCNAS_CHECK(size == sizeof(ControlBlock),
              "store.ctrl has unexpected size (not a v1 trial store)");
  DCNAS_CHECK(pread_all(ctrl_fd_, &ctrl_, sizeof(ctrl_), 0),
              errno_text("read store.ctrl"));
  const bool header_ok =
      std::memcmp(ctrl_.magic, store::kControlMagic, sizeof(ctrl_.magic)) ==
          0 &&
      ctrl_.version == store::kFormatVersion &&
      ctrl_.record_size == sizeof(TrialSlot);
  if (ctrl_.crc != control_crc(ctrl_) || !header_ok) {
    // A crash mid-publish (or a flipped bit) leaves a bad control block.
    // If the directory holds chunk data this is a recoverable store —
    // rebuild the counters from the records' own CRCs. A directory with a
    // garbage control file and no chunks is simply not a store.
    DCNAS_CHECK(file_exists(dir_ + "/" + chunk_name(0)),
                "store.ctrl is corrupt and no chunk files exist to rebuild "
                "from: " + dir_);
    rebuild_control_locked();
    recovery_.control_rebuilt = true;
  }
  if (options_.lattice_fingerprint != 0 && ctrl_.lattice_fingerprint != 0) {
    DCNAS_CHECK(options_.lattice_fingerprint == ctrl_.lattice_fingerprint,
                "store was created for a different search-space lattice");
  }
  if (options_.lattice_fingerprint != 0 && ctrl_.lattice_fingerprint == 0) {
    ctrl_.lattice_fingerprint = options_.lattice_fingerprint;
    write_control();
  }
}

void TrialStore::rebuild_control_locked() {
  // Infer the chunk capacity from chunk 0's preallocated size; a store
  // always ftruncates chunks to capacity * record_size at creation.
  std::uint32_t capacity = options_.chunk_capacity;
  {
    const int fd = ::open((dir_ + "/" + chunk_name(0)).c_str(),
                          O_RDONLY | O_CLOEXEC);
    DCNAS_CHECK(fd >= 0, errno_text("open chunk 0 for rebuild"));
    const std::uint64_t size = file_size(fd, "stat chunk 0");
    ::close(fd);
    DCNAS_CHECK(size > 0 && size % sizeof(TrialSlot) == 0,
                "chunk 0 size is not a multiple of the record size");
    capacity = static_cast<std::uint32_t>(size / sizeof(TrialSlot));
  }
  const std::uint64_t pool_bytes = file_size(pool_fd_, "stat strings.pool");

  // Accept the longest valid record prefix (each record carries its CRC;
  // the first invalid slot ends the committed region, like the journal
  // dropping everything from the first torn line).
  std::uint64_t records = 0;
  std::uint64_t string_end = 0;
  bool done = false;
  for (std::uint64_t ci = 0; !done; ++ci) {
    const std::string path = dir_ + "/" + chunk_name(ci);
    if (!file_exists(path)) break;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    DCNAS_CHECK(fd >= 0, errno_text("open chunk for rebuild"));
    for (std::uint32_t s = 0; s < capacity; ++s) {
      TrialSlot slot;
      if (!pread_all(fd, &slot, sizeof(slot),
                     static_cast<std::uint64_t>(s) * sizeof(TrialSlot))) {
        done = true;
        break;
      }
      if (slot.crc != slot_crc(slot) || !strings_in_bounds(slot, pool_bytes)) {
        done = true;
        break;
      }
      ++records;
      string_end = std::max(string_end, slot.key_off + slot.key_len);
      for (std::uint32_t d = 0; d < slot.device_count; ++d) {
        string_end = std::max(
            string_end, slot.devices[d].name_off + slot.devices[d].name_len);
      }
    }
    ::close(fd);
  }

  ControlBlock fresh{};
  std::memcpy(fresh.magic, store::kControlMagic, sizeof(fresh.magic));
  fresh.version = store::kFormatVersion;
  fresh.record_size = sizeof(TrialSlot);
  fresh.lattice_fingerprint = ctrl_.lattice_fingerprint;  // best effort
  fresh.chunk_capacity = capacity;
  fresh.committed_records = records;
  fresh.committed_string_bytes = string_end;
  ctrl_ = fresh;
  write_control();
}

void TrialStore::recover_locked() {
  // Torn pool tail: bytes past the committed counter were never published.
  const std::uint64_t pool_bytes = file_size(pool_fd_, "stat strings.pool");
  if (pool_bytes > ctrl_.committed_string_bytes) {
    recovery_.torn_string_bytes = pool_bytes - ctrl_.committed_string_bytes;
    DCNAS_CHECK(::ftruncate(pool_fd_, static_cast<off_t>(
                                          ctrl_.committed_string_bytes)) == 0,
                errno_text("truncate strings.pool torn tail"));
    fsync_checked(pool_fd_, "fsync strings.pool");
  }

  // Torn record slots: zero everything past the committed counter so the
  // chunk files never accumulate garbage mid-stream (the journal's
  // truncate-before-append rule, adapted to fixed-size slots).
  static const TrialSlot kZeroSlot{};
  bool wrote = false;
  for (std::uint64_t ci = 0;; ++ci) {
    if (!file_exists(dir_ + "/" + chunk_name(ci))) break;
    Chunk& chunk = chunk_for(ci * ctrl_.chunk_capacity);
    for (std::uint32_t s = 0; s < ctrl_.chunk_capacity; ++s) {
      const std::uint64_t g = ci * ctrl_.chunk_capacity + s;
      if (g < ctrl_.committed_records) continue;
      TrialSlot slot;
      const std::uint64_t off =
          static_cast<std::uint64_t>(s) * sizeof(TrialSlot);
      if (!pread_all(chunk.fd, &slot, sizeof(slot), off)) break;
      if (std::memcmp(&slot, &kZeroSlot, sizeof(slot)) == 0) continue;
      ++recovery_.torn_records;
      pwrite_all(chunk.fd, &kZeroSlot, sizeof(kZeroSlot), off,
                 "zero torn record slot");
      wrote = true;
    }
  }
  if (wrote && options_.fsync_each) {
    for (auto& c : chunks_) fsync_checked(c.fd, "fsync chunk");
  }
}

TrialStore::Chunk& TrialStore::chunk_for(std::uint64_t record_index) const {
  const std::uint64_t ci = record_index / ctrl_.chunk_capacity;
  while (chunks_.size() <= ci) {
    const std::uint64_t new_index = chunks_.size();
    const std::string path = dir_ + "/" + chunk_name(new_index);
    Chunk c;
    c.fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    DCNAS_CHECK(c.fd >= 0, errno_text("open chunk file"));
    const std::size_t len =
        static_cast<std::size_t>(ctrl_.chunk_capacity) * sizeof(TrialSlot);
    if (file_size(c.fd, "stat chunk") < len) {
      // Preallocate to full capacity so the mmap below never outgrows the
      // file (appends land inside the mapping; no remap churn).
      DCNAS_CHECK(::ftruncate(c.fd, static_cast<off_t>(len)) == 0,
                  errno_text("preallocate chunk file"));
    }
    c.map = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, c.fd, 0);
    DCNAS_CHECK(c.map != MAP_FAILED, errno_text("mmap chunk file"));
    c.map_len = len;
    chunks_.push_back(c);
  }
  return chunks_[ci];
}

const TrialSlot* TrialStore::slot_ptr(std::uint64_t record_index) const {
  const Chunk& chunk = chunk_for(record_index);
  const std::uint64_t s = record_index % ctrl_.chunk_capacity;
  return reinterpret_cast<const TrialSlot*>(
      static_cast<const char*>(chunk.map) + s * sizeof(TrialSlot));
}

std::string TrialStore::read_pool(std::uint64_t off, std::uint32_t len) const {
  std::string out(len, '\0');
  if (len == 0) return out;
  DCNAS_CHECK(pread_all(pool_fd_, out.data(), len, off),
              "store string pool read out of bounds");
  return out;
}

store::TrialSlot TrialStore::encode_slot(const JournalEntry& entry,
                                         std::uint64_t string_base,
                                         std::string* string_bytes) {
  const TrialRecord& r = entry.record;
  DCNAS_CHECK(entry.fold_indices.size() == r.fold_accuracies.size(),
              "fold_indices and fold_accuracies must align");
  DCNAS_CHECK(entry.fold_indices.size() <= store::kMaxFolds,
              "trial has more folds than the store record holds");
  DCNAS_CHECK(r.per_device_ms.size() <= store::kMaxDevices,
              "trial has more devices than the store record holds");
  TrialSlot slot{};
  slot.status = entry.status == TrialStatus::kOk ? store::kStatusOk
                                                 : store::kStatusPruned;
  const TrialConfig& c = r.config;
  slot.config[0] = c.channels;
  slot.config[1] = c.batch;
  slot.config[2] = c.kernel_size;
  slot.config[3] = c.stride;
  slot.config[4] = c.padding;
  slot.config[5] = c.pool_choice;
  slot.config[6] = c.kernel_size_pool;
  slot.config[7] = c.stride_pool;
  slot.config[8] = c.initial_output_feature;
  slot.config[9] = c.precision;
  slot.config[10] = c.depth;
  slot.accuracy_bits = double_bits(r.accuracy);
  slot.latency_bits = double_bits(r.latency_ms);
  slot.lat_std_bits = double_bits(r.lat_std);
  slot.memory_bits = double_bits(r.memory_mb);
  const std::string key = c.lattice_key();
  slot.key_off = string_base + string_bytes->size();
  slot.key_len = static_cast<std::uint32_t>(key.size());
  string_bytes->append(key);
  slot.fold_count = static_cast<std::uint32_t>(entry.fold_indices.size());
  for (std::uint32_t f = 0; f < slot.fold_count; ++f) {
    slot.folds[f].index = entry.fold_indices[f];
    slot.folds[f].accuracy_bits = double_bits(r.fold_accuracies[f]);
  }
  slot.device_count = static_cast<std::uint32_t>(r.per_device_ms.size());
  for (std::uint32_t d = 0; d < slot.device_count; ++d) {
    slot.devices[d].name_off = string_base + string_bytes->size();
    slot.devices[d].name_len =
        static_cast<std::uint32_t>(r.per_device_ms[d].first.size());
    string_bytes->append(r.per_device_ms[d].first);
    slot.devices[d].ms_bits = double_bits(r.per_device_ms[d].second);
  }
  slot.crc = slot_crc(slot);
  return slot;
}

JournalEntry TrialStore::decode_slot(const TrialSlot& slot) const {
  JournalEntry entry;
  entry.status = status_from_disk(slot.status);
  TrialRecord& r = entry.record;
  TrialConfig& c = r.config;
  c.channels = slot.config[0];
  c.batch = slot.config[1];
  c.kernel_size = slot.config[2];
  c.stride = slot.config[3];
  c.padding = slot.config[4];
  c.pool_choice = slot.config[5];
  c.kernel_size_pool = slot.config[6];
  c.stride_pool = slot.config[7];
  c.initial_output_feature = slot.config[8];
  c.precision = slot.config[9];
  c.depth = slot.config[10];
  c.validate_universe();
  DCNAS_CHECK(read_pool(slot.key_off, slot.key_len) == c.lattice_key(),
              "store record key does not match its config");
  r.accuracy = bits_double(slot.accuracy_bits);
  r.latency_ms = bits_double(slot.latency_bits);
  r.lat_std = bits_double(slot.lat_std_bits);
  r.memory_mb = bits_double(slot.memory_bits);
  DCNAS_CHECK(slot.fold_count <= store::kMaxFolds,
              "store record fold count out of range");
  for (std::uint32_t f = 0; f < slot.fold_count; ++f) {
    entry.fold_indices.push_back(slot.folds[f].index);
    r.fold_accuracies.push_back(bits_double(slot.folds[f].accuracy_bits));
  }
  DCNAS_CHECK(slot.device_count <= store::kMaxDevices,
              "store record device count out of range");
  for (std::uint32_t d = 0; d < slot.device_count; ++d) {
    r.per_device_ms.emplace_back(
        read_pool(slot.devices[d].name_off, slot.devices[d].name_len),
        bits_double(slot.devices[d].ms_bits));
  }
  return entry;
}

JournalEntry TrialStore::read(std::uint64_t i) const {
  DCNAS_CHECK(i < committed_, "store record index out of range");
  TrialSlot slot;
  std::memcpy(&slot, slot_ptr(i), sizeof(slot));
  DCNAS_CHECK(slot.crc == slot_crc(slot),
              "committed store record failed its CRC (corrupt store)");
  return decode_slot(slot);
}

const JournalEntry* TrialStore::find(const std::string& lattice_key) const {
  const auto it = by_key_.find(lattice_key);
  return it == by_key_.end() ? nullptr : &it->second;
}

void TrialStore::index_records(std::uint64_t from, std::uint64_t to) {
  for (std::uint64_t i = from; i < to; ++i) {
    JournalEntry entry = read(i);
    const std::string key = entry.record.config.lattice_key();
    by_key_.insert_or_assign(key, std::move(entry));
  }
}

void TrialStore::write_control() {
  ctrl_.crc = control_crc(ctrl_);
  pwrite_all(ctrl_fd_, &ctrl_, sizeof(ctrl_), 0, "write store.ctrl");
  if (options_.fsync_each) fsync_checked(ctrl_fd_, "fsync store.ctrl");
}

void TrialStore::append(const JournalEntry& entry) {
  entry.record.config.validate_universe();
  lock_file();
  try {
    // Another process may have advanced the store since our last look:
    // re-read the control block so the append lands after *its* commits.
    ControlBlock latest{};
    DCNAS_CHECK(pread_all(ctrl_fd_, &latest, sizeof(latest), 0),
                errno_text("re-read store.ctrl"));
    DCNAS_CHECK(latest.crc == control_crc(latest),
                "store.ctrl failed its CRC mid-run (corrupt store)");
    const std::uint64_t previously_committed = ctrl_.committed_records;
    ctrl_ = latest;

    std::string string_bytes;
    const TrialSlot slot =
        encode_slot(entry, ctrl_.committed_string_bytes, &string_bytes);
    if (!string_bytes.empty()) {
      pwrite_all(pool_fd_, string_bytes.data(), string_bytes.size(),
                 ctrl_.committed_string_bytes, "append strings.pool");
    }
    Chunk& chunk = chunk_for(ctrl_.committed_records);
    pwrite_all(chunk.fd, &slot, sizeof(slot),
               (ctrl_.committed_records % ctrl_.chunk_capacity) *
                   sizeof(TrialSlot),
               "append trial record");
    if (options_.fsync_each) {
      fsync_checked(pool_fd_, "fsync strings.pool");
      fsync_checked(chunk.fd, "fsync chunk");
    }
    // Publish: only now does the record exist as far as readers (and
    // recovery) are concerned.
    ctrl_.committed_string_bytes += string_bytes.size();
    ctrl_.committed_records += 1;
    write_control();
    committed_ = ctrl_.committed_records;

    // Keep the in-handle index current, including records other processes
    // committed between our appends.
    index_records(previously_committed, committed_);
  } catch (...) {
    unlock_file();
    throw;
  }
  unlock_file();
}

std::uint64_t TrialStore::refresh() {
  lock_file();
  ControlBlock latest{};
  const bool read_ok = pread_all(ctrl_fd_, &latest, sizeof(latest), 0);
  unlock_file();
  DCNAS_CHECK(read_ok, errno_text("re-read store.ctrl"));
  DCNAS_CHECK(latest.crc == control_crc(latest),
              "store.ctrl failed its CRC on refresh (corrupt store)");
  const std::uint64_t before = committed_;
  ctrl_ = latest;
  committed_ = ctrl_.committed_records;
  if (committed_ > before) index_records(before, committed_);
  return committed_ - before;
}

TrialDatabase TrialStore::to_database() const {
  std::vector<TrialRecord> out;
  std::map<std::string, std::size_t> position;
  for (std::uint64_t i = 0; i < committed_; ++i) {
    JournalEntry entry = read(i);
    if (entry.status != TrialStatus::kOk) continue;
    const std::string key = entry.record.config.lattice_key();
    const auto it = position.find(key);
    if (it == position.end()) {
      position.emplace(key, out.size());
      out.push_back(std::move(entry.record));
    } else {
      out[it->second] = std::move(entry.record);  // last write wins
    }
  }
  TrialDatabase db;
  for (auto& r : out) db.add(std::move(r));
  return db;
}

TrialDatabase TrialStore::assemble(
    const std::vector<TrialConfig>& configs) const {
  TrialDatabase db;
  for (const auto& config : configs) {
    const JournalEntry* entry = find(config.lattice_key());
    DCNAS_CHECK(entry != nullptr,
                "store has no record for " + config.lattice_key());
    if (entry->status != TrialStatus::kOk) continue;
    db.add(entry->record);
  }
  return db;
}

void TrialStore::import_database(const TrialDatabase& db) {
  for (const auto& r : db.records()) {
    JournalEntry entry;
    entry.status = TrialStatus::kOk;
    entry.record = r;
    entry.fold_indices.resize(r.fold_accuracies.size());
    for (std::size_t f = 0; f < entry.fold_indices.size(); ++f) {
      entry.fold_indices[f] = static_cast<int>(f);
    }
    append(entry);
  }
}

void TrialStore::import_journal(const std::string& journal_path) {
  const TrialJournal journal(journal_path, /*fsync_each=*/false);
  for (const auto& [key, entry] : journal.entries()) {
    (void)key;
    append(entry);
  }
}

}  // namespace dcnas::nas
