#pragma once
/// \file evaluator.hpp
/// \brief Trial evaluation behind one interface: the calibrated oracle for
/// full sweeps and genuine 5-fold cross-validated training for spot checks.

#include <memory>
#include <string>
#include <vector>

#include "dcnas/geodata/dataset.hpp"
#include "dcnas/nas/oracle.hpp"
#include "dcnas/nas/search_space.hpp"

namespace dcnas::nas {

struct EvalResult {
  std::vector<double> fold_accuracies;  ///< percent, one per CV fold
  double mean_accuracy = 0.0;           ///< percent ("accuracy" in Table 4)
};

/// Trust boundary for sampled candidates: validates \p config against the
/// search space, builds its deployment-size IR graph, and runs the standard
/// analysis::GraphVerifier over it. Throws InvalidArgument when either the
/// config or the built graph fails, so a builder regression (or a corrupted
/// candidate) is rejected *before* any training or latency prediction is
/// spent on it. Every evaluator calls this at the top of evaluate().
void verify_candidate(const TrialConfig& config);

class Evaluator {
 public:
  virtual ~Evaluator() = default;
  virtual EvalResult evaluate(const TrialConfig& config) = 0;
  virtual std::string name() const = 0;
};

/// Surrogate evaluator: microseconds per trial, calibrated to the paper.
class OracleEvaluator : public Evaluator {
 public:
  explicit OracleEvaluator(const OracleOptions& options = {});
  EvalResult evaluate(const TrialConfig& config) override;
  std::string name() const override { return "oracle"; }
  const AccuracyOracle& oracle() const { return oracle_; }

 private:
  AccuracyOracle oracle_;
};

/// Genuine training evaluator: k-fold CV of ConfigurableResNet on the
/// synthetic drainage dataset (the paper's NNI protocol, at reduced scale).
class TrainingEvaluator : public Evaluator {
 public:
  struct Options {
    int folds = 5;
    int epochs = 5;            ///< the paper trains each trial 5 epochs
    double lr = 0.01;
    double momentum = 0.9;
    double weight_decay = 5e-4;
    std::uint64_t seed = 7;
  };

  /// Both datasets must outlive the evaluator; pass the 5- and 7-channel
  /// variants built from identical scenes.
  TrainingEvaluator(const geodata::DrainageDataset& dataset5,
                    const geodata::DrainageDataset& dataset7,
                    const Options& options);
  TrainingEvaluator(const geodata::DrainageDataset& dataset5,
                    const geodata::DrainageDataset& dataset7)
      : TrainingEvaluator(dataset5, dataset7, Options{}) {}

  EvalResult evaluate(const TrialConfig& config) override;
  std::string name() const override { return "training"; }

 private:
  const geodata::DrainageDataset& dataset5_;
  const geodata::DrainageDataset& dataset7_;
  Options options_;
};

}  // namespace dcnas::nas
