#pragma once
/// \file evaluator.hpp
/// \brief Trial evaluation behind one interface: the calibrated oracle for
/// full sweeps and genuine 5-fold cross-validated training for spot checks.

#include <memory>
#include <string>
#include <vector>

#include "dcnas/geodata/dataset.hpp"
#include "dcnas/nas/oracle.hpp"
#include "dcnas/nas/search_space.hpp"

namespace dcnas::nas {

struct EvalResult {
  std::vector<double> fold_accuracies;  ///< percent, one per CV fold
  double mean_accuracy = 0.0;           ///< percent ("accuracy" in Table 4)
};

/// Trust boundary for sampled candidates: validates \p config against the
/// search space, builds its deployment-size IR graph, and runs the standard
/// analysis::GraphVerifier over it. Throws InvalidArgument when either the
/// config or the built graph fails, so a builder regression (or a corrupted
/// candidate) is rejected *before* any training or latency prediction is
/// spent on it. Every evaluator calls this at the top of evaluate().
void verify_candidate(const TrialConfig& config);

/// Trial evaluation decomposes into independent per-fold tasks so the
/// TrialScheduler (scheduler.hpp) can run a trial's K folds concurrently:
/// evaluate() == verify_candidate + evaluate_fold(0..K-1) + mean, and
/// evaluate_fold(config, f) is a pure function of (config, f, options) —
/// the same value regardless of which thread runs it or in what order.
class Evaluator {
 public:
  virtual ~Evaluator() = default;
  virtual EvalResult evaluate(const TrialConfig& config) = 0;

  /// Number of CV folds evaluate() aggregates over.
  virtual int fold_count() const = 0;

  /// Accuracy (percent) of one fold. Precondition: the caller has already
  /// run verify_candidate(config) — fold evaluation skips re-verification
  /// so a K-fold fan-out verifies once, not K times. Must be safe to call
  /// concurrently from multiple threads (const datasets, local state only).
  virtual double evaluate_fold(const TrialConfig& config, int fold) = 0;

  virtual std::string name() const = 0;
};

/// Surrogate evaluator: microseconds per trial, calibrated to the paper.
class OracleEvaluator : public Evaluator {
 public:
  explicit OracleEvaluator(const OracleOptions& options = {});
  EvalResult evaluate(const TrialConfig& config) override;
  int fold_count() const override { return oracle_.options().folds; }
  double evaluate_fold(const TrialConfig& config, int fold) override;
  std::string name() const override { return "oracle"; }
  const AccuracyOracle& oracle() const { return oracle_; }

 private:
  AccuracyOracle oracle_;
};

/// Genuine training evaluator: k-fold CV of ConfigurableResNet on the
/// synthetic drainage dataset (the paper's NNI protocol, at reduced scale).
class TrainingEvaluator : public Evaluator {
 public:
  struct Options {
    int folds = 5;
    int epochs = 5;            ///< the paper trains each trial 5 epochs
    double lr = 0.01;
    double momentum = 0.9;
    double weight_decay = 5e-4;
    std::uint64_t seed = 7;
  };

  /// Both datasets must outlive the evaluator; pass the 5- and 7-channel
  /// variants built from identical scenes.
  TrainingEvaluator(const geodata::DrainageDataset& dataset5,
                    const geodata::DrainageDataset& dataset7,
                    const Options& options);
  TrainingEvaluator(const geodata::DrainageDataset& dataset5,
                    const geodata::DrainageDataset& dataset7)
      : TrainingEvaluator(dataset5, dataset7, Options{}) {}

  EvalResult evaluate(const TrialConfig& config) override;
  int fold_count() const override { return options_.folds; }
  double evaluate_fold(const TrialConfig& config, int fold) override;
  std::string name() const override { return "training"; }

 private:
  const geodata::DrainageDataset& dataset5_;
  const geodata::DrainageDataset& dataset7_;
  Options options_;
};

}  // namespace dcnas::nas
