#pragma once
/// \file scheduler.hpp
/// \brief Parallel NAS trial scheduler: the search loop as a two-level job
/// graph with a deterministic merge, crash-safe resume, and optional
/// NNI-style median-stop fold pruning.
///
/// The paper's NNI harness dispatched trials concurrently and relied on
/// assessors to kill doomed trials early; DPP-Net and HW-NAS-Bench both
/// show that search-loop throughput — not single-model FLOPs — is the
/// binding cost of hardware-aware NAS. This scheduler parallelizes the
/// whole 288-configs x 6-combos x K-fold search:
///
///  - **Level 1 (trials):** configs fan out across a dedicated pool,
///    bounded by `max_inflight_trials` so a long lattice never floods the
///    queue.
///  - **Level 2 (folds):** each admitted trial's K cross-validation folds
///    are independent tasks (every (trial, fold) pair is independently
///    seeded — see Evaluator::evaluate_fold). Fold tasks run under a
///    KernelBudgetScope of `kernel_threads_per_trial`, so T concurrent
///    trials cannot multiply into T x full-kernel-fan-out thread thrash.
///
/// **Determinism contract.** With pruning off, `run(configs)` returns a
/// TrialDatabase whose CSV is *byte-identical* to the serial
/// `Experiment::run_all(configs)` at any thread count: fold accuracies are
/// merged in fold-index order, records in submission order, and the PR-4
/// kernels are bitwise thread-count-independent. The parity is enforced by
/// tests and hashed into BENCH_nas.json on every CI run.
///
/// **Resume journal.** With a `journal_path`, every finished trial is
/// appended (and fsynced) to a crash-safe journal keyed by lattice_key()
/// before the run completes; re-running an interrupted search evaluates
/// only the configs the journal does not hold (see journal.hpp).
///
/// **Median-stop pruner.** Off by default so exact-reproduction paths are
/// untouched. When enabled, a trial whose running mean accuracy after n
/// completed folds falls below the median of completed trials' same-step
/// running means (minus `margin`) skips its remaining folds and is
/// journaled as pruned; pruned trials are excluded from the returned
/// database. Pruning decisions depend on completion timing and are the one
/// intentionally nondeterministic feature — surviving trials' recorded
/// fold accuracies are still exactly the serial values.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dcnas/common/thread_pool.hpp"
#include "dcnas/nas/experiment.hpp"
#include "dcnas/nas/journal.hpp"
#include "dcnas/nas/store/trial_store.hpp"

namespace dcnas::nas {

/// NNI median-stop assessor, per fold instead of per epoch: compare a
/// running mean against the median of completed trials at the same step.
struct MedianStopOptions {
  bool enabled = false;
  /// Completed trials required before any pruning decision fires.
  int warmup_trials = 5;
  /// Folds a trial must finish before it can be pruned.
  int min_folds = 1;
  /// Accuracy slack (percent): prune only below median - margin.
  double margin = 0.0;
};

/// Thread-safe median-stop decision state. Kept public for direct unit
/// testing; the scheduler owns one per run.
class MedianStopRule {
 public:
  explicit MedianStopRule(const MedianStopOptions& options);

  /// Registers a completed trial's running-mean curve: entry i is the mean
  /// accuracy of folds 0..i, in fold-index order.
  void report_completed(const std::vector<double>& running_means);

  /// True when a trial whose mean accuracy over \p folds_done completed
  /// folds is \p running_mean should stop: running_mean < median of
  /// completed trials' running means at the same step, minus margin.
  /// Always false before warmup_trials curves are registered or below
  /// min_folds.
  bool should_prune(double running_mean, int folds_done) const;

  std::size_t completed_curves() const;

 private:
  MedianStopOptions options_;
  mutable std::mutex mu_;
  std::vector<std::vector<double>> curves_;
};

struct SchedulerOptions {
  /// Dedicated scheduler pool width; 0 means hardware_concurrency.
  std::size_t threads = 0;
  /// Trials admitted concurrently; 0 means 2x threads (keeps every worker
  /// fed while one trial waits on its last fold).
  std::size_t max_inflight_trials = 0;
  /// Kernel-thread budget handed to each fold task (KernelBudgetScope).
  /// 1 = folds are strictly single-threaded compute (the default; trials x
  /// folds already saturate the pool).
  std::size_t kernel_threads_per_trial = 1;
  /// Crash-safe resume journal; empty disables journaling. Legacy path —
  /// the journal's line format carries neither precision nor depth, so it
  /// only round-trips paper-lattice configs; wide-lattice runs use the
  /// store instead.
  std::string journal_path;
  /// fsync after every journal append (keep on outside tests).
  bool fsync_journal = true;
  /// Memory-mapped TrialStore directory; empty disables the store. When
  /// set, finished trials commit to the store (resume works like the
  /// journal but across *processes*) and run_streamed becomes available.
  std::string store_dir;
  /// fsync every store commit (crash safety; benches may disable).
  bool fsync_store = true;
  /// Expected lattice fingerprint for the store (0 = accept any); see
  /// TrialStoreOptions::lattice_fingerprint.
  std::uint64_t store_fingerprint = 0;
  MedianStopOptions pruner;
  bool log_progress = false;
};

struct SchedulerStats {
  std::size_t scheduled = 0;        ///< configs evaluated this run
  std::size_t resumed = 0;          ///< configs satisfied by the journal
  std::size_t completed = 0;        ///< trials fully evaluated this run
  std::size_t pruned = 0;           ///< trials median-stopped this run
  std::size_t folds_evaluated = 0;  ///< fold tasks that ran to completion
  std::size_t folds_skipped = 0;    ///< folds saved by pruning
  double wall_seconds = 0.0;        ///< run() wall time
};

/// Runs a trial list as the two-level job graph described above. One
/// scheduler owns one dedicated pool; run() may be called repeatedly
/// (stats are per-run). Not itself thread-safe: one run() at a time.
class TrialScheduler {
 public:
  TrialScheduler(const Experiment& experiment,
                 const SchedulerOptions& options = {});
  ~TrialScheduler();

  TrialScheduler(const TrialScheduler&) = delete;
  TrialScheduler& operator=(const TrialScheduler&) = delete;

  /// Evaluates every config (journal hits excepted) and returns the merged
  /// database — byte-identical CSV to Experiment::run_all(configs) when
  /// pruning is off. The first evaluator/verifier exception aborts the run
  /// (in-flight folds drain, remaining trials are skipped) and is rethrown.
  TrialDatabase run(const std::vector<TrialConfig>& configs);

  /// Streaming mode for lattices too wide to materialize: pulls candidates
  /// from \p stream one at a time, commits every finished trial to the
  /// store (SchedulerOptions::store_dir is required), and *retires* each
  /// trial's in-memory state as it finalizes — peak memory is
  /// O(max_inflight_trials), not O(lattice). Trials already complete in the
  /// store are skipped (counted as resumed), which is also what lets N
  /// worker processes share one store: each streams its own shard. Read
  /// views come from the store afterwards (TrialStore::assemble for the
  /// serial-parity ordering).
  SchedulerStats run_streamed(CandidateStream& stream);

  const SchedulerStats& stats() const { return stats_; }
  const SchedulerOptions& options() const { return options_; }
  std::size_t threads() const { return pool_.size(); }

  /// The store opened by the last run (nullptr when store_dir is empty).
  TrialStore* store() const { return store_.get(); }

 private:
  struct TrialState;

  void prepare_run();
  bool resolve_from_history(TrialState* trial);
  void commit_entry(const JournalEntry& entry);
  void run_fold_task(TrialState* trial, int fold);
  void finalize_trial(TrialState* trial);

  const Experiment& experiment_;
  SchedulerOptions options_;
  ThreadPool pool_;
  SchedulerStats stats_;

  // Per-run state (guarded by mu_ unless noted).
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t inflight_ = 0;
  bool abort_ = false;
  std::exception_ptr first_error_;
  std::unique_ptr<MedianStopRule> rule_;
  /// Serializes commits and history lookups (TrialJournal and the store's
  /// in-handle key index are not MT-safe).
  std::mutex journal_mu_;
  std::unique_ptr<TrialJournal> journal_;
  std::unique_ptr<TrialStore> store_;
  std::vector<std::unique_ptr<TrialState>> trials_;
  /// Streamed-mode live set: finalize_trial retires entries so memory does
  /// not grow with the lattice. Guarded by mu_.
  std::map<TrialState*, std::unique_ptr<TrialState>> live_;
  /// True while run_streamed is draining (written only with no tasks in
  /// flight; read by finalize_trial on pool workers).
  bool streaming_ = false;
};

}  // namespace dcnas::nas
