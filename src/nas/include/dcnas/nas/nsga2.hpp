#pragma once
/// \file nsga2.hpp
/// \brief NSGA-II multi-objective architecture search over the Figure-2
/// lattice — the "resource-efficient NAS" direction the paper's Discussion
/// proposes, searching (accuracy ↑, latency ↓, memory ↓) directly instead
/// of exhaustively gridding all 1,728 trials.
///
/// Standard NSGA-II (Deb et al. 2002, anticipated by Srinivas & Deb 1994,
/// which the paper cites): binary tournament on (front rank, crowding
/// distance), uniform crossover + single-dimension mutation over the
/// lattice, elitist environmental selection via fast non-dominated sort.
/// Trial evaluations are cached by lattice key, so the measured cost is
/// the number of *unique* trials — directly comparable to the paper's
/// 1,728-trial grid.

#include <functional>
#include <map>

#include "dcnas/nas/experiment.hpp"
#include "dcnas/nas/scheduler.hpp"
#include "dcnas/pareto/pareto.hpp"

namespace dcnas::nas {

struct Nsga2Options {
  std::size_t population_size = 32;
  int generations = 12;
  double crossover_rate = 0.6;  ///< else the child is a mutated clone
  std::uint64_t seed = 1;
  bool search_input_combos = true;  ///< mutate channels/batch too
  /// Search the serving-precision axis (QUANTIZATION.md): initial samples,
  /// crossover, and mutation then also flip TrialConfig::precision, letting
  /// the front trade the oracle's quantization drop against the int8
  /// latency/memory wins. Off by default — the fp32-only search is the
  /// paper's setting and stays bit-identical to before the axis existed.
  bool search_precision = false;
  pareto::DominanceMode dominance = pareto::DominanceMode::kWeak;
  /// Hypervolume reference for the per-generation progress metric.
  pareto::Objectives reference{70.0, 500.0, 50.0};
};

struct Nsga2Result {
  TrialDatabase evaluated;                 ///< unique trials, eval order
  std::vector<std::size_t> front;          ///< final non-dominated set
  std::vector<double> hypervolume_history; ///< one entry per generation
  std::size_t unique_evaluations = 0;
};

class Nsga2 {
 public:
  /// \p evaluate runs one trial (accuracy + latency + memory); the search
  /// never calls it twice for the same lattice point.
  Nsga2(std::function<TrialRecord(const TrialConfig&)> evaluate,
        const Nsga2Options& options);

  /// Convenience: wraps an Experiment as the evaluation function.
  Nsga2(const Experiment& experiment, const Nsga2Options& options);

  /// Parallel evaluation: each generation's unique uncached configs are
  /// collected (config generation consumes the RNG, evaluation does not)
  /// and fanned out through \p scheduler in one batch. Produces the same
  /// database — same records, same order — as the serial constructors, as
  /// long as the scheduler's pruner is disabled (enforced at runtime).
  Nsga2(const Experiment& experiment, TrialScheduler& scheduler,
        const Nsga2Options& options);

  Nsga2Result run();

  /// Uniform crossover: each dimension from either parent (exposed for
  /// tests).
  TrialConfig crossover(const TrialConfig& a, const TrialConfig& b, Rng& rng) const;

  /// Mutates one dimension to a different lattice value.
  TrialConfig mutate(const TrialConfig& parent, Rng& rng) const;

 private:
  struct Individual {
    TrialConfig config;
    pareto::Objectives objectives;
    std::size_t record_index = 0;  ///< into the result database
    int rank = 0;
    double crowding = 0.0;
  };

  const TrialRecord& evaluate_cached(const TrialConfig& config);
  /// Batch-evaluates the first-encounter-order uncached configs in
  /// \p configs (no-op without a batch evaluator); afterwards every config
  /// in the list is a cache hit.
  void prefetch(const std::vector<TrialConfig>& configs);
  void assign_rank_and_crowding(std::vector<Individual>& pop) const;
  const Individual& tournament(const std::vector<Individual>& pop, Rng& rng) const;

  std::function<TrialRecord(const TrialConfig&)> evaluate_;
  std::function<std::vector<TrialRecord>(const std::vector<TrialConfig>&)>
      batch_evaluate_;
  Nsga2Options options_;
  TrialDatabase db_;
  std::map<std::string, std::size_t> cache_;  ///< lattice key -> db index
};

}  // namespace dcnas::nas
