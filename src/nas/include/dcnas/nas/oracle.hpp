#pragma once
/// \file oracle.hpp
/// \brief Calibrated semi-empirical accuracy model (the full-sweep
/// substitute for 38 GPU-hours of NNI training — see DESIGN.md §1).
///
/// The oracle decomposes a trial's 5-fold mean accuracy into effect terms
/// fitted to the paper's reported aggregates:
///
///   acc = base(channels, batch)             // Table 5 anchors (stock net)
///       + width_term(initial width)          // small nets win at 5 epochs
///       + kernel_term + padding_term         // small kernels/padding help
///       + downsample_term(stem downsample)   // d=1 collapses training
///       + interactions (d=1 x batch32 / k7 / 5ch)
///       + trial_noise + fold_noise           // deterministic, hash-keyed
///
/// Anchors: Table 5's six baseline accuracies are reproduced exactly in
/// expectation; Table 4's best model (7ch/b16/w32/k3/p1/pooled) lands at
/// 96.13 in expectation; Table 3's minimum (~76.2) comes from the
/// d=1/batch-32 corner. Per-trial noise (sigma ~0.45) reproduces the
/// NNI-trial scatter that makes Pareto selection pick lucky draws, and
/// fold noise (sigma ~1.0) the 5-fold spread. All noise is a pure hash of
/// (lattice point, fold, seed), so the sweep is bit-reproducible.

#include <vector>

#include "dcnas/nas/search_space.hpp"

namespace dcnas::nas {

struct OracleOptions {
  std::uint64_t seed = 2023;
  double trial_noise_sigma = 0.45;  ///< per-trial NNI scatter (percent)
  double fold_noise_sigma = 1.0;    ///< per-fold scatter (percent)
  int folds = 5;
};

class AccuracyOracle {
 public:
  explicit AccuracyOracle(const OracleOptions& options = {});

  /// Expected (noise-free) accuracy in percent for a configuration. For
  /// int8 trials this is the fp32 twin's expectation minus
  /// quantization_drop() — noise draws are shared with the twin (encode()
  /// is precision-free), so the drop is the only difference.
  double expected_accuracy(const TrialConfig& config) const;

  /// Deterministic accuracy cost of post-training int8 quantization, in
  /// percent, for the architecture behind \p config. Zero for fp32 trials.
  /// Drawn per-architecture from [0.15, 0.70] — inside QUANTIZATION.md's
  /// <= 1% bound for per-channel symmetric weights + per-tensor activation
  /// scales on over-parameterized binary classifiers.
  double quantization_drop(const TrialConfig& config) const;

  /// Accuracy of one cross-validation fold (expected + trial + fold noise),
  /// clamped to [50, 99.5] percent.
  double fold_accuracy(const TrialConfig& config, int fold) const;

  /// Mean over the configured number of folds.
  std::vector<double> fold_accuracies(const TrialConfig& config) const;

  const OracleOptions& options() const { return options_; }

 private:
  OracleOptions options_;
};

}  // namespace dcnas::nas
