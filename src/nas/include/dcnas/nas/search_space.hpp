#pragma once
/// \file search_space.hpp
/// \brief The paper's NAS search space (Figure 2).
///
/// Architecture dimensions (per input-data combination):
///   conv1 kernel {3, 7} x stride {1, 2} x padding {1, 2, 3}
///   x pool_choice {0 = with max-pool, 1 = no pooling}
///   x pool kernel {2, 3} x pool stride {1, 2}
///   x initial output feature (stage width) {32, 48, 64}
/// = 2*2*3 * 2*2*2 * 3 = 288 lattice points, matching §3.2's "288 distinct
/// model configurations for every combination of input data". With the six
/// input combinations (channels {5, 7} x batch {8, 16, 32}) the full
/// lattice is 1,728 trials; the paper reports 1,717 valid outcomes.
///
/// pool_choice semantics: Table 4's latencies identify pool_choice=0 as
/// *with* pooling (fast, extra downsampling) and 1 as *without* (see
/// DESIGN.md §4); when pool_choice=1 the pool kernel/stride are don't-care
/// dimensions, so 144 no-pool lattice points collapse onto 36 unique
/// architectures per combination (180 unique total).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dcnas/nn/resnet.hpp"

namespace dcnas::nas {

/// One lattice point: input combination + architecture knobs. Field names
/// follow Table 4's column names.
struct TrialConfig {
  int channels = 5;                 ///< {5, 7}
  int batch = 8;                    ///< {8, 16, 32}
  int kernel_size = 7;              ///< conv1 kernel {3, 7}
  int stride = 2;                   ///< conv1 stride {1, 2}
  int padding = 3;                  ///< conv1 padding {1, 2, 3}
  int pool_choice = 0;              ///< 0 = with max-pool, 1 = no pooling
  int kernel_size_pool = 3;         ///< {2, 3}; don't-care when no pool
  int stride_pool = 2;              ///< {1, 2}; don't-care when no pool
  int initial_output_feature = 64;  ///< {32, 48, 64}
  /// Serving precision {0 = fp32, 1 = int8 post-training quantization}
  /// (QUANTIZATION.md). Orthogonal to the architecture: an int8 trial and
  /// its fp32 twin train the same network — only the compiled serving plan
  /// differs. Off the paper's 1,728-point lattice; NSGA-II explores it when
  /// Nsga2Options::search_precision is set.
  int precision = 0;
  /// BasicBlocks per residual stage {1, 2, 3} — ResNet-10/18/26. 2 is the
  /// paper's ResNet-18 and the only depth on the 1,728-point lattice; the
  /// wide lattice (SearchSpaceSpec::wide) explores the other levels. Keys
  /// and encode() are unchanged at the default so every pre-existing
  /// journal/store artifact stays valid.
  int depth = 2;

  bool with_pool() const { return pool_choice == 0; }
  bool int8() const { return precision == 1; }

  /// True when the stem geometry can pass graph verification (the
  /// sem.geometry pass rejects conv padding > kernel: window columns made
  /// entirely of padding). The wide lattice's independent axes generate
  /// such points (kernel 1 with padding 2/3); enumerate() and
  /// LatticeStream skip them symmetrically, so serial and streamed sweeps
  /// agree on the evaluated set. Every paper-lattice point passes.
  bool geometry_ok() const { return padding <= kernel_size; }

  /// Stem downsampling factor: conv1 stride x (pool stride when pooled).
  int stem_downsample() const {
    return stride * (with_pool() ? stride_pool : 1);
  }

  /// Converts to the model-builder config (classes fixed at 2).
  nn::ResNetConfig to_resnet_config() const;

  /// Stock ResNet-18 for a given input combination (Table 5 rows).
  static TrialConfig baseline(int channels, int batch);

  /// Throws InvalidArgument when any field is outside the paper's Figure 2
  /// search space (depth fixed at 2, fp32/int8 precision only).
  void validate() const;

  /// Throws InvalidArgument when any field is outside the *widest* lattice
  /// any SearchSpaceSpec may span (the universe the builders, oracle, and
  /// persistence layers must accept). validate() ⊂ validate_universe().
  void validate_universe() const;

  /// Unique key of the *architecture* (pool don't-cares canonicalized,
  /// batch and precision excluded): lattice points sharing this key train
  /// the same net.
  std::string canonical_arch_key() const;

  /// Unique key of the lattice point itself (all fields; "_q8" suffix when
  /// precision == int8, so quantized trials cache separately).
  std::string lattice_key() const;

  /// Deterministic 64-bit encoding of the lattice point (oracle noise key).
  /// Deliberately precision-free: an int8 trial shares its fp32 twin's
  /// training-noise draws, so the oracle's quantization drop is the *only*
  /// accuracy difference between the twins.
  std::uint64_t encode() const;

  std::string to_string() const;
};

/// A concrete lattice: one option list per TrialConfig dimension. The
/// paper's Figure 2 space and the HW-NAS-Bench-style wide lattice are both
/// instances, so every consumer (streams, stores, schedulers) works against
/// one description instead of hard-coded enumerations.
///
/// Configurations are addressable by index: at(i) decodes a mixed-radix
/// index (most-significant dimension first, matching the paper lattice's
/// historical enumeration order) in O(#dims) without materializing the
/// lattice — the piece that lets a 10^5–10^6-point sweep stream rather than
/// hold every TrialConfig in memory.
struct SearchSpaceSpec {
  std::vector<int> channels, batches, kernels, strides, paddings,
      pool_choices, pool_kernels, pool_strides, widths, precisions, depths;

  /// The paper's 1,728-point lattice (depth {2}, precision {0}). at()
  /// enumerates in exactly SearchSpace::enumerate_all() order.
  static SearchSpaceSpec paper();

  /// The widened lattice: kernels {1,3,5,7}, paddings {0..3}, widths
  /// {16,24,32,48,64,96}, batches {4,8,16,32,64}, pool kernels {2,3,4},
  /// depths {1,2,3}, both precisions — 138,240 lattice points, of which
  /// 120,960 are buildable (geometry_ok skips kernel-1/padding>1 corners).
  static SearchSpaceSpec wide();

  std::int64_t size() const;  ///< product of the option-list sizes

  /// Decodes lattice index \p i (0 <= i < size()) to its configuration.
  TrialConfig at(std::int64_t i) const;

  /// True when \p config is a lattice point of this spec.
  bool contains(const TrialConfig& config) const;

  /// Stable identity of the lattice (dimension values + size), hashed into
  /// every TrialStore's control file so a store can refuse records from a
  /// different search space.
  std::string describe() const;
  std::uint64_t fingerprint() const;  ///< fnv1a64(describe())

  /// Materializes the whole lattice (small specs / tests only).
  std::vector<TrialConfig> enumerate() const;

  void validate() const;  ///< non-empty option lists, universe-legal values
};

/// Pull-based candidate source for streamed scheduling: next() yields
/// configurations until exhausted. Implementations need not be thread-safe;
/// the scheduler's admission loop is the only caller.
class CandidateStream {
 public:
  virtual ~CandidateStream() = default;
  virtual std::optional<TrialConfig> next() = 0;
  /// Total candidates this stream will yield (for progress accounting).
  virtual std::int64_t total() const = 0;
};

/// Streams a spec's lattice by index: [start, spec.size()) stepping by
/// \p stride — stride N with offsets 0..N-1 shards one lattice across N
/// workers with no shared state and no materialization.
class LatticeStream : public CandidateStream {
 public:
  explicit LatticeStream(const SearchSpaceSpec& spec, std::int64_t start = 0,
                         std::int64_t stride = 1);
  std::optional<TrialConfig> next() override;
  std::int64_t total() const override;

 private:
  SearchSpaceSpec spec_;
  std::int64_t next_index_;
  std::int64_t stride_;
  std::int64_t size_;
};

/// Streams an in-memory config list (adapter for the vector-based callers).
class VectorStream : public CandidateStream {
 public:
  explicit VectorStream(std::vector<TrialConfig> configs)
      : configs_(std::move(configs)) {}
  std::optional<TrialConfig> next() override {
    if (next_ >= configs_.size()) return std::nullopt;
    return configs_[next_++];
  }
  std::int64_t total() const override {
    return static_cast<std::int64_t>(configs_.size());
  }

 private:
  std::vector<TrialConfig> configs_;
  std::size_t next_ = 0;
};

/// Enumeration helpers over the Figure 2 space.
class SearchSpace {
 public:
  static const std::vector<int>& channel_options();
  static const std::vector<int>& batch_options();
  static const std::vector<int>& kernel_options();
  static const std::vector<int>& stride_options();
  static const std::vector<int>& padding_options();
  static const std::vector<int>& pool_choice_options();
  static const std::vector<int>& pool_kernel_options();
  static const std::vector<int>& pool_stride_options();
  static const std::vector<int>& width_options();
  static const std::vector<int>& precision_options();  ///< {0, 1}

  /// The 288 architecture lattice points for one (channels, batch) combo.
  static std::vector<TrialConfig> enumerate_architectures(int channels,
                                                          int batch);

  /// All 1,728 lattice points (6 input combinations x 288).
  static std::vector<TrialConfig> enumerate_all();

  static std::int64_t lattice_size();            ///< 1728
  static std::int64_t architectures_per_combo(); ///< 288

  /// Number of distinct architectures after no-pool canonicalization
  /// (per combo: 144 pooled + 36 unpooled = 180).
  static std::int64_t unique_architectures_per_combo();

  /// Uniformly samples one lattice point.
  static TrialConfig sample(Rng& rng, int channels, int batch);
};

}  // namespace dcnas::nas
