#pragma once
/// \file search_space.hpp
/// \brief The paper's NAS search space (Figure 2).
///
/// Architecture dimensions (per input-data combination):
///   conv1 kernel {3, 7} x stride {1, 2} x padding {1, 2, 3}
///   x pool_choice {0 = with max-pool, 1 = no pooling}
///   x pool kernel {2, 3} x pool stride {1, 2}
///   x initial output feature (stage width) {32, 48, 64}
/// = 2*2*3 * 2*2*2 * 3 = 288 lattice points, matching §3.2's "288 distinct
/// model configurations for every combination of input data". With the six
/// input combinations (channels {5, 7} x batch {8, 16, 32}) the full
/// lattice is 1,728 trials; the paper reports 1,717 valid outcomes.
///
/// pool_choice semantics: Table 4's latencies identify pool_choice=0 as
/// *with* pooling (fast, extra downsampling) and 1 as *without* (see
/// DESIGN.md §4); when pool_choice=1 the pool kernel/stride are don't-care
/// dimensions, so 144 no-pool lattice points collapse onto 36 unique
/// architectures per combination (180 unique total).

#include <cstdint>
#include <string>
#include <vector>

#include "dcnas/nn/resnet.hpp"

namespace dcnas::nas {

/// One lattice point: input combination + architecture knobs. Field names
/// follow Table 4's column names.
struct TrialConfig {
  int channels = 5;                 ///< {5, 7}
  int batch = 8;                    ///< {8, 16, 32}
  int kernel_size = 7;              ///< conv1 kernel {3, 7}
  int stride = 2;                   ///< conv1 stride {1, 2}
  int padding = 3;                  ///< conv1 padding {1, 2, 3}
  int pool_choice = 0;              ///< 0 = with max-pool, 1 = no pooling
  int kernel_size_pool = 3;         ///< {2, 3}; don't-care when no pool
  int stride_pool = 2;              ///< {1, 2}; don't-care when no pool
  int initial_output_feature = 64;  ///< {32, 48, 64}
  /// Serving precision {0 = fp32, 1 = int8 post-training quantization}
  /// (QUANTIZATION.md). Orthogonal to the architecture: an int8 trial and
  /// its fp32 twin train the same network — only the compiled serving plan
  /// differs. Off the paper's 1,728-point lattice; NSGA-II explores it when
  /// Nsga2Options::search_precision is set.
  int precision = 0;

  bool with_pool() const { return pool_choice == 0; }
  bool int8() const { return precision == 1; }

  /// Stem downsampling factor: conv1 stride x (pool stride when pooled).
  int stem_downsample() const {
    return stride * (with_pool() ? stride_pool : 1);
  }

  /// Converts to the model-builder config (classes fixed at 2).
  nn::ResNetConfig to_resnet_config() const;

  /// Stock ResNet-18 for a given input combination (Table 5 rows).
  static TrialConfig baseline(int channels, int batch);

  /// Throws InvalidArgument when any field is outside the search space.
  void validate() const;

  /// Unique key of the *architecture* (pool don't-cares canonicalized,
  /// batch and precision excluded): lattice points sharing this key train
  /// the same net.
  std::string canonical_arch_key() const;

  /// Unique key of the lattice point itself (all fields; "_q8" suffix when
  /// precision == int8, so quantized trials cache separately).
  std::string lattice_key() const;

  /// Deterministic 64-bit encoding of the lattice point (oracle noise key).
  /// Deliberately precision-free: an int8 trial shares its fp32 twin's
  /// training-noise draws, so the oracle's quantization drop is the *only*
  /// accuracy difference between the twins.
  std::uint64_t encode() const;

  std::string to_string() const;
};

/// Enumeration helpers over the Figure 2 space.
class SearchSpace {
 public:
  static const std::vector<int>& channel_options();
  static const std::vector<int>& batch_options();
  static const std::vector<int>& kernel_options();
  static const std::vector<int>& stride_options();
  static const std::vector<int>& padding_options();
  static const std::vector<int>& pool_choice_options();
  static const std::vector<int>& pool_kernel_options();
  static const std::vector<int>& pool_stride_options();
  static const std::vector<int>& width_options();
  static const std::vector<int>& precision_options();  ///< {0, 1}

  /// The 288 architecture lattice points for one (channels, batch) combo.
  static std::vector<TrialConfig> enumerate_architectures(int channels,
                                                          int batch);

  /// All 1,728 lattice points (6 input combinations x 288).
  static std::vector<TrialConfig> enumerate_all();

  static std::int64_t lattice_size();            ///< 1728
  static std::int64_t architectures_per_combo(); ///< 288

  /// Number of distinct architectures after no-pool canonicalization
  /// (per combo: 144 pooled + 36 unpooled = 180).
  static std::int64_t unique_architectures_per_combo();

  /// Uniformly samples one lattice point.
  static TrialConfig sample(Rng& rng, int channels, int batch);
};

}  // namespace dcnas::nas
