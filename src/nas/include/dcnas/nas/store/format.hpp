#pragma once
/// \file format.hpp
/// \brief On-disk layout of the memory-mapped trial store (DESIGN.md §14).
///
/// A store is a directory:
///
///   store.lock         empty file; fcntl(F_SETLKW) whole-file lock taken
///                      around every commit and every recovery pass
///   store.ctrl         one 256-byte ControlBlock (the commit point)
///   strings.pool       append-only UTF-8 bytes (lattice keys, device names)
///   trials-NNNNN.chunk fixed-size TrialSlot records, chunk_capacity per
///                      file, preallocated with ftruncate and mmap'd
///
/// Every multi-byte field is little-endian host order (the store is a
/// single-host artifact, like the journal); every CRC is the repo's FNV-1a
/// 64 over the struct bytes with the crc field zeroed.
///
/// **Commit protocol** (holding the store.lock exclusive region lock):
///   1. pread + validate the ControlBlock (recover first if its CRC fails)
///   2. pwrite the record's strings at committed_string_bytes
///   3. pwrite the TrialSlot at record index committed_records
///   4. fsync the pool and chunk fds
///   5. pwrite + fsync the updated ControlBlock (counters + new CRC)
/// A crash before step 5 leaves a torn tail *beyond* the committed
/// counters; the next open truncates the pool back to
/// committed_string_bytes and zeroes slots past committed_records, exactly
/// the journal's drop-the-torn-tail rule. A crash *during* step 5 leaves a
/// bad control CRC; the next open rebuilds the counters by scanning chunk
/// records (each slot carries its own CRC) and accepting the longest valid
/// prefix.

#include <cstdint>

namespace dcnas::nas::store {

inline constexpr char kControlMagic[8] = {'D', 'C', 'N', 'S',
                                          'T', 'O', 'R', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kDefaultChunkCapacity = 4096;

/// Inline capacity of one record. The paper protocol is 5-fold CV; 16
/// leaves room for deeper CV without a format bump. Devices: the nn-Meter
/// predictor set is 4; 8 leaves headroom.
inline constexpr std::uint32_t kMaxFolds = 16;
inline constexpr std::uint32_t kMaxDevices = 8;

/// Number of config ints a slot stores (TrialConfig's fields in declaration
/// order: channels, batch, kernel_size, stride, padding, pool_choice,
/// kernel_size_pool, stride_pool, initial_output_feature, precision, depth;
/// slot 11 is reserved, always 0).
inline constexpr std::uint32_t kConfigInts = 12;

/// One completed fold: index + the accuracy's IEEE-754 bit pattern
/// (doubles round-trip exactly, which is what keeps store-replayed CSVs
/// byte-identical to serial runs).
struct FoldSlot {
  std::int32_t index = 0;
  std::uint32_t reserved = 0;
  std::uint64_t accuracy_bits = 0;
};
static_assert(sizeof(FoldSlot) == 16, "FoldSlot layout drifted");

/// One per-device latency: the device name lives in strings.pool.
struct DeviceSlot {
  std::uint64_t name_off = 0;
  std::uint32_t name_len = 0;
  std::uint32_t reserved = 0;
  std::uint64_t ms_bits = 0;
};
static_assert(sizeof(DeviceSlot) == 24, "DeviceSlot layout drifted");

/// Trial status values stored on disk (mirrors nas::TrialStatus).
inline constexpr std::uint32_t kStatusOk = 0;
inline constexpr std::uint32_t kStatusPruned = 1;

/// One fixed-size trial record. Records are append-only: a slot is either
/// all zeroes (never written), torn (CRC fails; only ever beyond the
/// committed counter), or valid.
struct TrialSlot {
  std::uint32_t status = 0;
  std::uint32_t flags = 0;  ///< reserved, always 0
  std::int32_t config[kConfigInts] = {};
  std::uint64_t accuracy_bits = 0;
  std::uint64_t latency_bits = 0;
  std::uint64_t lat_std_bits = 0;
  std::uint64_t memory_bits = 0;
  std::uint64_t key_off = 0;  ///< lattice_key() bytes in strings.pool
  std::uint32_t key_len = 0;
  std::uint32_t fold_count = 0;
  FoldSlot folds[kMaxFolds] = {};
  std::uint32_t device_count = 0;
  std::uint32_t reserved = 0;
  DeviceSlot devices[kMaxDevices] = {};
  std::uint64_t crc = 0;  ///< fnv1a64 of this struct with crc zeroed
};
static_assert(sizeof(TrialSlot) == 568, "TrialSlot layout drifted");

/// The store's single commit point. Fixed 256 bytes so a control update is
/// one sector-aligned pwrite.
struct ControlBlock {
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t record_size = 0;       ///< sizeof(TrialSlot) at write time
  std::uint64_t lattice_fingerprint = 0;  ///< SearchSpaceSpec::fingerprint()
  std::uint32_t chunk_capacity = 0;    ///< records per chunk file
  std::uint32_t reserved0 = 0;
  std::uint64_t committed_records = 0;
  std::uint64_t committed_string_bytes = 0;
  std::uint8_t reserved[200] = {};
  std::uint64_t crc = 0;  ///< fnv1a64 of this struct with crc zeroed
};
static_assert(sizeof(ControlBlock) == 256, "ControlBlock layout drifted");

}  // namespace dcnas::nas::store
