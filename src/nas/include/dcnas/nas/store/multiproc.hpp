#pragma once
/// \file multiproc.hpp
/// \brief Multi-process NAS sweep driver: N forked workers, one store.
///
/// Each worker process streams a stride-sharded slice of the lattice
/// (LatticeStream(spec, worker, workers)) through its own TrialScheduler
/// and commits results to the shared store directory; the store's fcntl
/// lock + write→fsync→publish protocol make concurrent appends safe with
/// no shared memory. Because every (trial, fold) evaluation is a pure
/// function of (config, fold, seed) and doubles travel as bit patterns,
/// the assembled database is byte-identical to the serial run — the PR 5
/// parity contract extended across process boundaries.
///
/// fork() is used directly (not posix_spawn): workers need the caller's
/// evaluator/meter/experiment objects, which are cheap to inherit through
/// fork and expensive to rebuild behind an exec. Call before creating
/// threads (the driver itself is single-threaded; each worker's scheduler
/// pool spawns *after* the fork).

#include <cstdint>
#include <string>

#include "dcnas/nas/scheduler.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nas/store/trial_store.hpp"

namespace dcnas::nas {

struct MultiProcSweepOptions {
  /// Worker processes to fork (>= 1; 1 degenerates to an in-process
  /// streamed run, still through the store).
  int workers = 2;
  /// Per-worker scheduler options. store_dir/store_fingerprint are set by
  /// the driver; journal_path must be empty (the store subsumes it).
  SchedulerOptions scheduler;
};

struct MultiProcSweepStats {
  int workers = 0;
  std::int64_t lattice_size = 0;
  std::uint64_t store_records = 0;  ///< committed records after the sweep
  double wall_seconds = 0.0;
};

/// Sweeps \p spec's whole lattice across \p options.workers forked
/// processes sharing \p store_dir. Returns once every worker has exited;
/// throws InternalError if any worker failed (its stderr tells why), after
/// the surviving workers finished. The store is left complete; use
/// TrialStore::assemble(spec.enumerate()) — or to_database() — for the
/// read view. Safe to re-run over a partial store: workers skip committed
/// trials (crash resume for free).
MultiProcSweepStats run_multiprocess_sweep(const Experiment& experiment,
                                           const SearchSpaceSpec& spec,
                                           const std::string& store_dir,
                                           const MultiProcSweepOptions& options);

}  // namespace dcnas::nas
