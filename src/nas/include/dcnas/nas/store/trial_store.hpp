#pragma once
/// \file trial_store.hpp
/// \brief Chunked, memory-mapped, multi-process trial store — the on-disk
/// source of truth for NAS sweeps (DESIGN.md §14).
///
/// The CSV TrialDatabase materializes every record in memory and rewrites
/// the whole file per save; the PR 5 journal appends text lines but still
/// replays into RAM. Neither survives a 10^5–10^6-point lattice, and
/// neither lets two *processes* share one sweep. The TrialStore does both:
///
///  - fixed-size binary records in preallocated, mmap'd chunk files, so a
///    reader touches only the pages it needs and an appender never rewrites
///    existing bytes;
///  - a 256-byte CRC'd control block as the single commit point, advanced
///    only after record + string bytes are fsynced (write → fsync →
///    publish), so a crash at any instant loses at most the record being
///    written — never a committed one;
///  - an fcntl whole-file lock serializing commits across processes, which
///    makes N workers appending to one store directory safe without any
///    shared memory;
///  - doubles stored as IEEE-754 bit patterns, so a database assembled from
///    the store is *byte-identical* (CSV and FNV-1a hash) to the serial
///    in-memory run — the parity contract the scheduler already enforces,
///    extended across process boundaries.
///
/// TrialDatabase remains the read view for downstream consumers (NSGA-II,
/// bench_fig3, reports): to_database()/assemble() convert on demand.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dcnas/nas/journal.hpp"
#include "dcnas/nas/store/format.hpp"

namespace dcnas::nas {

struct TrialStoreOptions {
  /// Expected SearchSpaceSpec::fingerprint(). Creating a store stamps it
  /// into the control block; opening an existing store with a non-zero
  /// expectation that differs from the stamp throws (a store must not mix
  /// records from different lattices). 0 = accept whatever is stamped.
  std::uint64_t lattice_fingerprint = 0;
  /// Records per chunk file (fixed at creation; reopening with a different
  /// value keeps the stored one).
  std::uint32_t chunk_capacity = store::kDefaultChunkCapacity;
  /// fsync record/pool/control writes on every commit. Keep on outside
  /// tests and benches — it is the crash-safety half of the protocol.
  bool fsync_each = true;
};

/// What open() had to repair (all zero for a cleanly closed store).
struct StoreRecovery {
  std::uint64_t torn_string_bytes = 0;  ///< pool bytes truncated
  std::uint64_t torn_records = 0;       ///< uncommitted slots zeroed
  bool control_rebuilt = false;  ///< counters rebuilt by chunk scan
};

class TrialStore {
 public:
  /// Opens (creating if absent) the store directory, running recovery under
  /// the store lock. Throws InvalidArgument on format/fingerprint mismatch
  /// or unreadable store files.
  explicit TrialStore(std::string dir, const TrialStoreOptions& options = {});
  ~TrialStore();

  TrialStore(const TrialStore&) = delete;
  TrialStore& operator=(const TrialStore&) = delete;

  /// Committed records visible to this handle (call refresh() to see other
  /// processes' commits).
  std::uint64_t size() const { return committed_; }

  /// Records committed by *other* handles since open/last refresh are
  /// loaded into the key index; returns the number of new records seen.
  std::uint64_t refresh();

  /// Decodes committed record \p i (throws on out-of-range or a corrupt
  /// committed slot — which recovery can never legitimately leave behind).
  JournalEntry read(std::uint64_t i) const;

  /// Latest committed entry for a lattice key, or nullptr. Last write wins,
  /// mirroring TrialJournal::find.
  const JournalEntry* find(const std::string& lattice_key) const;

  /// Commits one entry: strings + record + control publish under the store
  /// lock. Safe to call concurrently from multiple processes; within one
  /// process the caller serializes (the scheduler's commit lock).
  void append(const JournalEntry& entry);

  /// All kOk records, deduplicated by key (last wins, first-commit order) —
  /// the TrialDatabase read view for Nsga2 / reports.
  TrialDatabase to_database() const;

  /// Database in \p configs order — the serial-parity view: record i is the
  /// store's entry for configs[i]. Throws when a config is missing; pruned
  /// entries are skipped (matching the scheduler's database contract).
  TrialDatabase assemble(const std::vector<TrialConfig>& configs) const;

  /// Bulk-imports a CSV database (every record committed as kOk with folds
  /// 0..K-1). Existing keys are overwritten by the last-wins find rule.
  void import_database(const TrialDatabase& db);

  /// Bulk-imports every entry of a journal file (the PR 5 → store
  /// migration path).
  void import_journal(const std::string& journal_path);

  const std::string& dir() const { return dir_; }
  const StoreRecovery& recovery() const { return recovery_; }
  std::uint64_t lattice_fingerprint() const { return ctrl_.lattice_fingerprint; }
  std::uint32_t chunk_capacity() const { return ctrl_.chunk_capacity; }
  std::uint64_t string_bytes() const { return ctrl_.committed_string_bytes; }

  /// Serializes an entry into its fixed slot + the string bytes it would
  /// append — exposed for tests that corrupt stores deliberately.
  static store::TrialSlot encode_slot(const JournalEntry& entry,
                                      std::uint64_t string_base,
                                      std::string* string_bytes);

 private:
  struct Chunk;  // mmap'd chunk file

  void lock_file() const;
  void unlock_file() const;
  void load_or_create_control();
  void recover_locked();
  void rebuild_control_locked();
  Chunk& chunk_for(std::uint64_t record_index) const;
  const store::TrialSlot* slot_ptr(std::uint64_t record_index) const;
  JournalEntry decode_slot(const store::TrialSlot& slot) const;
  std::string read_pool(std::uint64_t off, std::uint32_t len) const;
  void write_control();
  void index_records(std::uint64_t from, std::uint64_t to);

  std::string dir_;
  TrialStoreOptions options_;
  StoreRecovery recovery_;
  store::ControlBlock ctrl_;
  std::uint64_t committed_ = 0;  ///< cached ctrl_.committed_records
  int lock_fd_ = -1;
  int ctrl_fd_ = -1;
  int pool_fd_ = -1;
  mutable std::vector<Chunk> chunks_;
  /// lattice_key -> latest committed record index, plus its decoded entry
  /// (find() returns stable pointers like the journal).
  std::map<std::string, JournalEntry> by_key_;
};

}  // namespace dcnas::nas
