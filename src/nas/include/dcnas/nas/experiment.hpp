#pragma once
/// \file experiment.hpp
/// \brief Trial records, the persistent trial database, and the experiment
/// runner that glues evaluator + nn-Meter + memory accounting together —
/// the NNI-equivalent orchestration layer.

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dcnas/common/csv.hpp"
#include "dcnas/common/thread_annotations.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/latency/predictor.hpp"
#include "dcnas/nas/evaluator.hpp"

namespace dcnas::nas {

/// Everything the Pareto analysis needs about one completed trial — the
/// columns of Table 4 plus per-device latencies.
struct TrialRecord {
  TrialConfig config;
  double accuracy = 0.0;  ///< mean 5-fold CV accuracy, percent
  std::vector<double> fold_accuracies;
  double latency_ms = 0.0;  ///< mean over the four predictors
  double lat_std = 0.0;     ///< sample stddev over the four predictors
  std::vector<std::pair<std::string, double>> per_device_ms;
  double memory_mb = 0.0;   ///< serialized model size, decimal MB
};

/// Append-only store of trial results with CSV round-tripping (the
/// experiment artifact equivalent of NNI's trial database).
class TrialDatabase {
 public:
  void add(TrialRecord record);
  const std::vector<TrialRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  const TrialRecord& record(std::size_t i) const;

  /// Best-accuracy record; throws when empty.
  const TrialRecord& best_accuracy() const;

  CsvTable to_csv() const;
  static TrialDatabase from_csv(const CsvTable& table);
  void save(const std::string& path) const;
  static TrialDatabase load(const std::string& path);

 private:
  std::vector<TrialRecord> records_;
};

struct ExperimentOptions {
  std::int64_t deployment_input_hw = graph::kDeploymentInputSize;
  bool log_progress = false;
};

/// Runs trials: evaluator for accuracy, nn-Meter for latency on the four
/// predictors, graph serialization for memory.
class Experiment {
 public:
  Experiment(Evaluator& evaluator, const latency::NnMeter& meter,
             const ExperimentOptions& options = {});

  TrialRecord run_trial(const TrialConfig& config) const;

  /// Serial reference path: evaluates configs one at a time, in order.
  /// TrialScheduler::run (scheduler.hpp) produces a byte-identical database
  /// from a parallel fan-out; this loop stays as the determinism baseline.
  TrialDatabase run_all(const std::vector<TrialConfig>& configs) const;

  /// Fills the latency/memory half of \p r from r.config — the
  /// deterministic non-training objectives (nn-Meter prediction + model
  /// memory). run_trial == evaluator accuracy + this. Thread-safe: builds
  /// only local graphs and queries the (const) meter; results are memoized
  /// per (canonical architecture, precision) under a mutex because the
  /// hardware objectives are independent of batch and fold — on a wide
  /// lattice thousands of trials share each architecture, and rebuilding
  /// the deployment graph per trial dominates a 10^5-point sweep.
  void fill_hardware_objectives(TrialRecord& r) const;

  Evaluator& evaluator() const { return evaluator_; }
  const ExperimentOptions& options() const { return options_; }

 private:
  /// Cached hardware half of a TrialRecord (everything batch-independent).
  struct HwObjectives {
    double latency_ms = 0.0;
    double lat_std = 0.0;
    std::vector<std::pair<std::string, double>> per_device_ms;
    double memory_mb = 0.0;
  };

  Evaluator& evaluator_;
  const latency::NnMeter& meter_;
  ExperimentOptions options_;
  mutable std::mutex hw_cache_mu_;
  mutable std::unordered_map<std::string, HwObjectives> hw_cache_
      GUARDED_BY(hw_cache_mu_);
};

}  // namespace dcnas::nas
