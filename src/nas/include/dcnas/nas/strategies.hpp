#pragma once
/// \file strategies.hpp
/// \brief Search strategies over the Figure 2 space (ask/tell protocol).
///
/// The paper's NNI run exhaustively grids the 288-point space per input
/// combination; grid search is therefore the reference strategy. Random
/// search and regularized evolution (Real et al. 2019) are provided for
/// the sample-efficiency ablation bench.

#include <deque>
#include <map>
#include <vector>

#include "dcnas/nas/search_space.hpp"

namespace dcnas::nas {

/// Ask/tell search driver: ask() yields the next configuration to evaluate,
/// tell() reports its fitness (higher is better).
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  virtual TrialConfig ask() = 0;
  virtual void tell(const TrialConfig& config, double fitness) = 0;
  /// True when the strategy has nothing new to propose.
  virtual bool exhausted() const = 0;
  virtual std::string name() const = 0;
};

/// Exhaustive enumeration in lattice order (the paper's protocol).
class GridStrategy : public SearchStrategy {
 public:
  GridStrategy(int channels, int batch);
  TrialConfig ask() override;
  void tell(const TrialConfig&, double) override {}
  bool exhausted() const override { return cursor_ >= lattice_.size(); }
  std::string name() const override { return "grid"; }

 private:
  std::vector<TrialConfig> lattice_;
  std::size_t cursor_ = 0;
};

/// Uniform sampling without replacement.
class RandomStrategy : public SearchStrategy {
 public:
  RandomStrategy(int channels, int batch, std::uint64_t seed);
  TrialConfig ask() override;
  void tell(const TrialConfig&, double) override {}
  bool exhausted() const override { return cursor_ >= lattice_.size(); }
  std::string name() const override { return "random"; }

 private:
  std::vector<TrialConfig> lattice_;  // shuffled
  std::size_t cursor_ = 0;
};

/// Regularized (aging) evolution: tournament-select a parent from the
/// population, mutate one architecture dimension, retire the oldest member.
class EvolutionStrategy : public SearchStrategy {
 public:
  struct Options {
    std::size_t population_size = 24;
    std::size_t tournament_size = 6;
    std::uint64_t seed = 1;
  };
  EvolutionStrategy(int channels, int batch, const Options& options);

  TrialConfig ask() override;
  void tell(const TrialConfig& config, double fitness) override;
  bool exhausted() const override { return false; }  // anytime algorithm
  std::string name() const override { return "evolution"; }

  /// Mutates exactly one randomly chosen dimension (exposed for tests).
  TrialConfig mutate(const TrialConfig& parent, Rng& rng) const;

 private:
  struct Member {
    TrialConfig config;
    double fitness = 0.0;
  };
  int channels_, batch_;
  Options options_;
  Rng rng_;
  std::deque<Member> population_;  // front = oldest
};

}  // namespace dcnas::nas
