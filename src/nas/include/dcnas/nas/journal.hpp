#pragma once
/// \file journal.hpp
/// \brief Crash-safe resume journal for NAS searches.
///
/// The paper's six NNI experiments together evaluate 1,728 trials; losing a
/// half-finished sweep to a crash or preemption means repeating days of
/// training. The journal makes `TrialScheduler::run` resumable: every
/// completed (or pruned) trial is appended as one self-checksummed line and
/// fsynced before the trial is committed to the in-memory database, so an
/// interrupted search re-evaluates only the configs the journal does not
/// already hold.
///
/// Format (text, one record per line):
///
///   dcnas-trial-journal v1
///   J1,<status>,<lattice_key>,<9 config ints>,<accuracy>,<latency_ms>,
///      <lat_std>,<memory_mb>,<fold:acc;...>,<device=ms;...>,<crc64>
///
/// Doubles use shortest-round-trip formatting (format_double_roundtrip), so
/// a resumed database is bit-identical to an uninterrupted run's. The crc
/// field is the FNV-1a 64 hash of everything before it on the line; a torn
/// final line (the only damage a crash between write and fsync can leave)
/// fails the checksum, is dropped on load, and is truncated away before new
/// appends so the file never accumulates garbage mid-stream.
///
/// Pruned entries record only the folds that completed before the
/// median-stop rule fired (as explicit fold:accuracy pairs). They are
/// resumable only by schedulers that also run with pruning enabled;
/// exact-reproduction runs re-evaluate them in full (see scheduler.hpp).

#include <cstdio>
#include <map>
#include <optional>
#include <string>

#include "dcnas/nas/experiment.hpp"

namespace dcnas::nas {

/// Outcome a journal line records for one trial.
enum class TrialStatus { kOk, kPruned };

struct JournalEntry {
  TrialStatus status = TrialStatus::kOk;
  TrialRecord record;  ///< fold_accuracies is partial when pruned
  /// Fold indices actually evaluated, aligned with record.fold_accuracies
  /// (0..K-1 in order for kOk; the completed subset for kPruned).
  std::vector<int> fold_indices;
};

/// Append-only, fsync-per-record trial journal keyed by lattice_key().
/// Not thread-safe: the scheduler serializes appends through its ordered
/// commit lock.
class TrialJournal {
 public:
  /// Opens or creates the journal, replaying existing valid entries. The
  /// file is truncated to its last valid line first (dropping a torn tail).
  /// Throws InvalidArgument when the file exists but is not a v1 journal.
  /// \p fsync_each: fsync after every append (crash safety); tests may
  /// disable it for speed.
  explicit TrialJournal(std::string path, bool fsync_each = true);
  ~TrialJournal();

  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

  /// Entries replayed from disk at open time.
  std::size_t replayed() const { return replayed_; }

  /// Total entries (replayed + appended), deduplicated by key (last wins).
  std::size_t size() const { return entries_.size(); }

  /// Looks up a completed trial by its config's lattice_key().
  const JournalEntry* find(const std::string& lattice_key) const;

  /// All entries keyed by lattice_key (the journal → TrialStore migration
  /// path iterates this).
  const std::map<std::string, JournalEntry>& entries() const {
    return entries_;
  }

  /// Appends one entry and flushes it to disk (fsync when enabled).
  void append(const JournalEntry& entry);

  const std::string& path() const { return path_; }

  /// Serialized form of one entry (the journal line, no newline) — exposed
  /// for tests that corrupt/truncate journals deliberately.
  static std::string encode_line(const JournalEntry& entry);
  /// Parses one line; std::nullopt when malformed or checksum fails.
  static std::optional<JournalEntry> decode_line(const std::string& line);

 private:
  std::string path_;
  bool fsync_each_;
  std::FILE* file_ = nullptr;
  std::size_t replayed_ = 0;
  std::map<std::string, JournalEntry> entries_;
};

}  // namespace dcnas::nas
