#pragma once
/// \file model_file.hpp
/// \brief Binary model-file format ("DCNX") — the deployable artifact whose
/// on-disk size is the paper's memory objective.
///
/// Layout (little-endian, fp32 payloads):
///   magic "DCNX" | u32 version | u32 node count
///   per node: u8 kind | u8 state flags | u16 name length | name bytes
///             3 x i32 attrs | 6 x i32 shapes | i32 input indices
///             per present tensor: u32 numel | numel x f32
/// The writer emits exactly the state the GraphExecutor binds (conv
/// weights, optional folded bias, BN gamma/beta/mean/var, linear
/// weight+bias), so save -> parse -> run reproduces inference bit-exactly
/// without the original nn module. serialize.hpp's size *estimate* is
/// validated against this writer's true byte count in
/// tests/graph/model_file_test.cpp.

#include <string>
#include <vector>

#include "dcnas/graph/executor.hpp"

namespace dcnas::graph {

/// Serializes an executor's graph + weights; returns the byte buffer.
std::vector<unsigned char> serialize_model(const GraphExecutor& executor);

/// Writes the model file; returns the file size in bytes.
std::int64_t save_model(const GraphExecutor& executor,
                        const std::string& path);

/// Reconstructs a runnable executor from a serialized buffer. The graph is
/// rebuilt exactly as the file claims it and then passed through
/// analysis::GraphVerifier (verify-on-load), so this throws InvalidArgument
/// on malformed data (bad magic, truncation) *and* on structurally-valid-
/// but-semantically-corrupt files (falsified shape annotations, dangling
/// inputs, absurd conv geometry, ...).
GraphExecutor parse_model(const std::vector<unsigned char>& bytes);

/// Parses only the graph structure, exactly as the file claims it, with no
/// verification and no weight binding. For diagnostic tools (dcnas_lint)
/// that want to *report* a corrupt file's defects rather than reject at the
/// first one; never build an executor from the result without verifying.
ModelGraph parse_model_graph(const std::vector<unsigned char>& bytes);

/// Loads a model file written by save_model.
GraphExecutor load_model(const std::string& path);

}  // namespace dcnas::graph
