#pragma once
/// \file ir.hpp
/// \brief Operator-level intermediate representation of a model.
///
/// The IR is the hardware-facing twin of the nn::Module tree: the latency
/// predictor, memory accounting, and kernel fusion all operate on this
/// graph rather than on live layers, mirroring how nn-Meter consumes an
/// exported ONNX/TFLite graph rather than the PyTorch module.

#include <cstdint>
#include <string>
#include <vector>

#include "dcnas/common/error.hpp"

namespace dcnas::graph {

enum class OpKind {
  kInput,
  kConv,
  kBatchNorm,
  kRelu,
  kMaxPool,
  kGlobalAvgPool,
  kAdd,
  kLinear,
  kOutput,
};

const char* op_kind_name(OpKind kind);

/// Numeric precision of a kernel's weights (QUANTIZATION.md). Activations
/// stay fp32 between kernels in either mode: the int8 path quantizes its
/// input on the fly and requantizes to fp32 in the epilogue.
enum class Precision {
  kFp32,
  kInt8,
};

const char* precision_name(Precision p);

/// Activation shape excluding the batch dimension (C, H, W). Linear layers
/// use (features, 1, 1).
struct ActShape {
  std::int64_t c = 0;
  std::int64_t h = 1;
  std::int64_t w = 1;

  std::int64_t numel() const { return c * h * w; }
  bool operator==(const ActShape&) const = default;
  std::string to_string() const;
};

/// Convolution/pooling geometry. Unused fields stay zero.
struct OpAttrs {
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
};

struct GraphNode {
  OpKind kind = OpKind::kInput;
  std::string name;
  std::vector<int> inputs;   ///< indices of producer nodes
  OpAttrs attrs;
  ActShape in_shape;         ///< shape of inputs[0]'s output
  ActShape out_shape;
  std::int64_t params = 0;   ///< learnable scalars owned by this op
  std::int64_t flops = 0;    ///< batch-1 forward FLOPs (2 per MAC)
};

/// A topologically ordered DAG of operators with shape/FLOPs annotations.
/// Nodes are appended in execution order; add_* helpers infer shapes.
class ModelGraph {
 public:
  /// Adopts \p nodes verbatim — annotations included — with no checking.
  /// For deserializers and the verifier's corruption harness only: callers
  /// must run analysis::GraphVerifier (or verify_or_throw) on the result
  /// before trusting it, because nothing here re-infers shapes or FLOPs.
  static ModelGraph from_nodes(std::vector<GraphNode> nodes);

  /// Starts the graph with its input activation.
  int add_input(ActShape shape, const std::string& name = "input");

  int add_conv(int input, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding,
               const std::string& name);
  int add_batchnorm(int input, const std::string& name);
  int add_relu(int input, const std::string& name);
  int add_maxpool(int input, std::int64_t kernel, std::int64_t stride,
                  std::int64_t padding, const std::string& name);
  int add_global_avgpool(int input, const std::string& name);
  int add_add(int lhs, int rhs, const std::string& name);
  int add_linear(int input, std::int64_t out_features,
                 const std::string& name);
  int add_output(int input, const std::string& name = "output");

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const GraphNode& node(int i) const;
  std::size_t size() const { return nodes_.size(); }

  /// Consumers of each node (inverse adjacency), recomputed on demand.
  std::vector<std::vector<int>> consumers() const;

  std::int64_t total_params() const;
  std::int64_t total_flops() const;

  /// Peak of the largest single activation (bytes, fp32) — a deployment
  /// memory indicator alongside the model-file size.
  std::int64_t max_activation_bytes() const;

  /// Structural validation: topological input references, an input node
  /// first, an output node present, shape consistency on Add.
  void validate() const;

  /// Multi-line human-readable dump (used by examples and Figure 1 bench).
  std::string to_string() const;

 private:
  int append(GraphNode node);

  /// Resolves a builder input index, naming the node under construction
  /// (\p consumer) in the error so diagnostics read like the verifier's.
  const GraphNode& checked_input(int index, const std::string& consumer) const;

  std::vector<GraphNode> nodes_;
};

}  // namespace dcnas::graph
