#pragma once
/// \file serialize.hpp
/// \brief Serialized-model size accounting — the paper's "memory" objective.
///
/// The paper measures "the memory requirement to store the model in the
/// onnx file format" in (decimal) megabytes: stock ResNet-18 with 11.18 M
/// parameters reports 44.71 MB, i.e. MB = bytes / 1e6 with 4 bytes per fp32
/// scalar. We model the file as fp32 initializers (including BatchNorm
/// running statistics, which ONNX exports) plus small per-node and header
/// overheads.

#include <cstdint>

#include "dcnas/graph/ir.hpp"

namespace dcnas::graph {

struct SizeBreakdown {
  std::int64_t initializer_bytes = 0;  ///< 4 * serialized parameters
  std::int64_t structure_bytes = 0;    ///< node records, names, attributes
  std::int64_t header_bytes = 0;

  std::int64_t total_bytes() const {
    return initializer_bytes + structure_bytes + header_bytes;
  }
  /// Decimal megabytes, the unit of the paper's memory columns.
  double total_mb() const { return static_cast<double>(total_bytes()) / 1e6; }
};

SizeBreakdown serialized_size(const ModelGraph& graph);

/// Precision-aware variant: with Precision::kInt8, conv weights count 1
/// byte per scalar plus one fp32 scale per output channel (per-channel
/// symmetric quantization, QUANTIZATION.md); BN statistics and the Linear
/// head stay fp32. Precision::kFp32 matches the unqualified overload.
SizeBreakdown serialized_size(const ModelGraph& graph, Precision precision);

/// Shorthand used by the NAS pipeline.
double model_memory_mb(const ModelGraph& graph);
double model_memory_mb(const ModelGraph& graph, Precision precision);

}  // namespace dcnas::graph
