#pragma once
/// \file fusion.hpp
/// \brief Kernel fusion — nn-Meter's key insight, reimplemented.
///
/// Edge inference runtimes execute *fused kernels*, not single operators:
/// Conv+BatchNorm+ReLU run as one kernel, the residual Add fuses with its
/// trailing ReLU, and so on. nn-Meter showed that predicting latency at the
/// kernel level (after applying the backend's fusion rules) is what makes
/// model-level prediction accurate. This pass turns a ModelGraph into the
/// fused kernel sequence our device simulator and predictors consume.

#include <cstdint>
#include <string>
#include <vector>

#include "dcnas/graph/ir.hpp"

namespace dcnas::graph {

enum class KernelKind {
  kConvBnRelu,
  kConvBn,       ///< residual-branch tail: BN folded, no activation
  kConvRelu,
  kConv,
  kMaxPool,
  kGlobalAvgPool,
  kAddRelu,
  kAdd,
  kRelu,
  kBatchNorm,
  kLinear,
};

const char* kernel_kind_name(KernelKind kind);
constexpr int kNumKernelKinds = 11;

/// One fused executable kernel with the features latency models need.
struct FusedKernel {
  KernelKind kind = KernelKind::kConv;
  std::string name;
  ActShape in_shape;
  ActShape out_shape;
  OpAttrs attrs;          ///< conv/pool geometry when applicable
  std::int64_t flops = 0;
  std::int64_t params = 0;
  /// Weight precision (QUANTIZATION.md): int8 kernels store 1 byte per
  /// weight plus one fp32 scale per output channel. Activations stream as
  /// fp32 in both modes, so input/output traffic is unchanged.
  Precision precision = Precision::kFp32;

  /// Graph nodes absorbed into this kernel, in execution order (the first
  /// is the primary op, the last produces the kernel's output). The plan
  /// compiler uses this provenance to bind weights and wire data flow, so
  /// fusion rules live in exactly one place: fuse_graph().
  std::vector<int> nodes;

  /// Memory traffic in bytes assuming fp32 activations and weights.
  /// Elementwise Add kernels read two operand activations.
  std::int64_t input_bytes() const {
    const std::int64_t base = 4 * in_shape.numel();
    return (kind == KernelKind::kAdd || kind == KernelKind::kAddRelu)
               ? 2 * base
               : base;
  }
  std::int64_t output_bytes() const { return 4 * out_shape.numel(); }
  std::int64_t weight_bytes() const {
    return precision == Precision::kInt8 ? params + 4 * out_shape.c
                                         : 4 * params;
  }
  std::int64_t total_bytes() const {
    return input_bytes() + output_bytes() + weight_bytes();
  }
};

/// Applies the fusion rules and returns kernels in execution order.
/// Rules (applied greedily along single-consumer chains):
///   Conv -> BN -> ReLU  =>  ConvBnRelu
///   Conv -> BN          =>  ConvBn
///   Conv -> ReLU        =>  ConvRelu
///   Add  -> ReLU        =>  AddRelu
/// BatchNorm folding removes the BN's FLOPs (it becomes a scale/bias baked
/// into the conv weights) but keeps its parameters for size accounting.
std::vector<FusedKernel> fuse_graph(const ModelGraph& graph);

/// Sum of kernel FLOPs after fusion (BN folded away).
std::int64_t fused_flops(const std::vector<FusedKernel>& kernels);

/// Marks the conv-family kernels (the ones the quantized serving path
/// actually runs in int8) with \p p; pools, adds, BN and the Linear head
/// stay fp32, matching PlanCompiler's quantization scope.
void set_kernels_precision(std::vector<FusedKernel>& kernels, Precision p);

}  // namespace dcnas::graph
