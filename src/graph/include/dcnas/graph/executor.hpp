#pragma once
/// \file executor.hpp
/// \brief A minimal deployment runtime: executes a ModelGraph directly
/// (eval-mode inference) with optional BatchNorm folding.
///
/// This is the twin of the latency layer's assumption that edge runtimes
/// fold Conv+BN into one kernel: fold_batchnorm() performs the standard
/// rewrite  w' = w·γ/√(σ²+ε),  b' = β − γ·μ/√(σ²+ε)  and the executor then
/// runs the exact fused computation. Tests verify bit-level agreement with
/// the live nn::ConfigurableResNet in eval mode, before and after folding.

#include <optional>
#include <vector>

#include "dcnas/graph/ir.hpp"
#include "dcnas/nn/resnet.hpp"
#include "dcnas/tensor/tensor.hpp"

namespace dcnas::graph {

/// Inference weights for one graph node (only the kinds that carry state).
struct NodeState {
  Tensor conv_weight;           ///< Conv: (OC, IC·k·k)
  std::optional<Tensor> bias;   ///< Conv after folding, or Linear bias
  Tensor bn_gamma, bn_beta, bn_mean, bn_var;  ///< BatchNorm
  Tensor linear_weight;         ///< Linear: (out, in)
};

class GraphExecutor {
 public:
  /// Binds a graph to the state of a live model. The model must have been
  /// built from the same ResNetConfig that produced the graph (layer order
  /// is matched positionally and shapes are cross-checked).
  GraphExecutor(ModelGraph graph, nn::ConfigurableResNet& model);

  /// Runs batch inference (NCHW). BatchNorm uses running statistics.
  ///
  /// Thread safety: run() is const and reentrant. All per-invocation
  /// scratch (the im2col column buffer, intermediate activations) lives on
  /// the calling thread's stack, and the executor's own state (graph,
  /// weights, identity flags) is only read — so any number of threads may
  /// run() one executor concurrently (the serving subsystem relies on
  /// this). The mutating calls, fold_batchnorm() and destruction, must be
  /// externally synchronized against concurrent run() calls: fold before
  /// sharing the executor across threads.
  Tensor run(const Tensor& input) const;

  /// Folds every Conv->BatchNorm pair (BN the conv's sole consumer) into
  /// the convolution; folded BN nodes become identity passthroughs.
  /// Idempotent.
  void fold_batchnorm();
  bool folded() const { return folded_; }

  /// Number of BN nodes folded away so far.
  int folded_batchnorms() const { return folded_count_; }

  const ModelGraph& graph() const { return graph_; }

  /// Raw state access for serialization (model_file.hpp) and for the plan
  /// compiler (plan/compiler.hpp), which folds with the same epsilon.
  const std::vector<NodeState>& node_states() const { return state_; }
  const std::vector<bool>& identity_flags() const { return identity_; }
  float bn_eps() const { return bn_eps_; }

  /// Reassembles an executor from serialized state (no nn module needed).
  static GraphExecutor from_state(ModelGraph graph,
                                  std::vector<NodeState> state,
                                  std::vector<bool> identity);

 private:
  GraphExecutor() = default;
  Tensor run_node(int index, const std::vector<Tensor>& outputs,
                  const Tensor& input) const;

  ModelGraph graph_;
  std::vector<NodeState> state_;      ///< indexed by node
  std::vector<bool> identity_;        ///< BN nodes folded into producers
  float bn_eps_ = 1e-5f;
  bool folded_ = false;
  int folded_count_ = 0;
};

}  // namespace dcnas::graph
