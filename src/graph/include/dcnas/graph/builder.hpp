#pragma once
/// \file builder.hpp
/// \brief Constructs the IR graph for any ResNetConfig in the NAS search
/// space — the exact op sequence ConfigurableResNet executes.

#include "dcnas/graph/ir.hpp"
#include "dcnas/nn/resnet.hpp"

namespace dcnas::graph {

/// Spatial size (pixels per side) at which models are deployed and at which
/// nn-Meter-style latency is predicted. The paper's chips are 1 m resolution
/// clips; we standardize deployment inference to 224x224 like the stock
/// ResNet-18 input contract.
inline constexpr std::int64_t kDeploymentInputSize = 224;

/// Builds the op graph for \p config at the given input spatial size.
ModelGraph build_resnet_graph(const nn::ResNetConfig& config,
                              std::int64_t input_hw = kDeploymentInputSize);

}  // namespace dcnas::graph
