#include "dcnas/graph/fusion.hpp"

namespace dcnas::graph {

const char* kernel_kind_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kConvBnRelu: return "conv-bn-relu";
    case KernelKind::kConvBn: return "conv-bn";
    case KernelKind::kConvRelu: return "conv-relu";
    case KernelKind::kConv: return "conv";
    case KernelKind::kMaxPool: return "maxpool";
    case KernelKind::kGlobalAvgPool: return "global-avgpool";
    case KernelKind::kAddRelu: return "add-relu";
    case KernelKind::kAdd: return "add";
    case KernelKind::kRelu: return "relu";
    case KernelKind::kBatchNorm: return "batchnorm";
    case KernelKind::kLinear: return "linear";
  }
  return "?";
}

std::vector<FusedKernel> fuse_graph(const ModelGraph& graph) {
  graph.validate();
  const auto& nodes = graph.nodes();
  const auto consumers = graph.consumers();
  std::vector<FusedKernel> kernels;
  std::vector<bool> consumed(nodes.size(), false);

  // A node can only fuse into its producer when it is that producer's sole
  // consumer (otherwise the intermediate activation must materialize).
  auto sole_consumer = [&](int i, OpKind kind) -> int {
    const auto& cons = consumers[static_cast<std::size_t>(i)];
    if (cons.size() != 1) return -1;
    const int c = cons[0];
    return nodes[static_cast<std::size_t>(c)].kind == kind ? c : -1;
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (consumed[i]) continue;
    const GraphNode& n = nodes[i];
    FusedKernel k;
    k.name = n.name;
    k.in_shape = n.in_shape;
    k.out_shape = n.out_shape;
    k.attrs = n.attrs;
    k.flops = n.flops;
    k.params = n.params;
    k.nodes.push_back(static_cast<int>(i));
    switch (n.kind) {
      case OpKind::kInput:
      case OpKind::kOutput:
        continue;  // structural, no kernel
      case OpKind::kConv: {
        k.kind = KernelKind::kConv;
        int idx = static_cast<int>(i);
        const int bn = sole_consumer(idx, OpKind::kBatchNorm);
        if (bn >= 0) {
          // Fold BN: weights absorb scale/bias, so no extra FLOPs; running
          // stats are folded away in the deployed artifact, but we keep the
          // gamma/beta parameter count with the conv for traceability.
          consumed[static_cast<std::size_t>(bn)] = true;
          k.kind = KernelKind::kConvBn;
          k.params += nodes[static_cast<std::size_t>(bn)].params;
          k.nodes.push_back(bn);
          idx = bn;
        }
        const int relu = sole_consumer(idx, OpKind::kRelu);
        if (relu >= 0) {
          consumed[static_cast<std::size_t>(relu)] = true;
          k.flops += nodes[static_cast<std::size_t>(relu)].flops;
          k.kind = (k.kind == KernelKind::kConvBn) ? KernelKind::kConvBnRelu
                                                   : KernelKind::kConvRelu;
          k.nodes.push_back(relu);
        }
        break;
      }
      case OpKind::kAdd: {
        k.kind = KernelKind::kAdd;
        const int relu = sole_consumer(static_cast<int>(i), OpKind::kRelu);
        if (relu >= 0) {
          consumed[static_cast<std::size_t>(relu)] = true;
          k.flops += nodes[static_cast<std::size_t>(relu)].flops;
          k.kind = KernelKind::kAddRelu;
          k.nodes.push_back(relu);
        }
        // Add reads two input activations.
        k.in_shape = n.in_shape;
        break;
      }
      case OpKind::kBatchNorm:
        k.kind = KernelKind::kBatchNorm;
        break;
      case OpKind::kRelu:
        k.kind = KernelKind::kRelu;
        break;
      case OpKind::kMaxPool:
        k.kind = KernelKind::kMaxPool;
        break;
      case OpKind::kGlobalAvgPool:
        k.kind = KernelKind::kGlobalAvgPool;
        break;
      case OpKind::kLinear:
        k.kind = KernelKind::kLinear;
        break;
    }
    kernels.push_back(std::move(k));
  }
  return kernels;
}

std::int64_t fused_flops(const std::vector<FusedKernel>& kernels) {
  std::int64_t n = 0;
  for (const auto& k : kernels) n += k.flops;
  return n;
}

void set_kernels_precision(std::vector<FusedKernel>& kernels, Precision p) {
  for (auto& k : kernels) {
    switch (k.kind) {
      case KernelKind::kConv:
      case KernelKind::kConvRelu:
      case KernelKind::kConvBn:
      case KernelKind::kConvBnRelu:
        k.precision = p;
        break;
      default:
        break;
    }
  }
}

}  // namespace dcnas::graph
