#include "dcnas/graph/executor.hpp"

#include <cmath>

#include "dcnas/common/strings.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"
#include "dcnas/tensor/gemm.hpp"
#include "dcnas/tensor/im2col.hpp"
#include "dcnas/tensor/ops.hpp"

namespace dcnas::graph {

GraphExecutor::GraphExecutor(ModelGraph graph, nn::ConfigurableResNet& model)
    : graph_(std::move(graph)) {
  graph_.validate();
  state_.resize(graph_.size());
  identity_.assign(graph_.size(), false);

  // Positional binding: the graph builder and the nn model emit layers in
  // the same order, so conv weights / BN tensors / linear weights can be
  // consumed with independent cursors. Shapes are checked as we go.
  const auto params = model.parameters();
  const auto buffers = model.buffers();
  std::size_t p = 0;  // cursor into params
  std::size_t b = 0;  // cursor into buffers

  auto take_param = [&](const char* what,
                        std::int64_t expected_numel) -> Tensor {
    DCNAS_CHECK(p < params.size(), std::string("model ran out of parameters "
                                               "binding ") += what);
    DCNAS_CHECK(params[p].value->numel() == expected_numel,
                std::string("parameter shape mismatch binding ") + what +
                    " (" + params[p].name + ")");
    return *params[p++].value;
  };
  auto take_buffer = [&](const char* what,
                         std::int64_t expected_numel) -> Tensor {
    DCNAS_CHECK(b < buffers.size(), std::string("model ran out of buffers "
                                                "binding ") += what);
    DCNAS_CHECK(buffers[b].value->numel() == expected_numel,
                std::string("buffer shape mismatch binding ") + what);
    return *buffers[b++].value;
  };

  for (std::size_t i = 0; i < graph_.size(); ++i) {
    const GraphNode& n = graph_.nodes()[i];
    NodeState& st = state_[i];
    switch (n.kind) {
      case OpKind::kConv:
        st.conv_weight = take_param(
            "conv weight",
            n.out_shape.c * n.in_shape.c * n.attrs.kernel * n.attrs.kernel);
        break;
      case OpKind::kBatchNorm:
        st.bn_gamma = take_param("bn gamma", n.out_shape.c);
        st.bn_beta = take_param("bn beta", n.out_shape.c);
        st.bn_mean = take_buffer("bn running mean", n.out_shape.c);
        st.bn_var = take_buffer("bn running var", n.out_shape.c);
        break;
      case OpKind::kLinear:
        st.linear_weight =
            take_param("linear weight", n.in_shape.numel() * n.out_shape.c);
        st.bias = take_param("linear bias", n.out_shape.c);
        break;
      default:
        break;
    }
  }
  DCNAS_CHECK(p == params.size(),
              "model has unbound parameters (graph/model mismatch)");
  DCNAS_CHECK(b == buffers.size(),
              "model has unbound buffers (graph/model mismatch)");
}

GraphExecutor GraphExecutor::from_state(ModelGraph graph,
                                        std::vector<NodeState> state,
                                        std::vector<bool> identity) {
  graph.validate();
  DCNAS_CHECK(state.size() == graph.size() && identity.size() == graph.size(),
              "executor state size mismatch");
  GraphExecutor exec;
  exec.graph_ = std::move(graph);
  exec.state_ = std::move(state);
  exec.identity_ = std::move(identity);
  for (bool id : exec.identity_) exec.folded_count_ += id ? 1 : 0;
  exec.folded_ = exec.folded_count_ > 0;
  return exec;
}

void GraphExecutor::fold_batchnorm() {
  const auto consumers = graph_.consumers();
  for (std::size_t i = 0; i < graph_.size(); ++i) {
    const GraphNode& n = graph_.nodes()[i];
    if (n.kind != OpKind::kConv) continue;
    const auto& cons = consumers[i];
    if (cons.size() != 1) continue;
    const int bn_idx = cons[0];
    const GraphNode& bn = graph_.node(bn_idx);
    if (bn.kind != OpKind::kBatchNorm) continue;
    if (identity_[static_cast<std::size_t>(bn_idx)]) continue;

    NodeState& conv_st = state_[i];
    const NodeState& bn_st = state_[static_cast<std::size_t>(bn_idx)];
    const std::int64_t oc = n.out_shape.c;
    const std::int64_t row = n.in_shape.c * n.attrs.kernel * n.attrs.kernel;
    Tensor bias({oc});
    for (std::int64_t c = 0; c < oc; ++c) {
      const float inv_std =
          1.0f / std::sqrt(bn_st.bn_var[c] + bn_eps_);
      const float scale = bn_st.bn_gamma[c] * inv_std;
      float* w_row = conv_st.conv_weight.data() + c * row;
      for (std::int64_t j = 0; j < row; ++j) w_row[j] *= scale;
      bias[c] = bn_st.bn_beta[c] - bn_st.bn_mean[c] * scale;
    }
    conv_st.bias = std::move(bias);
    identity_[static_cast<std::size_t>(bn_idx)] = true;
    ++folded_count_;
  }
  folded_ = true;
}

Tensor GraphExecutor::run_node(int index, const std::vector<Tensor>& outputs,
                               const Tensor& input) const {
  const GraphNode& n = graph_.node(index);
  auto in = [&](int slot) -> const Tensor& {
    const int src = n.inputs[static_cast<std::size_t>(slot)];
    return src == 0 ? input : outputs[static_cast<std::size_t>(src)];
  };
  const NodeState& st = state_[static_cast<std::size_t>(index)];
  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kOutput:
      throw InternalError("structural node executed");
    case OpKind::kConv: {
      const Tensor& x = in(0);
      const std::int64_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
      DCNAS_CHECK(x.dim(1) == n.in_shape.c, "conv input channel mismatch");
      const std::int64_t oh =
          conv_out_size(h, n.attrs.kernel, n.attrs.stride, n.attrs.padding);
      const std::int64_t ow =
          conv_out_size(w, n.attrs.kernel, n.attrs.stride, n.attrs.padding);
      const std::int64_t rows = n.in_shape.c * n.attrs.kernel * n.attrs.kernel;
      Tensor out({batch, n.out_shape.c, oh, ow});
      std::vector<float> col(static_cast<std::size_t>(rows * oh * ow));
      for (std::int64_t s = 0; s < batch; ++s) {
        im2col(x.data() + s * n.in_shape.c * h * w, n.in_shape.c, h, w,
               n.attrs.kernel, n.attrs.stride, n.attrs.padding, col.data());
        float* o = out.data() + s * n.out_shape.c * oh * ow;
        gemm(n.out_shape.c, oh * ow, rows, 1.0f, st.conv_weight.data(),
             col.data(), 0.0f, o);
        if (st.bias) {
          for (std::int64_t c = 0; c < n.out_shape.c; ++c) {
            const float bias_c = (*st.bias)[c];
            float* row_ptr = o + c * oh * ow;
            for (std::int64_t j = 0; j < oh * ow; ++j) row_ptr[j] += bias_c;
          }
        }
      }
      return out;
    }
    case OpKind::kBatchNorm: {
      const Tensor& x = in(0);
      if (identity_[static_cast<std::size_t>(index)]) return x;
      Tensor out(x.shape());
      const std::int64_t c_count = x.dim(1), hw = x.dim(2) * x.dim(3);
      for (std::int64_t s = 0; s < x.dim(0); ++s) {
        for (std::int64_t c = 0; c < c_count; ++c) {
          const float inv_std = 1.0f / std::sqrt(st.bn_var[c] + bn_eps_);
          const float scale = st.bn_gamma[c] * inv_std;
          const float shift = st.bn_beta[c] - st.bn_mean[c] * scale;
          const float* xi = x.data() + (s * c_count + c) * hw;
          float* oi = out.data() + (s * c_count + c) * hw;
          for (std::int64_t j = 0; j < hw; ++j) oi[j] = xi[j] * scale + shift;
        }
      }
      return out;
    }
    case OpKind::kRelu: {
      Tensor out = in(0);
      relu_inplace(out, nullptr);
      return out;
    }
    case OpKind::kMaxPool:
      return maxpool2d_forward(in(0), n.attrs.kernel, n.attrs.stride,
                               n.attrs.padding, nullptr);
    case OpKind::kGlobalAvgPool:
      return global_avgpool_forward(in(0));
    case OpKind::kAdd:
      return in(0).added(in(1));
    case OpKind::kLinear: {
      const Tensor& x = in(0);
      const std::int64_t batch = x.dim(0);
      const std::int64_t in_f = n.in_shape.numel();
      Tensor out({batch, n.out_shape.c});
      gemm_bt(batch, n.out_shape.c, in_f, 1.0f, x.data(),
              st.linear_weight.data(), 0.0f, out.data());
      for (std::int64_t s = 0; s < batch; ++s) {
        for (std::int64_t c = 0; c < n.out_shape.c; ++c) {
          out.at(s, c) += (*st.bias)[c];
        }
      }
      return out;
    }
  }
  throw InternalError("unhandled op kind in executor");
}

Tensor GraphExecutor::run(const Tensor& input) const {
  DCNAS_CHECK(input.ndim() == 4 &&
                  input.dim(1) == graph_.nodes().front().out_shape.c,
              "executor input shape mismatch");
  obs::Span span("graph", "graph.execute");
  if (span.armed()) span.arg("rows", input.dim(0));
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("graph.executor.run.count");
  static obs::Histogram& batch_rows =
      obs::MetricsRegistry::global().histogram(
          "graph.executor.batch_rows", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  runs.add(1);
  batch_rows.observe(static_cast<double>(input.dim(0)));
  std::vector<Tensor> outputs(graph_.size());
  Tensor result;
  for (std::size_t i = 1; i < graph_.size(); ++i) {
    const GraphNode& n = graph_.nodes()[i];
    if (n.kind == OpKind::kOutput) {
      const int src = n.inputs.front();
      result = src == 0 ? input : outputs[static_cast<std::size_t>(src)];
      continue;
    }
    outputs[i] = run_node(static_cast<int>(i), outputs, input);
  }
  DCNAS_CHECK(!result.empty(), "graph produced no output");
  return result;
}

}  // namespace dcnas::graph
