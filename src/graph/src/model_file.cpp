#include "dcnas/graph/model_file.hpp"

#include <cstring>
#include <fstream>

namespace dcnas::graph {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'N', 'X'};
constexpr std::uint32_t kVersion = 1;

// State-presence flags per node.
constexpr std::uint8_t kHasConv = 1u << 0;
constexpr std::uint8_t kHasBias = 1u << 1;
constexpr std::uint8_t kHasBn = 1u << 2;
constexpr std::uint8_t kHasLinear = 1u << 3;
constexpr std::uint8_t kIsIdentity = 1u << 4;

class Writer {
 public:
  explicit Writer(std::vector<unsigned char>& out) : out_(out) {}
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f32s(const Tensor& t) {
    u32(static_cast<std::uint32_t>(t.numel()));
    raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  }
  void bytes(const std::string& s) {
    DCNAS_CHECK(s.size() <= 0xFFFF, "node name too long to serialize");
    u16(static_cast<std::uint16_t>(s.size()));
    raw(s.data(), s.size());
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    out_.insert(out_.end(), c, c + n);
  }
  std::vector<unsigned char>& out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<unsigned char>& in) : in_(in) {}
  std::uint8_t u8() { return *take(1); }
  std::uint16_t u16() {
    std::uint16_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  Tensor f32s(std::int64_t expected_numel) {
    const std::uint32_t n = u32();
    DCNAS_CHECK(static_cast<std::int64_t>(n) == expected_numel,
                "model file tensor size mismatch");
    std::vector<float> values(n);
    std::memcpy(values.data(), take(n * sizeof(float)), n * sizeof(float));
    return Tensor::from_values({static_cast<std::int64_t>(n)},
                               std::move(values));
  }
  std::string str() {
    const std::uint16_t n = u16();
    const auto* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  bool exhausted() const { return pos_ == in_.size(); }

 private:
  const unsigned char* take(std::size_t n) {
    DCNAS_CHECK(pos_ + n <= in_.size(), "truncated model file");
    const unsigned char* p = in_.data() + pos_;
    pos_ += n;
    return p;
  }
  const std::vector<unsigned char>& in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<unsigned char> serialize_model(const GraphExecutor& executor) {
  const ModelGraph& g = executor.graph();
  const auto& states = executor.node_states();
  const auto& identity = executor.identity_flags();
  std::vector<unsigned char> out;
  out.reserve(static_cast<std::size_t>(g.total_params()) * 4 + 4096);
  Writer w(out);
  out.insert(out.end(), kMagic, kMagic + 4);
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(g.size()));
  for (std::size_t i = 0; i < g.size(); ++i) {
    const GraphNode& n = g.nodes()[i];
    const NodeState& st = states[i];
    std::uint8_t flags = 0;
    if (n.kind == OpKind::kConv) flags |= kHasConv;
    if (n.kind == OpKind::kConv && st.bias) flags |= kHasBias;
    if (n.kind == OpKind::kBatchNorm) flags |= kHasBn;
    if (n.kind == OpKind::kLinear) flags |= kHasLinear;
    if (identity[i]) flags |= kIsIdentity;
    w.u8(static_cast<std::uint8_t>(n.kind));
    w.u8(flags);
    w.bytes(n.name);
    w.i32(static_cast<std::int32_t>(n.attrs.kernel));
    w.i32(static_cast<std::int32_t>(n.attrs.stride));
    w.i32(static_cast<std::int32_t>(n.attrs.padding));
    for (const ActShape& s : {n.in_shape, n.out_shape}) {
      w.i32(static_cast<std::int32_t>(s.c));
      w.i32(static_cast<std::int32_t>(s.h));
      w.i32(static_cast<std::int32_t>(s.w));
    }
    w.u8(static_cast<std::uint8_t>(n.inputs.size()));
    for (int in : n.inputs) w.i32(in);
    if (flags & kHasConv) w.f32s(st.conv_weight);
    if (flags & kHasBias) w.f32s(*st.bias);
    if (flags & kHasBn) {
      w.f32s(st.bn_gamma);
      w.f32s(st.bn_beta);
      w.f32s(st.bn_mean);
      w.f32s(st.bn_var);
    }
    if (flags & kHasLinear) {
      w.f32s(st.linear_weight);
      w.f32s(*st.bias);
    }
  }
  return out;
}

std::int64_t save_model(const GraphExecutor& executor,
                        const std::string& path) {
  const auto bytes = serialize_model(executor);
  std::ofstream out(path, std::ios::binary);
  DCNAS_CHECK(out.good(), "cannot open model file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  DCNAS_CHECK(out.good(), "model file write failed: " + path);
  return static_cast<std::int64_t>(bytes.size());
}

GraphExecutor parse_model(const std::vector<unsigned char>& bytes) {
  DCNAS_CHECK(bytes.size() >= 12 && std::memcmp(bytes.data(), kMagic, 4) == 0,
              "not a DCNX model file");
  Reader r(bytes);
  r.u32();  // skip magic (validated above, 4 bytes read as u32)
  const std::uint32_t version = r.u32();
  DCNAS_CHECK(version == kVersion, "unsupported model file version");
  const std::uint32_t count = r.u32();

  ModelGraph g;
  std::vector<NodeState> states;
  std::vector<bool> identity;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto kind = static_cast<OpKind>(r.u8());
    const std::uint8_t flags = r.u8();
    const std::string name = r.str();
    OpAttrs attrs;
    attrs.kernel = r.i32();
    attrs.stride = r.i32();
    attrs.padding = r.i32();
    ActShape in_shape{r.i32(), r.i32(), r.i32()};
    ActShape out_shape{r.i32(), r.i32(), r.i32()};
    const std::uint8_t num_inputs = r.u8();
    std::vector<int> inputs;
    for (std::uint8_t k = 0; k < num_inputs; ++k) inputs.push_back(r.i32());

    // Rebuild the node through the typed builders so shape inference
    // re-validates the file's claims.
    int idx = -1;
    switch (kind) {
      case OpKind::kInput:
        idx = g.add_input(out_shape, name);
        break;
      case OpKind::kConv:
        DCNAS_CHECK(inputs.size() == 1, "conv arity in model file");
        idx = g.add_conv(inputs[0], out_shape.c, attrs.kernel, attrs.stride,
                         attrs.padding, name);
        break;
      case OpKind::kBatchNorm:
        idx = g.add_batchnorm(inputs.at(0), name);
        break;
      case OpKind::kRelu:
        idx = g.add_relu(inputs.at(0), name);
        break;
      case OpKind::kMaxPool:
        idx = g.add_maxpool(inputs.at(0), attrs.kernel, attrs.stride,
                            attrs.padding, name);
        break;
      case OpKind::kGlobalAvgPool:
        idx = g.add_global_avgpool(inputs.at(0), name);
        break;
      case OpKind::kAdd:
        DCNAS_CHECK(inputs.size() == 2, "add arity in model file");
        idx = g.add_add(inputs[0], inputs[1], name);
        break;
      case OpKind::kLinear:
        idx = g.add_linear(inputs.at(0), out_shape.c, name);
        break;
      case OpKind::kOutput:
        idx = g.add_output(inputs.at(0), name);
        break;
    }
    DCNAS_CHECK(idx == static_cast<int>(i), "model file node order corrupt");
    DCNAS_CHECK(g.node(idx).out_shape == out_shape &&
                    g.node(idx).in_shape == in_shape,
                "model file shape inconsistent with op semantics");

    NodeState st;
    if (flags & kHasConv) {
      st.conv_weight =
          r.f32s(out_shape.c * in_shape.c * attrs.kernel * attrs.kernel);
    }
    if (flags & kHasBias) st.bias = r.f32s(out_shape.c);
    if (flags & kHasBn) {
      st.bn_gamma = r.f32s(out_shape.c);
      st.bn_beta = r.f32s(out_shape.c);
      st.bn_mean = r.f32s(out_shape.c);
      st.bn_var = r.f32s(out_shape.c);
    }
    if (flags & kHasLinear) {
      st.linear_weight = r.f32s(in_shape.numel() * out_shape.c);
      st.bias = r.f32s(out_shape.c);
    }
    states.push_back(std::move(st));
    identity.push_back((flags & kIsIdentity) != 0);
  }
  DCNAS_CHECK(r.exhausted(), "trailing bytes in model file");
  return GraphExecutor::from_state(std::move(g), std::move(states),
                                   std::move(identity));
}

GraphExecutor load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCNAS_CHECK(in.good(), "cannot open model file: " + path);
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return parse_model(bytes);
}

}  // namespace dcnas::graph
