#include "dcnas/graph/model_file.hpp"

#include <cstring>
#include <fstream>

#include "dcnas/analysis/inference.hpp"
#include "dcnas/analysis/verifier.hpp"

namespace dcnas::graph {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'N', 'X'};
constexpr std::uint32_t kVersion = 1;

// Upper bound on any single shape dimension or conv/pool attribute read
// from a file. Keeps the tensor-size arithmetic below far away from int64
// overflow even on hostile inputs; real models stay under 2^11.
constexpr std::int64_t kMaxDim = std::int64_t{1} << 20;

// State-presence flags per node.
constexpr std::uint8_t kHasConv = 1u << 0;
constexpr std::uint8_t kHasBias = 1u << 1;
constexpr std::uint8_t kHasBn = 1u << 2;
constexpr std::uint8_t kHasLinear = 1u << 3;
constexpr std::uint8_t kIsIdentity = 1u << 4;

class Writer {
 public:
  explicit Writer(std::vector<unsigned char>& out) : out_(out) {}
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f32s(const Tensor& t) {
    u32(static_cast<std::uint32_t>(t.numel()));
    raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  }
  void bytes(const std::string& s) {
    DCNAS_CHECK(s.size() <= 0xFFFF, "node name too long to serialize");
    u16(static_cast<std::uint16_t>(s.size()));
    raw(s.data(), s.size());
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    out_.insert(out_.end(), c, c + n);
  }
  std::vector<unsigned char>& out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<unsigned char>& in) : in_(in) {}
  std::uint8_t u8() { return *take(1); }
  std::uint16_t u16() {
    std::uint16_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  Tensor f32s(std::int64_t expected_numel) {
    const std::uint32_t n = u32();
    DCNAS_CHECK(static_cast<std::int64_t>(n) == expected_numel,
                "model file tensor size mismatch");
    std::vector<float> values(n);
    std::memcpy(values.data(), take(n * sizeof(float)), n * sizeof(float));
    return Tensor::from_values({static_cast<std::int64_t>(n)},
                               std::move(values));
  }
  std::string str() {
    const std::uint16_t n = u16();
    const auto* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  bool exhausted() const { return pos_ == in_.size(); }

 private:
  const unsigned char* take(std::size_t n) {
    DCNAS_CHECK(pos_ + n <= in_.size(), "truncated model file");
    const unsigned char* p = in_.data() + pos_;
    pos_ += n;
    return p;
  }
  const std::vector<unsigned char>& in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<unsigned char> serialize_model(const GraphExecutor& executor) {
  const ModelGraph& g = executor.graph();
  const auto& states = executor.node_states();
  const auto& identity = executor.identity_flags();
  std::vector<unsigned char> out;
  out.reserve(static_cast<std::size_t>(g.total_params()) * 4 + 4096);
  Writer w(out);
  out.insert(out.end(), kMagic, kMagic + 4);
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(g.size()));
  for (std::size_t i = 0; i < g.size(); ++i) {
    const GraphNode& n = g.nodes()[i];
    const NodeState& st = states[i];
    std::uint8_t flags = 0;
    if (n.kind == OpKind::kConv) flags |= kHasConv;
    if (n.kind == OpKind::kConv && st.bias) flags |= kHasBias;
    if (n.kind == OpKind::kBatchNorm) flags |= kHasBn;
    if (n.kind == OpKind::kLinear) flags |= kHasLinear;
    if (identity[i]) flags |= kIsIdentity;
    w.u8(static_cast<std::uint8_t>(n.kind));
    w.u8(flags);
    w.bytes(n.name);
    w.i32(static_cast<std::int32_t>(n.attrs.kernel));
    w.i32(static_cast<std::int32_t>(n.attrs.stride));
    w.i32(static_cast<std::int32_t>(n.attrs.padding));
    for (const ActShape& s : {n.in_shape, n.out_shape}) {
      w.i32(static_cast<std::int32_t>(s.c));
      w.i32(static_cast<std::int32_t>(s.h));
      w.i32(static_cast<std::int32_t>(s.w));
    }
    w.u8(static_cast<std::uint8_t>(n.inputs.size()));
    for (int in : n.inputs) w.i32(in);
    if (flags & kHasConv) w.f32s(st.conv_weight);
    if (flags & kHasBias) w.f32s(*st.bias);
    if (flags & kHasBn) {
      w.f32s(st.bn_gamma);
      w.f32s(st.bn_beta);
      w.f32s(st.bn_mean);
      w.f32s(st.bn_var);
    }
    if (flags & kHasLinear) {
      w.f32s(st.linear_weight);
      w.f32s(*st.bias);
    }
  }
  return out;
}

std::int64_t save_model(const GraphExecutor& executor,
                        const std::string& path) {
  const auto bytes = serialize_model(executor);
  std::ofstream out(path, std::ios::binary);
  DCNAS_CHECK(out.good(), "cannot open model file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  DCNAS_CHECK(out.good(), "model file write failed: " + path);
  return static_cast<std::int64_t>(bytes.size());
}

namespace {

struct ParsedModel {
  std::vector<GraphNode> nodes;
  std::vector<NodeState> states;
  std::vector<bool> identity;
};

ParsedModel parse_records(const std::vector<unsigned char>& bytes) {
  DCNAS_CHECK(bytes.size() >= 12 && std::memcmp(bytes.data(), kMagic, 4) == 0,
              "not a DCNX model file");
  Reader r(bytes);
  r.u32();  // skip magic (validated above, 4 bytes read as u32)
  const std::uint32_t version = r.u32();
  DCNAS_CHECK(version == kVersion, "unsupported model file version");
  const std::uint32_t count = r.u32();

  // The graph is rebuilt exactly as the file claims it — shapes and attrs
  // included — and then handed to the standard GraphVerifier, which
  // re-infers every annotation and rejects structurally-valid-but-
  // semantically-corrupt files. Only bounds needed for safe tensor-size
  // arithmetic are enforced inline.
  ParsedModel parsed;
  std::vector<GraphNode>& nodes = parsed.nodes;
  nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t raw_kind = r.u8();
    DCNAS_CHECK(raw_kind <= static_cast<std::uint8_t>(OpKind::kOutput),
                "unknown op kind in model file");
    GraphNode n;
    n.kind = static_cast<OpKind>(raw_kind);
    const std::uint8_t flags = r.u8();
    n.name = r.str();
    n.attrs.kernel = r.i32();
    n.attrs.stride = r.i32();
    n.attrs.padding = r.i32();
    n.in_shape = {r.i32(), r.i32(), r.i32()};
    n.out_shape = {r.i32(), r.i32(), r.i32()};
    for (const ActShape& s : {n.in_shape, n.out_shape}) {
      DCNAS_CHECK(s.c >= 1 && s.c <= kMaxDim && s.h >= 1 && s.h <= kMaxDim &&
                      s.w >= 1 && s.w <= kMaxDim,
                  "model file shape out of range for node '" + n.name + "'");
    }
    DCNAS_CHECK(n.attrs.kernel >= 0 && n.attrs.kernel <= kMaxDim &&
                    n.attrs.stride >= 0 && n.attrs.stride <= kMaxDim &&
                    n.attrs.padding >= 0 && n.attrs.padding <= kMaxDim,
                "model file attrs out of range for node '" + n.name + "'");
    const std::uint8_t num_inputs = r.u8();
    for (std::uint8_t k = 0; k < num_inputs; ++k) n.inputs.push_back(r.i32());

    // The file does not carry params/FLOPs; derive them from the claimed
    // shapes so the stored annotations are self-consistent. A falsified
    // shape still surfaces through the verifier's propagation checks.
    std::vector<ActShape> producer_out;
    bool producers_ok = true;
    for (int in : n.inputs) {
      if (in < 0 || in >= static_cast<int>(i)) {
        producers_ok = false;  // verifier reports topo.dangling-input
        break;
      }
      producer_out.push_back(nodes[static_cast<std::size_t>(in)].out_shape);
    }
    if (producers_ok) {
      if (const auto e = analysis::infer_node(n, producer_out)) {
        n.params = e->params;
        n.flops = e->flops;
      }
    }

    NodeState st;
    if (flags & kHasConv) {
      st.conv_weight = r.f32s(n.out_shape.c * n.in_shape.c * n.attrs.kernel *
                              n.attrs.kernel);
    }
    if (flags & kHasBias) st.bias = r.f32s(n.out_shape.c);
    if (flags & kHasBn) {
      st.bn_gamma = r.f32s(n.out_shape.c);
      st.bn_beta = r.f32s(n.out_shape.c);
      st.bn_mean = r.f32s(n.out_shape.c);
      st.bn_var = r.f32s(n.out_shape.c);
    }
    if (flags & kHasLinear) {
      st.linear_weight = r.f32s(n.in_shape.numel() * n.out_shape.c);
      st.bias = r.f32s(n.out_shape.c);
    }
    nodes.push_back(std::move(n));
    parsed.states.push_back(std::move(st));
    parsed.identity.push_back((flags & kIsIdentity) != 0);
  }
  DCNAS_CHECK(r.exhausted(), "trailing bytes in model file");
  return parsed;
}

}  // namespace

GraphExecutor parse_model(const std::vector<unsigned char>& bytes) {
  ParsedModel parsed = parse_records(bytes);
  ModelGraph g = ModelGraph::from_nodes(std::move(parsed.nodes));
  analysis::verify_or_throw(g, "parse_model");
  return GraphExecutor::from_state(std::move(g), std::move(parsed.states),
                                   std::move(parsed.identity));
}

ModelGraph parse_model_graph(const std::vector<unsigned char>& bytes) {
  return ModelGraph::from_nodes(parse_records(bytes).nodes);
}

GraphExecutor load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCNAS_CHECK(in.good(), "cannot open model file: " + path);
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return parse_model(bytes);
}

}  // namespace dcnas::graph
