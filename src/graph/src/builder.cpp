#include "dcnas/graph/builder.hpp"

#include <string>

namespace dcnas::graph {

namespace {

/// Appends one BasicBlock's ops; returns the index of its final ReLU-fused
/// Add output. Mirrors nn::BasicBlock exactly.
int add_basic_block(ModelGraph& g, int input, std::int64_t in_ch,
                    std::int64_t out_ch, std::int64_t stride,
                    const std::string& prefix) {
  const int c1 = g.add_conv(input, out_ch, 3, stride, 1, prefix + ".conv1");
  const int b1 = g.add_batchnorm(c1, prefix + ".bn1");
  const int r1 = g.add_relu(b1, prefix + ".relu1");
  const int c2 = g.add_conv(r1, out_ch, 3, 1, 1, prefix + ".conv2");
  const int b2 = g.add_batchnorm(c2, prefix + ".bn2");
  int shortcut = input;
  if (stride != 1 || in_ch != out_ch) {
    const int pc = g.add_conv(input, out_ch, 1, stride, 0, prefix + ".proj");
    shortcut = g.add_batchnorm(pc, prefix + ".proj_bn");
  }
  const int sum = g.add_add(b2, shortcut, prefix + ".add");
  return g.add_relu(sum, prefix + ".relu2");
}

}  // namespace

ModelGraph build_resnet_graph(const nn::ResNetConfig& config,
                              std::int64_t input_hw) {
  config.validate();
  DCNAS_CHECK(input_hw > 0, "input_hw must be > 0");
  ModelGraph g;
  int cur = g.add_input({config.in_channels, input_hw, input_hw});
  cur = g.add_conv(cur, config.init_width, config.conv1_kernel,
                   config.conv1_stride, config.conv1_padding, "conv1");
  cur = g.add_batchnorm(cur, "bn1");
  cur = g.add_relu(cur, "relu1");
  if (config.with_pool) {
    cur = g.add_maxpool(cur, config.pool_kernel, config.pool_stride,
                        (config.pool_kernel - 1) / 2, "maxpool");
  }
  std::int64_t in_ch = config.init_width;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t out_ch = config.stage_width(stage);
    const std::int64_t stride = (stage == 0) ? 1 : 2;
    const std::string s = "stage" + std::to_string(stage + 1);
    cur = add_basic_block(g, cur, in_ch, out_ch, stride, s + ".block1");
    for (std::int64_t b = 1; b < config.blocks_per_stage; ++b) {
      cur = add_basic_block(g, cur, out_ch, out_ch, 1,
                            s + ".block" + std::to_string(b + 1));
    }
    in_ch = out_ch;
  }
  cur = g.add_global_avgpool(cur, "gap");
  cur = g.add_linear(cur, config.num_classes, "fc");
  g.add_output(cur);
  g.validate();
  return g;
}

}  // namespace dcnas::graph
