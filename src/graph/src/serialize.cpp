#include "dcnas/graph/serialize.hpp"

namespace dcnas::graph {

namespace {
// Protobuf-ish structural overheads; small next to fp32 initializers.
constexpr std::int64_t kHeaderBytes = 288;
constexpr std::int64_t kPerNodeBytes = 48;
constexpr std::int64_t kPerInitializerBytes = 32;
}  // namespace

SizeBreakdown serialized_size(const ModelGraph& graph) {
  SizeBreakdown s;
  s.header_bytes = kHeaderBytes;
  for (const auto& node : graph.nodes()) {
    s.structure_bytes +=
        kPerNodeBytes + static_cast<std::int64_t>(node.name.size());
    if (node.params > 0) {
      s.initializer_bytes += 4 * node.params;
      s.structure_bytes += kPerInitializerBytes;
    }
  }
  return s;
}

double model_memory_mb(const ModelGraph& graph) {
  return serialized_size(graph).total_mb();
}

}  // namespace dcnas::graph
