#include "dcnas/graph/serialize.hpp"

namespace dcnas::graph {

namespace {
// Protobuf-ish structural overheads; small next to fp32 initializers.
constexpr std::int64_t kHeaderBytes = 288;
constexpr std::int64_t kPerNodeBytes = 48;
constexpr std::int64_t kPerInitializerBytes = 32;
}  // namespace

SizeBreakdown serialized_size(const ModelGraph& graph) {
  return serialized_size(graph, Precision::kFp32);
}

SizeBreakdown serialized_size(const ModelGraph& graph, Precision precision) {
  SizeBreakdown s;
  s.header_bytes = kHeaderBytes;
  for (const auto& node : graph.nodes()) {
    s.structure_bytes +=
        kPerNodeBytes + static_cast<std::int64_t>(node.name.size());
    if (node.params > 0) {
      // Int8 files store conv weights as 1-byte initializers plus one fp32
      // scale per output channel; every other initializer (BN statistics,
      // the Linear head) stays fp32, matching the quantized plan's scope.
      if (precision == Precision::kInt8 && node.kind == OpKind::kConv) {
        s.initializer_bytes += node.params + 4 * node.out_shape.c;
      } else {
        s.initializer_bytes += 4 * node.params;
      }
      s.structure_bytes += kPerInitializerBytes;
    }
  }
  return s;
}

double model_memory_mb(const ModelGraph& graph) {
  return serialized_size(graph).total_mb();
}

double model_memory_mb(const ModelGraph& graph, Precision precision) {
  return serialized_size(graph, precision).total_mb();
}

}  // namespace dcnas::graph
