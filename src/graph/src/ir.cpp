#include "dcnas/graph/ir.hpp"

#include <algorithm>
#include <sstream>

#include "dcnas/tensor/im2col.hpp"

namespace dcnas::graph {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "Input";
    case OpKind::kConv: return "Conv";
    case OpKind::kBatchNorm: return "BatchNorm";
    case OpKind::kRelu: return "Relu";
    case OpKind::kMaxPool: return "MaxPool";
    case OpKind::kGlobalAvgPool: return "GlobalAvgPool";
    case OpKind::kAdd: return "Add";
    case OpKind::kLinear: return "Linear";
    case OpKind::kOutput: return "Output";
  }
  return "?";
}

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

std::string ActShape::to_string() const {
  std::ostringstream os;
  os << "(" << c << ", " << h << ", " << w << ")";
  return os.str();
}

ModelGraph ModelGraph::from_nodes(std::vector<GraphNode> nodes) {
  ModelGraph g;
  g.nodes_ = std::move(nodes);
  return g;
}

int ModelGraph::append(GraphNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

const GraphNode& ModelGraph::node(int i) const {
  DCNAS_CHECK(i >= 0 && i < static_cast<int>(nodes_.size()),
              "graph node index out of range");
  return nodes_[static_cast<std::size_t>(i)];
}

const GraphNode& ModelGraph::checked_input(int index,
                                           const std::string& consumer) const {
  DCNAS_CHECK(index >= 0 && index < static_cast<int>(nodes_.size()),
              "node '" + consumer + "': input index " + std::to_string(index) +
                  " refers to a node that does not exist yet (graph has " +
                  std::to_string(nodes_.size()) + " nodes)");
  return nodes_[static_cast<std::size_t>(index)];
}

int ModelGraph::add_input(ActShape shape, const std::string& name) {
  DCNAS_CHECK(nodes_.empty(), "add_input must be the first node");
  DCNAS_CHECK(shape.c > 0 && shape.h > 0 && shape.w > 0, "bad input shape");
  GraphNode n;
  n.kind = OpKind::kInput;
  n.name = name;
  n.in_shape = shape;
  n.out_shape = shape;
  return append(std::move(n));
}

int ModelGraph::add_conv(int input, std::int64_t out_channels,
                         std::int64_t kernel, std::int64_t stride,
                         std::int64_t padding, const std::string& name) {
  const GraphNode& src = checked_input(input, name);
  DCNAS_CHECK(out_channels > 0, "conv out_channels must be > 0");
  GraphNode n;
  n.kind = OpKind::kConv;
  n.name = name;
  n.inputs = {input};
  n.attrs = {kernel, stride, padding};
  n.in_shape = src.out_shape;
  n.out_shape = {out_channels,
                 conv_out_size(src.out_shape.h, kernel, stride, padding),
                 conv_out_size(src.out_shape.w, kernel, stride, padding)};
  n.params = out_channels * src.out_shape.c * kernel * kernel;  // bias-free
  n.flops = 2 * n.params * n.out_shape.h * n.out_shape.w;
  return append(std::move(n));
}

int ModelGraph::add_batchnorm(int input, const std::string& name) {
  const GraphNode& src = checked_input(input, name);
  GraphNode n;
  n.kind = OpKind::kBatchNorm;
  n.name = name;
  n.inputs = {input};
  n.in_shape = src.out_shape;
  n.out_shape = src.out_shape;
  // gamma, beta + running mean/var are all serialized with the model.
  n.params = 4 * src.out_shape.c;
  n.flops = 2 * src.out_shape.numel();
  return append(std::move(n));
}

int ModelGraph::add_relu(int input, const std::string& name) {
  const GraphNode& src = checked_input(input, name);
  GraphNode n;
  n.kind = OpKind::kRelu;
  n.name = name;
  n.inputs = {input};
  n.in_shape = src.out_shape;
  n.out_shape = src.out_shape;
  n.flops = src.out_shape.numel();
  return append(std::move(n));
}

int ModelGraph::add_maxpool(int input, std::int64_t kernel,
                            std::int64_t stride, std::int64_t padding,
                            const std::string& name) {
  const GraphNode& src = checked_input(input, name);
  DCNAS_CHECK(padding <= kernel / 2, "pool padding must be <= kernel/2");
  GraphNode n;
  n.kind = OpKind::kMaxPool;
  n.name = name;
  n.inputs = {input};
  n.attrs = {kernel, stride, padding};
  n.in_shape = src.out_shape;
  n.out_shape = {src.out_shape.c,
                 conv_out_size(src.out_shape.h, kernel, stride, padding),
                 conv_out_size(src.out_shape.w, kernel, stride, padding)};
  n.flops = kernel * kernel * n.out_shape.numel();
  return append(std::move(n));
}

int ModelGraph::add_global_avgpool(int input, const std::string& name) {
  const GraphNode& src = checked_input(input, name);
  GraphNode n;
  n.kind = OpKind::kGlobalAvgPool;
  n.name = name;
  n.inputs = {input};
  n.in_shape = src.out_shape;
  n.out_shape = {src.out_shape.c, 1, 1};
  n.flops = src.out_shape.numel();
  return append(std::move(n));
}

int ModelGraph::add_add(int lhs, int rhs, const std::string& name) {
  const GraphNode& a = checked_input(lhs, name);
  const GraphNode& b = checked_input(rhs, name);
  DCNAS_CHECK(a.out_shape == b.out_shape,
              "Add '" + name + "' requires matching operand shapes: '" +
                  a.name + "' " + a.out_shape.to_string() + " vs '" + b.name +
                  "' " + b.out_shape.to_string());
  GraphNode n;
  n.kind = OpKind::kAdd;
  n.name = name;
  n.inputs = {lhs, rhs};
  n.in_shape = a.out_shape;
  n.out_shape = a.out_shape;
  n.flops = a.out_shape.numel();
  return append(std::move(n));
}

int ModelGraph::add_linear(int input, std::int64_t out_features,
                           const std::string& name) {
  const GraphNode& src = checked_input(input, name);
  DCNAS_CHECK(out_features > 0, "linear out_features must be > 0");
  const std::int64_t in_features = src.out_shape.numel();
  GraphNode n;
  n.kind = OpKind::kLinear;
  n.name = name;
  n.inputs = {input};
  n.in_shape = src.out_shape;
  n.out_shape = {out_features, 1, 1};
  n.params = in_features * out_features + out_features;  // weight + bias
  n.flops = 2 * in_features * out_features;
  return append(std::move(n));
}

int ModelGraph::add_output(int input, const std::string& name) {
  const GraphNode& src = checked_input(input, name);
  GraphNode n;
  n.kind = OpKind::kOutput;
  n.name = name;
  n.inputs = {input};
  n.in_shape = src.out_shape;
  n.out_shape = src.out_shape;
  return append(std::move(n));
}

std::vector<std::vector<int>> ModelGraph::consumers() const {
  std::vector<std::vector<int>> out(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (int in : nodes_[i].inputs) {
      out[static_cast<std::size_t>(in)].push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::int64_t ModelGraph::total_params() const {
  std::int64_t n = 0;
  for (const auto& node : nodes_) n += node.params;
  return n;
}

std::int64_t ModelGraph::total_flops() const {
  std::int64_t n = 0;
  for (const auto& node : nodes_) n += node.flops;
  return n;
}

std::int64_t ModelGraph::max_activation_bytes() const {
  std::int64_t best = 0;
  for (const auto& node : nodes_) {
    best = std::max(best, node.out_shape.numel() * 4);
  }
  return best;
}

void ModelGraph::validate() const {
  DCNAS_CHECK(!nodes_.empty(), "graph is empty");
  DCNAS_CHECK(nodes_.front().kind == OpKind::kInput,
              "first node must be the input");
  bool has_output = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    if (n.kind == OpKind::kOutput) has_output = true;
    for (int in : n.inputs) {
      DCNAS_CHECK(in >= 0 && in < static_cast<int>(i),
                  "node " + n.name + " references a non-preceding input");
    }
    if (n.kind != OpKind::kInput) {
      DCNAS_CHECK(!n.inputs.empty(), "non-input node without inputs");
    }
  }
  DCNAS_CHECK(has_output, "graph has no output node");
}

std::string ModelGraph::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    os << i << ": " << op_kind_name(n.kind) << " '" << n.name << "' ";
    if (n.kind == OpKind::kConv || n.kind == OpKind::kMaxPool) {
      os << "k=" << n.attrs.kernel << " s=" << n.attrs.stride
         << " p=" << n.attrs.padding << " ";
    }
    os << n.in_shape.to_string() << " -> " << n.out_shape.to_string();
    if (n.params > 0) os << " params=" << n.params;
    if (n.flops > 0) os << " flops=" << n.flops;
    os << "\n";
  }
  return os.str();
}

}  // namespace dcnas::graph
