#pragma once
/// \file linear.hpp
/// \brief Fully connected layer.

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

/// y = x·Wᵀ + b over 2-D (N, in_features) inputs.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Linear"; }
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t in_features_, out_features_;
  Tensor weight_;  ///< (out, in)
  Tensor bias_;    ///< (out)
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
};

}  // namespace dcnas::nn
