#pragma once
/// \file residual.hpp
/// \brief ResNet BasicBlock: two 3x3 conv-bn pairs with a skip connection.

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/batchnorm.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

/// The two-convolution residual block of ResNet-18/34:
///
///   out = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )
///
/// shortcut is identity when shapes match, otherwise a stride-matched
/// 1x1 convolution followed by BatchNorm (option B in He et al.).
class BasicBlock : public Module {
 public:
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "BasicBlock"; }
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<ParamRef>& out) override;
  void set_training(bool training) override;

  bool has_projection() const { return proj_conv_ != nullptr; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t out_channels_, stride_;
  std::unique_ptr<Conv2d> conv1_, conv2_;
  std::unique_ptr<BatchNorm2d> bn1_, bn2_;
  std::unique_ptr<Conv2d> proj_conv_;      ///< null for identity shortcut
  std::unique_ptr<BatchNorm2d> proj_bn_;
  // Backward caches.
  Tensor relu1_mask_, relu2_mask_;
};

}  // namespace dcnas::nn
