#pragma once
/// \file loss.hpp
/// \brief Softmax cross-entropy, the training criterion for the binary
/// drainage-crossing classifier.

#include <cstdint>
#include <vector>

#include "dcnas/tensor/tensor.hpp"

namespace dcnas::nn {

/// Combined softmax + negative log-likelihood, averaged over the batch.
class SoftmaxCrossEntropy {
 public:
  /// Returns the mean loss for logits (N, classes) and integer labels.
  double forward(const Tensor& logits, const std::vector<int>& labels);

  /// Returns dLoss/dLogits, i.e. (softmax - onehot) / N.
  Tensor backward() const;

  /// Class probabilities from the last forward call.
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

}  // namespace dcnas::nn
