#pragma once
/// \file init.hpp
/// \brief Weight initialization schemes (He / Xavier), matching the PyTorch
/// defaults the paper's ResNet-18 training relied on.

#include "dcnas/common/rng.hpp"
#include "dcnas/tensor/tensor.hpp"

namespace dcnas::nn {

/// He (Kaiming) normal init with fan-out mode: stddev = sqrt(2 / fan_out).
/// Standard for conv layers followed by ReLU.
void kaiming_normal(Tensor& w, std::int64_t fan_out, Rng& rng);

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng);

/// PyTorch nn.Linear default: U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
void linear_default(Tensor& w, std::int64_t fan_in, Rng& rng);

}  // namespace dcnas::nn
