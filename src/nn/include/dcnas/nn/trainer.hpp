#pragma once
/// \file trainer.hpp
/// \brief Mini-batch training loop shared by examples, tests, and the NAS
/// TrainingEvaluator.

#include <cstdint>
#include <vector>

#include "dcnas/nn/loss.hpp"
#include "dcnas/nn/module.hpp"
#include "dcnas/nn/optim.hpp"

namespace dcnas::nn {

struct TrainOptions {
  int epochs = 5;           ///< the paper trains each trial for 5 epochs
  std::int64_t batch_size = 8;
  double lr = 0.01;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  std::uint64_t seed = 1;   ///< shuffling order
  bool shuffle = true;
  bool verbose = false;
};

struct FitResult {
  std::vector<double> epoch_loss;       ///< mean training loss per epoch
  std::vector<double> epoch_accuracy;   ///< training accuracy per epoch
};

/// Extracts rows \p indices from (N,C,H,W) images into a new batch tensor.
Tensor gather_batch(const Tensor& images, const std::vector<std::int64_t>& indices);

/// Trains \p model in place with SGD + momentum + cross-entropy.
FitResult fit(Module& model, const Tensor& images,
              const std::vector<int>& labels, const TrainOptions& options);

/// Evaluation-mode accuracy over a dataset, batched to bound memory.
double evaluate_accuracy(Module& model, const Tensor& images,
                         const std::vector<int>& labels,
                         std::int64_t batch_size = 16);

}  // namespace dcnas::nn
