#pragma once
/// \file conv.hpp
/// \brief 2-D convolution layer (square kernels) via im2col + GEMM.

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

/// Convolution over NCHW inputs. Weights are stored as a
/// (out_channels) x (in_channels·k·k) matrix so forward is a single GEMM per
/// sample. Bias is optional (ResNet convs are bias-free because BatchNorm
/// follows them).
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         bool bias, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Conv2d"; }
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }

  Tensor& weight() { return weight_; }
  Tensor& weight_grad() { return weight_grad_; }
  bool has_bias() const { return has_bias_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Tensor weight_;       ///< (OC, IC·k·k)
  Tensor weight_grad_;
  Tensor bias_;         ///< (OC) when has_bias_
  Tensor bias_grad_;
  Tensor cached_input_; ///< saved activation for the backward pass
};

}  // namespace dcnas::nn
