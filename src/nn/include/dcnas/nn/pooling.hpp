#pragma once
/// \file pooling.hpp
/// \brief Max pooling and global average pooling layers.

#include <vector>

#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t padding);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }

 private:
  std::int64_t kernel_, stride_, padding_;
  Shape input_shape_;
  std::vector<std::int64_t> argmax_;
};

/// Adaptive average pooling to 1x1, flattened to (N, C) — the layer between
/// ResNet's last block and its fully connected classifier.
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape input_shape_;
};

}  // namespace dcnas::nn
