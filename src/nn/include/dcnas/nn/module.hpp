#pragma once
/// \file module.hpp
/// \brief Base class of all neural-network layers.
///
/// dcnas uses module-level autodiff rather than a tape: each Module caches
/// what its backward pass needs during forward() and implements backward()
/// explicitly. This keeps the training stack small, allocation-predictable,
/// and easy to verify layer-by-layer with finite differences (see
/// tests/nn/gradcheck_test.cpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dcnas/tensor/tensor.hpp"

namespace dcnas::nn {

/// A named view of one learnable parameter and its gradient accumulator.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output, caching whatever backward() will need.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Human-readable layer name (used by model summaries, Figure 1).
  virtual std::string name() const = 0;

  /// Appends this module's parameters (prefixed) to \p out.
  virtual void collect_params(const std::string& prefix,
                              std::vector<ParamRef>& out);

  /// Appends non-learnable state (BatchNorm running statistics) to \p out;
  /// ParamRef::grad is null for buffers. Needed by the graph executor and
  /// model serialization to capture full inference state.
  virtual void collect_buffers(const std::string& prefix,
                               std::vector<ParamRef>& out);

  /// All buffers of this module tree.
  std::vector<ParamRef> buffers();

  /// Switches train/eval behaviour (BatchNorm statistics).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// All parameters of this module tree.
  std::vector<ParamRef> parameters();

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Total learnable scalar count.
  std::int64_t num_params();

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace dcnas::nn
