#pragma once
/// \file metrics.hpp
/// \brief Classification metrics used by the NAS evaluator.

#include <cstdint>
#include <vector>

#include "dcnas/tensor/tensor.hpp"

namespace dcnas::nn {

/// Fraction of rows whose argmax matches the label, in [0, 1].
double accuracy(const Tensor& logits, const std::vector<int>& labels);

/// Binary confusion counts (positive class = 1).
struct BinaryConfusion {
  std::int64_t tp = 0, fp = 0, tn = 0, fn = 0;

  double precision() const;
  double recall() const;
  double f1() const;
  double accuracy() const;
};

BinaryConfusion binary_confusion(const std::vector<int>& predictions,
                                 const std::vector<int>& labels);

}  // namespace dcnas::nn
