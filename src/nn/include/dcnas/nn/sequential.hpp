#pragma once
/// \file sequential.hpp
/// \brief Ordered container of modules executed front-to-back.

#include <memory>
#include <vector>

#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns a raw observer pointer for tests/summaries.
  template <typename M, typename... Args>
  M* emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M* raw = m.get();
    layers_.push_back(std::move(m));
    return raw;
  }

  void append(ModulePtr layer);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sequential"; }
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<ParamRef>& out) override;
  void set_training(bool training) override;

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i);

 private:
  std::vector<ModulePtr> layers_;
};

}  // namespace dcnas::nn
