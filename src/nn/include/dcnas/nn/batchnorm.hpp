#pragma once
/// \file batchnorm.hpp
/// \brief 2-D batch normalization with running statistics.

#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

/// BatchNorm over the channel dimension of NCHW tensors. In training mode
/// it normalizes with batch statistics and updates exponential running
/// averages; in eval mode it uses the running averages (PyTorch semantics,
/// momentum 0.1, eps 1e-5).
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "BatchNorm2d"; }
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<ParamRef>& out) override;

  std::int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::int64_t channels_;
  float eps_, momentum_;
  Tensor gamma_, beta_;
  Tensor gamma_grad_, beta_grad_;
  Tensor running_mean_, running_var_;
  // Forward cache for backward.
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  std::int64_t cached_count_ = 0;  ///< N·H·W per channel
};

}  // namespace dcnas::nn
