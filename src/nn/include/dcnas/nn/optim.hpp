#pragma once
/// \file optim.hpp
/// \brief First-order optimizers: SGD with momentum and Adam.

#include <vector>

#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamRef> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the currently accumulated gradients.
  virtual void step() = 0;

  void zero_grad();

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  std::vector<ParamRef> params_;
  double lr_ = 0.01;
};

/// SGD with classical momentum and decoupled-from-loss L2 weight decay
/// (decay is added to the gradient, PyTorch-style).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamRef> params, double lr, double momentum = 0.9,
      double weight_decay = 0.0);
  void step() override;

 private:
  double momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace dcnas::nn
