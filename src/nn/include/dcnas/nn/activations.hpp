#pragma once
/// \file activations.hpp
/// \brief Activation layers (ReLU is the only one ResNet-18 needs).

#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  ///< 1 where the input was positive
};

}  // namespace dcnas::nn
