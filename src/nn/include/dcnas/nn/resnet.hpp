#pragma once
/// \file resnet.hpp
/// \brief Configurable ResNet-18 — the paper's search-space model family.
///
/// The stock configuration reproduces Figure 1: an initial convolution,
/// optional max pooling, four residual stages of two BasicBlocks each with
/// channel doubling, global average pooling, and a binary classifier. The
/// NAS search space (Figure 2) varies the stem geometry, pooling, and the
/// initial stage width.

#include <cstdint>
#include <string>

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/module.hpp"
#include "dcnas/nn/sequential.hpp"

namespace dcnas::nn {

/// Architecture knobs explored by the NAS (plus fixed structural choices).
struct ResNetConfig {
  std::int64_t in_channels = 5;    ///< 5 (DEM+RGBN) or 7 (+NDVI, NDWI)
  std::int64_t conv1_kernel = 7;   ///< search: {3, 7}
  std::int64_t conv1_stride = 2;   ///< search: {1, 2}
  std::int64_t conv1_padding = 3;  ///< search: {1, 2, 3}
  bool with_pool = true;           ///< search pool_choice: 0 = pool, 1 = none
  std::int64_t pool_kernel = 3;    ///< search: {2, 3}
  std::int64_t pool_stride = 2;    ///< search: {1, 2}
  std::int64_t init_width = 64;    ///< search: {32, 48, 64}
  /// BasicBlocks per residual stage: 2 is the paper's ResNet-18; the wide
  /// NAS lattice also explores 1 (ResNet-10) and 3 (ResNet-26).
  std::int64_t blocks_per_stage = 2;
  std::int64_t num_classes = 2;

  /// The unmodified ResNet-18 baseline used in Table 5.
  static ResNetConfig baseline(std::int64_t channels);

  /// Throws InvalidArgument when values fall outside documented bounds.
  void validate() const;

  /// Stage widths: init_width doubled per stage (w, 2w, 4w, 8w).
  std::int64_t stage_width(int stage) const;

  /// Input width of the final fully connected layer (8 × init_width,
  /// i.e. "amplified by a factor of four" relative to stage 2's width as
  /// §3.2 of the paper describes).
  std::int64_t fc_in_features() const { return init_width * 8; }

  std::string to_string() const;
};

/// ResNet-18 variant built from a ResNetConfig. Owns its layers through an
/// internal Sequential so forward/backward/parameters compose directly.
class ConfigurableResNet : public Module {
 public:
  ConfigurableResNet(const ResNetConfig& config, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ConfigurableResNet"; }
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<ParamRef>& out) override;
  void set_training(bool training) override;

  const ResNetConfig& config() const { return config_; }

  /// Layer-by-layer text summary with output shapes for a given input
  /// spatial size — the Figure 1 rendering.
  std::string summary(std::int64_t input_hw) const;

 private:
  ResNetConfig config_;
  Sequential body_;
};

}  // namespace dcnas::nn
