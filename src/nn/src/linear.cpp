#include "dcnas/nn/linear.hpp"

#include "dcnas/nn/init.hpp"
#include "dcnas/tensor/gemm.hpp"

namespace dcnas::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  DCNAS_CHECK(in_features > 0 && out_features > 0,
              "Linear features must be > 0");
  weight_ = Tensor({out_features_, in_features_});
  bias_ = Tensor({out_features_});
  weight_grad_ = Tensor(weight_.shape());
  bias_grad_ = Tensor(bias_.shape());
  linear_default(weight_, in_features_, rng);
  linear_default(bias_, in_features_, rng);
}

Tensor Linear::forward(const Tensor& input) {
  DCNAS_CHECK(input.ndim() == 2 && input.dim(1) == in_features_,
              "Linear expects (N, in_features) input");
  const std::int64_t n = input.dim(0);
  if (training_) cached_input_ = input;
  Tensor out({n, out_features_});
  // y = x · Wᵀ
  gemm_bt(n, out_features_, in_features_, 1.0f, input.data(), weight_.data(),
          0.0f, out.data());
  for (std::int64_t r = 0; r < n; ++r) {
    float* row = out.data() + r * out_features_;
    for (std::int64_t c = 0; c < out_features_; ++c) row[c] += bias_[c];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  DCNAS_CHECK(!cached_input_.empty(),
              "Linear::backward without cached forward");
  const std::int64_t n = cached_input_.dim(0);
  DCNAS_CHECK(grad_output.ndim() == 2 && grad_output.dim(0) == n &&
                  grad_output.dim(1) == out_features_,
              "Linear backward shape mismatch");
  // dW += dYᵀ · x   (out x in)
  gemm_at(out_features_, in_features_, n, 1.0f, grad_output.data(),
          cached_input_.data(), 1.0f, weight_grad_.data());
  // db += column sums of dY
  for (std::int64_t r = 0; r < n; ++r) {
    const float* row = grad_output.data() + r * out_features_;
    for (std::int64_t c = 0; c < out_features_; ++c) bias_grad_[c] += row[c];
  }
  // dx = dY · W   (n x in)
  Tensor grad_in({n, in_features_});
  gemm(n, in_features_, out_features_, 1.0f, grad_output.data(),
       weight_.data(), 0.0f, grad_in.data());
  return grad_in;
}

void Linear::collect_params(const std::string& prefix,
                            std::vector<ParamRef>& out) {
  out.push_back({prefix + ".weight", &weight_, &weight_grad_});
  out.push_back({prefix + ".bias", &bias_, &bias_grad_});
}

}  // namespace dcnas::nn
