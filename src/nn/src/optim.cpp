#include "dcnas/nn/optim.hpp"

#include <cmath>

namespace dcnas::nn {

void Optimizer::zero_grad() {
  for (auto& p : params_) {
    if (p.grad) p.grad->zero();
  }
}

Sgd::Sgd(std::vector<ParamRef> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  DCNAS_CHECK(lr > 0.0, "SGD learning rate must be > 0");
  DCNAS_CHECK(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0,1)");
  DCNAS_CHECK(weight_decay >= 0.0, "weight decay must be >= 0");
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = *params_[k].value;
    const Tensor& g = *params_[k].grad;
    Tensor& v = velocity_[k];
    const auto lr = static_cast<float>(lr_);
    const auto mu = static_cast<float>(momentum_);
    const auto wd = static_cast<float>(weight_decay_);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const float grad = g[i] + wd * w[i];
      v[i] = mu * v[i] + grad;
      w[i] -= lr * v[i];
    }
  }
}

Adam::Adam(std::vector<ParamRef> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  DCNAS_CHECK(lr > 0.0, "Adam learning rate must be > 0");
  DCNAS_CHECK(beta1 >= 0.0 && beta1 < 1.0, "beta1 must be in [0,1)");
  DCNAS_CHECK(beta2 >= 0.0 && beta2 < 1.0, "beta2 must be in [0,1)");
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto lr = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = *params_[k].value;
    const Tensor& g = *params_[k].grad;
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    const auto b1 = static_cast<float>(beta1_);
    const auto b2 = static_cast<float>(beta2_);
    const auto wd = static_cast<float>(weight_decay_);
    const auto eps = static_cast<float>(eps_);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const float grad = g[i] + wd * w[i];
      m[i] = b1 * m[i] + (1.0f - b1) * grad;
      v[i] = b2 * v[i] + (1.0f - b2) * grad * grad;
      w[i] -= lr * m[i] / (std::sqrt(v[i]) + eps);
    }
  }
}

}  // namespace dcnas::nn
