#include "dcnas/nn/residual.hpp"

#include "dcnas/tensor/ops.hpp"

namespace dcnas::nn {

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride, Rng& rng)
    : out_channels_(out_channels), stride_(stride) {
  DCNAS_CHECK(stride == 1 || stride == 2, "BasicBlock stride must be 1 or 2");
  conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                    /*bias=*/false, rng);
  bn1_ = std::make_unique<BatchNorm2d>(out_channels);
  conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1,
                                    /*bias=*/false, rng);
  bn2_ = std::make_unique<BatchNorm2d>(out_channels);
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride,
                                          0, /*bias=*/false, rng);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor BasicBlock::forward(const Tensor& input) {
  Tensor y = bn1_->forward(conv1_->forward(input));
  relu_inplace(y, training_ ? &relu1_mask_ : nullptr);
  y = bn2_->forward(conv2_->forward(y));
  Tensor shortcut =
      proj_conv_ ? proj_bn_->forward(proj_conv_->forward(input)) : input;
  y.add_(shortcut);
  relu_inplace(y, training_ ? &relu2_mask_ : nullptr);
  return y;
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  DCNAS_CHECK(!relu2_mask_.empty(), "BasicBlock::backward without forward");
  // Through the final ReLU.
  Tensor g = grad_output;
  for (std::int64_t i = 0; i < g.numel(); ++i) g[i] *= relu2_mask_[i];
  // The add fans the gradient out to both branches.
  Tensor g_short = g;
  // Main branch: bn2 <- conv2 <- relu1 <- bn1 <- conv1.
  Tensor g_main = conv2_->backward(bn2_->backward(g));
  for (std::int64_t i = 0; i < g_main.numel(); ++i)
    g_main[i] *= relu1_mask_[i];
  g_main = conv1_->backward(bn1_->backward(g_main));
  // Shortcut branch.
  if (proj_conv_) {
    g_short = proj_conv_->backward(proj_bn_->backward(g_short));
  }
  g_main.add_(g_short);
  return g_main;
}

void BasicBlock::collect_params(const std::string& prefix,
                                std::vector<ParamRef>& out) {
  conv1_->collect_params(prefix + ".conv1", out);
  bn1_->collect_params(prefix + ".bn1", out);
  conv2_->collect_params(prefix + ".conv2", out);
  bn2_->collect_params(prefix + ".bn2", out);
  if (proj_conv_) {
    proj_conv_->collect_params(prefix + ".proj_conv", out);
    proj_bn_->collect_params(prefix + ".proj_bn", out);
  }
}

void BasicBlock::collect_buffers(const std::string& prefix,
                                 std::vector<ParamRef>& out) {
  bn1_->collect_buffers(prefix + ".bn1", out);
  bn2_->collect_buffers(prefix + ".bn2", out);
  if (proj_bn_) proj_bn_->collect_buffers(prefix + ".proj_bn", out);
}

void BasicBlock::set_training(bool training) {
  Module::set_training(training);
  conv1_->set_training(training);
  bn1_->set_training(training);
  conv2_->set_training(training);
  bn2_->set_training(training);
  if (proj_conv_) {
    proj_conv_->set_training(training);
    proj_bn_->set_training(training);
  }
}

}  // namespace dcnas::nn
