#include "dcnas/nn/loss.hpp"

#include <cmath>

#include "dcnas/common/error.hpp"
#include "dcnas/tensor/ops.hpp"

namespace dcnas::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<int>& labels) {
  DCNAS_CHECK(logits.ndim() == 2, "loss expects (N, classes) logits");
  const std::int64_t n = logits.dim(0);
  const std::int64_t classes = logits.dim(1);
  DCNAS_CHECK(static_cast<std::int64_t>(labels.size()) == n,
              "label count must match batch size");
  probs_ = softmax_rows(logits);
  labels_ = labels;
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    DCNAS_CHECK(y >= 0 && y < classes, "label out of range");
    const double p =
        std::max(static_cast<double>(probs_.at(i, y)), 1e-12);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(n);
}

Tensor SoftmaxCrossEntropy::backward() const {
  DCNAS_CHECK(!probs_.empty(), "loss backward before forward");
  const std::int64_t n = probs_.dim(0);
  Tensor grad = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    grad.at(i, labels_[static_cast<std::size_t>(i)]) -= 1.0f;
  }
  grad.mul_(inv_n);
  return grad;
}

}  // namespace dcnas::nn
