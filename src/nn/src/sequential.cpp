#include "dcnas/nn/sequential.hpp"

namespace dcnas::nn {

void Sequential::append(ModulePtr layer) {
  DCNAS_CHECK(layer != nullptr, "Sequential::append requires a layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_params(const std::string& prefix,
                                std::vector<ParamRef>& out) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->collect_params(
        prefix + "." + std::to_string(i) + "_" + layers_[i]->name(), out);
  }
}

void Sequential::collect_buffers(const std::string& prefix,
                                 std::vector<ParamRef>& out) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->collect_buffers(
        prefix + "." + std::to_string(i) + "_" + layers_[i]->name(), out);
  }
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

Module& Sequential::layer(std::size_t i) {
  DCNAS_CHECK(i < layers_.size(), "Sequential layer index out of range");
  return *layers_[i];
}

}  // namespace dcnas::nn
