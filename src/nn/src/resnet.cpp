#include "dcnas/nn/resnet.hpp"

#include <sstream>

#include "dcnas/nn/activations.hpp"
#include "dcnas/nn/batchnorm.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/nn/linear.hpp"
#include "dcnas/nn/pooling.hpp"
#include "dcnas/nn/residual.hpp"
#include "dcnas/tensor/im2col.hpp"

namespace dcnas::nn {

ResNetConfig ResNetConfig::baseline(std::int64_t channels) {
  ResNetConfig c;
  c.in_channels = channels;
  return c;
}

void ResNetConfig::validate() const {
  // Bounds are the widened NAS universe (SearchSpaceSpec::wide), a strict
  // superset of the paper's Figure 2 values.
  DCNAS_CHECK(in_channels == 5 || in_channels == 7,
              "in_channels must be 5 or 7 (paper's input variants)");
  DCNAS_CHECK(conv1_kernel == 1 || conv1_kernel == 3 || conv1_kernel == 5 ||
                  conv1_kernel == 7,
              "conv1_kernel must be in {1, 3, 5, 7}");
  DCNAS_CHECK(conv1_stride == 1 || conv1_stride == 2,
              "conv1_stride must be 1 or 2");
  DCNAS_CHECK(conv1_padding >= 0 && conv1_padding <= 3,
              "conv1_padding must be in {0, 1, 2, 3}");
  DCNAS_CHECK(pool_kernel >= 2 && pool_kernel <= 4,
              "pool_kernel must be in {2, 3, 4}");
  DCNAS_CHECK(pool_stride == 1 || pool_stride == 2,
              "pool_stride must be 1 or 2");
  DCNAS_CHECK(init_width == 16 || init_width == 24 || init_width == 32 ||
                  init_width == 48 || init_width == 64 || init_width == 96,
              "init_width must be in {16, 24, 32, 48, 64, 96}");
  DCNAS_CHECK(blocks_per_stage >= 1 && blocks_per_stage <= 3,
              "blocks_per_stage must be in {1, 2, 3}");
  DCNAS_CHECK(num_classes >= 2, "num_classes must be >= 2");
}

std::int64_t ResNetConfig::stage_width(int stage) const {
  DCNAS_CHECK(stage >= 0 && stage < 4, "ResNet-18 has four stages");
  return init_width << stage;
}

std::string ResNetConfig::to_string() const {
  std::ostringstream os;
  os << "ResNetConfig{ch=" << in_channels << ", k=" << conv1_kernel
     << ", s=" << conv1_stride << ", p=" << conv1_padding
     << ", pool=" << (with_pool ? "yes" : "no");
  if (with_pool) os << "(k=" << pool_kernel << ",s=" << pool_stride << ")";
  os << ", width=" << init_width << ", classes=" << num_classes << "}";
  return os.str();
}

ConfigurableResNet::ConfigurableResNet(const ResNetConfig& config, Rng& rng)
    : config_(config) {
  config_.validate();
  const std::int64_t w = config_.init_width;
  body_.emplace<Conv2d>(config_.in_channels, w, config_.conv1_kernel,
                        config_.conv1_stride, config_.conv1_padding,
                        /*bias=*/false, rng);
  body_.emplace<BatchNorm2d>(w);
  body_.emplace<ReLU>();
  if (config_.with_pool) {
    // Same padding convention as torchvision's ResNet stem (k3 -> p1).
    body_.emplace<MaxPool2d>(config_.pool_kernel, config_.pool_stride,
                             (config_.pool_kernel - 1) / 2);
  }
  // Four stages of blocks_per_stage BasicBlocks; stages 2-4 halve the
  // spatial size in their first block.
  std::int64_t in_ch = w;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t out_ch = config_.stage_width(stage);
    const std::int64_t stride = (stage == 0) ? 1 : 2;
    body_.emplace<BasicBlock>(in_ch, out_ch, stride, rng);
    for (std::int64_t b = 1; b < config_.blocks_per_stage; ++b) {
      body_.emplace<BasicBlock>(out_ch, out_ch, 1, rng);
    }
    in_ch = out_ch;
  }
  body_.emplace<GlobalAvgPool>();
  body_.emplace<Linear>(config_.fc_in_features(), config_.num_classes, rng);
}

Tensor ConfigurableResNet::forward(const Tensor& input) {
  DCNAS_CHECK(input.ndim() == 4 && input.dim(1) == config_.in_channels,
              "ConfigurableResNet expects NCHW input with " +
                  std::to_string(config_.in_channels) + " channels");
  return body_.forward(input);
}

Tensor ConfigurableResNet::backward(const Tensor& grad_output) {
  return body_.backward(grad_output);
}

void ConfigurableResNet::collect_params(const std::string& prefix,
                                        std::vector<ParamRef>& out) {
  body_.collect_params(prefix, out);
}

void ConfigurableResNet::collect_buffers(const std::string& prefix,
                                         std::vector<ParamRef>& out) {
  body_.collect_buffers(prefix, out);
}

void ConfigurableResNet::set_training(bool training) {
  Module::set_training(training);
  body_.set_training(training);
}

std::string ConfigurableResNet::summary(std::int64_t input_hw) const {
  std::ostringstream os;
  std::int64_t hw = input_hw;
  os << "ConfigurableResNet " << config_.to_string() << "\n";
  os << "  input:            (" << config_.in_channels << ", " << hw << ", "
     << hw << ")\n";
  hw = conv_out_size(hw, config_.conv1_kernel, config_.conv1_stride,
                     config_.conv1_padding);
  os << "  conv1+bn+relu:    (" << config_.init_width << ", " << hw << ", "
     << hw << ")\n";
  if (config_.with_pool) {
    hw = conv_out_size(hw, config_.pool_kernel, config_.pool_stride,
                       (config_.pool_kernel - 1) / 2);
    os << "  maxpool:          (" << config_.init_width << ", " << hw << ", "
       << hw << ")\n";
  }
  for (int stage = 0; stage < 4; ++stage) {
    if (stage > 0) hw = (hw + 1) / 2;  // stride-2 first block, padding 1
    os << "  stage" << (stage + 1) << " x" << config_.blocks_per_stage
       << " blocks: (" << config_.stage_width(stage) << ", " << hw << ", "
       << hw << ")\n";
  }
  os << "  global avg pool:  (" << config_.fc_in_features() << ")\n";
  os << "  fc:               (" << config_.num_classes << ")\n";
  return os.str();
}

}  // namespace dcnas::nn
