#include "dcnas/nn/batchnorm.hpp"

#include <cmath>
#include <vector>

#include "dcnas/common/thread_pool.hpp"

namespace dcnas::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
  DCNAS_CHECK(channels > 0, "BatchNorm2d channels must be > 0");
  DCNAS_CHECK(eps > 0.0f, "BatchNorm2d eps must be > 0");
  gamma_ = Tensor::full({channels_}, 1.0f);
  beta_ = Tensor({channels_});
  gamma_grad_ = Tensor({channels_});
  beta_grad_ = Tensor({channels_});
  running_mean_ = Tensor({channels_});
  running_var_ = Tensor::full({channels_}, 1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  DCNAS_CHECK(input.ndim() == 4 && input.dim(1) == channels_,
              "BatchNorm2d input must be NCHW with matching channels");
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t hw = h * w;
  const std::int64_t count = n * hw;
  Tensor output(input.shape());

  // Channels are fully independent (statistics, normalization, and running-
  // moment updates are all per-channel), so both modes parallelize over the
  // channel axis; every channel writes disjoint planes/state, which keeps
  // results bitwise deterministic for any thread count.
  if (training_) {
    DCNAS_CHECK(count > 1, "BatchNorm2d training needs more than one sample");
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
    cached_count_ = count;
    parallel_for(0, channels_, [&](std::int64_t c) {
      // Batch mean/var over N,H,W for this channel.
      double sum = 0.0, sumsq = 0.0;
      for (std::int64_t s = 0; s < n; ++s) {
        const float* plane = input.data() + (s * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          sum += plane[i];
          sumsq += static_cast<double>(plane[i]) * plane[i];
        }
      }
      const double mean = sum / static_cast<double>(count);
      const double var = sumsq / static_cast<double>(count) - mean * mean;
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
      const float g = gamma_[c], b = beta_[c];
      for (std::int64_t s = 0; s < n; ++s) {
        const float* plane = input.data() + (s * channels_ + c) * hw;
        float* xhat = cached_xhat_.data() + (s * channels_ + c) * hw;
        float* out = output.data() + (s * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const float xh = (plane[i] - static_cast<float>(mean)) * inv_std;
          xhat[i] = xh;
          out[i] = g * xh + b;
        }
      }
      // PyTorch stores the *unbiased* variance in running_var.
      const double unbiased =
          var * static_cast<double>(count) / static_cast<double>(count - 1);
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(unbiased);
    });
  } else {
    parallel_for(0, channels_, [&](std::int64_t c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float g = gamma_[c], b = beta_[c], m = running_mean_[c];
      for (std::int64_t s = 0; s < n; ++s) {
        const float* plane = input.data() + (s * channels_ + c) * hw;
        float* out = output.data() + (s * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          out[i] = g * (plane[i] - m) * inv_std + b;
        }
      }
    });
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  DCNAS_CHECK(!cached_xhat_.empty(),
              "BatchNorm2d::backward requires a training-mode forward pass");
  DCNAS_CHECK(grad_output.same_shape(cached_xhat_),
              "BatchNorm2d backward shape mismatch");
  const std::int64_t n = grad_output.dim(0), h = grad_output.dim(2),
                     w = grad_output.dim(3);
  const std::int64_t hw = h * w;
  const auto count = static_cast<float>(cached_count_);
  Tensor grad_input(grad_output.shape());

  // Parallel over channels: gamma/beta gradient slots and grad_input planes
  // are disjoint per channel, and each channel's double-precision reductions
  // keep their serial order, so the result is thread-count independent.
  parallel_for(0, channels_, [&](std::int64_t c) {
    // Standard batchnorm backward:
    // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - xhat * sum(dy*xhat))
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* dy = grad_output.data() + (s * channels_ + c) * hw;
      const float* xh = cached_xhat_.data() + (s * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_grad_[c] += static_cast<float>(sum_dy_xhat);
    beta_grad_[c] += static_cast<float>(sum_dy);
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
    const float scale = gamma_[c] * inv_std / count;
    const auto sdy = static_cast<float>(sum_dy);
    const auto sdyx = static_cast<float>(sum_dy_xhat);
    for (std::int64_t s = 0; s < n; ++s) {
      const float* dy = grad_output.data() + (s * channels_ + c) * hw;
      const float* xh = cached_xhat_.data() + (s * channels_ + c) * hw;
      float* dx = grad_input.data() + (s * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        dx[i] = scale * (count * dy[i] - sdy - xh[i] * sdyx);
      }
    }
  });
  return grad_input;
}

void BatchNorm2d::collect_params(const std::string& prefix,
                                 std::vector<ParamRef>& out) {
  out.push_back({prefix + ".gamma", &gamma_, &gamma_grad_});
  out.push_back({prefix + ".beta", &beta_, &beta_grad_});
}

void BatchNorm2d::collect_buffers(const std::string& prefix,
                                  std::vector<ParamRef>& out) {
  out.push_back({prefix + ".running_mean", &running_mean_, nullptr});
  out.push_back({prefix + ".running_var", &running_var_, nullptr});
}

}  // namespace dcnas::nn
