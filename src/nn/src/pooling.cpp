#include "dcnas/nn/pooling.hpp"

#include "dcnas/tensor/ops.hpp"

namespace dcnas::nn {

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride,
                     std::int64_t padding)
    : kernel_(kernel), stride_(stride), padding_(padding) {
  DCNAS_CHECK(kernel > 0 && stride > 0 && padding >= 0, "bad pool geometry");
  // PyTorch enforces this so no pooling window is entirely padding.
  DCNAS_CHECK(padding <= kernel / 2,
              "pool padding must be at most half the kernel size");
}

Tensor MaxPool2d::forward(const Tensor& input) {
  input_shape_ = input.shape();
  return maxpool2d_forward(input, kernel_, stride_, padding_,
                           training_ ? &argmax_ : nullptr);
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  DCNAS_CHECK(!argmax_.empty(), "MaxPool2d::backward without cached forward");
  return maxpool2d_backward(grad_output, input_shape_, argmax_);
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  input_shape_ = input.shape();
  return global_avgpool_forward(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  DCNAS_CHECK(!input_shape_.empty(),
              "GlobalAvgPool::backward without cached forward");
  return global_avgpool_backward(grad_output, input_shape_);
}

}  // namespace dcnas::nn
