#include "dcnas/nn/activations.hpp"

#include "dcnas/tensor/ops.hpp"

namespace dcnas::nn {

Tensor ReLU::forward(const Tensor& input) {
  Tensor out = input;
  relu_inplace(out, training_ ? &mask_ : nullptr);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  DCNAS_CHECK(!mask_.empty(), "ReLU::backward without cached forward");
  DCNAS_CHECK(grad_output.same_shape(mask_), "ReLU backward shape mismatch");
  Tensor grad_in = grad_output;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

}  // namespace dcnas::nn
