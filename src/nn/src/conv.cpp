#include "dcnas/nn/conv.hpp"

#include <vector>

#include "dcnas/common/thread_pool.hpp"
#include "dcnas/nn/init.hpp"
#include "dcnas/tensor/gemm.hpp"
#include "dcnas/tensor/im2col.hpp"

namespace dcnas::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool bias, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  DCNAS_CHECK(in_channels > 0 && out_channels > 0, "conv channels must be > 0");
  // Unlike pooling, convolution permits padding >= kernel (PyTorch does
  // too); the NAS search space pairs kernel 3 with padding 3.
  DCNAS_CHECK(kernel > 0 && stride > 0 && padding >= 0, "bad conv geometry");
  weight_ = Tensor({out_channels_, in_channels_ * kernel_ * kernel_});
  weight_grad_ = Tensor(weight_.shape());
  const std::int64_t fan_out = out_channels_ * kernel_ * kernel_;
  kaiming_normal(weight_, fan_out, rng);
  if (has_bias_) {
    bias_ = Tensor({out_channels_});
    bias_grad_ = Tensor({out_channels_});
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  DCNAS_CHECK(input.ndim() == 4, "Conv2d expects NCHW input");
  DCNAS_CHECK(input.dim(1) == in_channels_,
              "Conv2d channel mismatch: got " + std::to_string(input.dim(1)) +
                  ", expected " + std::to_string(in_channels_));
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = conv_out_size(h, kernel_, stride_, padding_);
  const std::int64_t ow = conv_out_size(w, kernel_, stride_, padding_);
  const std::int64_t col_rows = in_channels_ * kernel_ * kernel_;
  const std::int64_t col_cols = oh * ow;

  if (training_) cached_input_ = input;
  Tensor output({n, out_channels_, oh, ow});

  parallel_for_chunked(0, n, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> col(static_cast<std::size_t>(col_rows * col_cols));
    for (std::int64_t s = lo; s < hi; ++s) {
      const float* im = input.data() + s * in_channels_ * h * w;
      im2col(im, in_channels_, h, w, kernel_, stride_, padding_, col.data());
      float* out = output.data() + s * out_channels_ * col_cols;
      gemm(out_channels_, col_cols, col_rows, 1.0f, weight_.data(), col.data(),
           0.0f, out);
      if (has_bias_) {
        for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
          const float b = bias_[oc];
          float* row = out + oc * col_cols;
          for (std::int64_t i = 0; i < col_cols; ++i) row[i] += b;
        }
      }
    }
  });
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  DCNAS_CHECK(!cached_input_.empty(),
              "Conv2d::backward called without a cached forward pass");
  const Tensor& input = cached_input_;
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const std::int64_t col_rows = in_channels_ * kernel_ * kernel_;
  const std::int64_t col_cols = oh * ow;

  Tensor grad_input(input.shape());
  // Sample-serial accumulation into weight_grad_ keeps determinism (no
  // atomics / reduction ordering effects); per-sample GEMMs are themselves
  // parallel over rows.
  std::vector<float> col(static_cast<std::size_t>(col_rows * col_cols));
  std::vector<float> grad_col(static_cast<std::size_t>(col_rows * col_cols));
  for (std::int64_t s = 0; s < n; ++s) {
    const float* im = input.data() + s * in_channels_ * h * w;
    const float* go = grad_output.data() + s * out_channels_ * col_cols;
    im2col(im, in_channels_, h, w, kernel_, stride_, padding_, col.data());
    // dW += dY · colᵀ
    gemm_bt(out_channels_, col_rows, col_cols, 1.0f, go, col.data(), 1.0f,
            weight_grad_.data());
    // dCol = Wᵀ · dY
    gemm_at(col_rows, col_cols, out_channels_, 1.0f, weight_.data(), go, 0.0f,
            grad_col.data());
    float* gi = grad_input.data() + s * in_channels_ * h * w;
    col2im(grad_col.data(), in_channels_, h, w, kernel_, stride_, padding_, gi);
    if (has_bias_) {
      for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
        const float* row = go + oc * col_cols;
        float acc = 0.0f;
        for (std::int64_t i = 0; i < col_cols; ++i) acc += row[i];
        bias_grad_[oc] += acc;
      }
    }
  }
  return grad_input;
}

void Conv2d::collect_params(const std::string& prefix,
                            std::vector<ParamRef>& out) {
  out.push_back({prefix + ".weight", &weight_, &weight_grad_});
  if (has_bias_) out.push_back({prefix + ".bias", &bias_, &bias_grad_});
}

}  // namespace dcnas::nn
