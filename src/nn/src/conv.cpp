#include "dcnas/nn/conv.hpp"

#include <algorithm>
#include <vector>

#include "dcnas/common/thread_pool.hpp"
#include "dcnas/nn/init.hpp"
#include "dcnas/tensor/gemm.hpp"
#include "dcnas/tensor/im2col.hpp"

namespace dcnas::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool bias, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias) {
  DCNAS_CHECK(in_channels > 0 && out_channels > 0, "conv channels must be > 0");
  // Unlike pooling, convolution permits padding >= kernel (PyTorch does
  // too); the NAS search space pairs kernel 3 with padding 3.
  DCNAS_CHECK(kernel > 0 && stride > 0 && padding >= 0, "bad conv geometry");
  weight_ = Tensor({out_channels_, in_channels_ * kernel_ * kernel_});
  weight_grad_ = Tensor(weight_.shape());
  const std::int64_t fan_out = out_channels_ * kernel_ * kernel_;
  kaiming_normal(weight_, fan_out, rng);
  if (has_bias_) {
    bias_ = Tensor({out_channels_});
    bias_grad_ = Tensor({out_channels_});
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  DCNAS_CHECK(input.ndim() == 4, "Conv2d expects NCHW input");
  DCNAS_CHECK(input.dim(1) == in_channels_,
              "Conv2d channel mismatch: got " + std::to_string(input.dim(1)) +
                  ", expected " + std::to_string(in_channels_));
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const Im2colSpec spec{in_channels_, h, w, kernel_, stride_, padding_};
  const std::int64_t oh = spec.out_h();
  const std::int64_t ow = spec.out_w();
  const std::int64_t col_cols = oh * ow;

  if (training_) cached_input_ = input;
  Tensor output({n, out_channels_, oh, ow});

  parallel_for_chunked(0, n, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t s = lo; s < hi; ++s) {
      const float* im = input.data() + s * in_channels_ * h * w;
      float* out = output.data() + s * out_channels_ * col_cols;
      // Fused path: B panels are packed straight from the image inside the
      // GEMM driver, so the CKK x OHW column matrix is never materialized.
      gemm_im2col(out_channels_, 1.0f, weight_.data(), im, spec, 0.0f, out);
      if (has_bias_) {
        for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
          const float b = bias_[oc];
          float* row = out + oc * col_cols;
          for (std::int64_t i = 0; i < col_cols; ++i) row[i] += b;
        }
      }
    }
  });
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  DCNAS_CHECK(!cached_input_.empty(),
              "Conv2d::backward called without a cached forward pass");
  const Tensor& input = cached_input_;
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const std::int64_t col_rows = in_channels_ * kernel_ * kernel_;
  const std::int64_t col_cols = oh * ow;

  Tensor grad_input(input.shape());

  // Samples are partitioned into a fixed number of groups; each group
  // accumulates dW/db into its own buffer and the buffers are reduced in
  // ascending group order afterwards. The group count depends only on the
  // sample count and the (machine-fixed) pool size — never on the thread
  // schedule — so gradients are bitwise reproducible run-to-run. With a
  // single worker this collapses to the seed's sample-serial accumulation
  // with zero extra buffering.
  const auto workers = static_cast<std::int64_t>(ThreadPool::global().size());
  const std::int64_t groups =
      workers > 1 ? std::min<std::int64_t>({n, 2 * workers, 16}) : 1;
  const std::int64_t wsize = weight_grad_.numel();
  std::vector<float> wg_parts;
  std::vector<float> bg_parts;
  if (groups > 1) {
    wg_parts.assign(static_cast<std::size_t>(groups * wsize), 0.0f);
    if (has_bias_) {
      bg_parts.assign(static_cast<std::size_t>(groups * out_channels_), 0.0f);
    }
  }

  parallel_for_chunked(0, groups, [&](std::int64_t glo, std::int64_t ghi) {
    std::vector<float> col(static_cast<std::size_t>(col_rows * col_cols));
    std::vector<float> grad_col(
        static_cast<std::size_t>(col_rows * col_cols));
    for (std::int64_t g = glo; g < ghi; ++g) {
      const std::int64_t s0 = g * n / groups;
      const std::int64_t s1 = (g + 1) * n / groups;
      float* wg = groups > 1 ? wg_parts.data() + g * wsize
                             : weight_grad_.data();
      float* bg = nullptr;
      if (has_bias_) {
        bg = groups > 1 ? bg_parts.data() + g * out_channels_
                        : bias_grad_.data();
      }
      for (std::int64_t s = s0; s < s1; ++s) {
        const float* im = input.data() + s * in_channels_ * h * w;
        const float* go = grad_output.data() + s * out_channels_ * col_cols;
        im2col(im, in_channels_, h, w, kernel_, stride_, padding_, col.data());
        // dW += dY · colᵀ
        gemm_bt(out_channels_, col_rows, col_cols, 1.0f, go, col.data(), 1.0f,
                wg);
        // dCol = Wᵀ · dY
        gemm_at(col_rows, col_cols, out_channels_, 1.0f, weight_.data(), go,
                0.0f, grad_col.data());
        float* gi = grad_input.data() + s * in_channels_ * h * w;
        col2im(grad_col.data(), in_channels_, h, w, kernel_, stride_, padding_,
               gi);
        if (bg) {
          for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
            const float* row = go + oc * col_cols;
            float acc = 0.0f;
            for (std::int64_t i = 0; i < col_cols; ++i) acc += row[i];
            bg[oc] += acc;
          }
        }
      }
    }
  });

  if (groups > 1) {
    for (std::int64_t g = 0; g < groups; ++g) {
      const float* wg = wg_parts.data() + g * wsize;
      float* dst = weight_grad_.data();
      for (std::int64_t i = 0; i < wsize; ++i) dst[i] += wg[i];
      if (has_bias_) {
        const float* bg = bg_parts.data() + g * out_channels_;
        for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
          bias_grad_[oc] += bg[oc];
        }
      }
    }
  }
  return grad_input;
}

void Conv2d::collect_params(const std::string& prefix,
                            std::vector<ParamRef>& out) {
  out.push_back({prefix + ".weight", &weight_, &weight_grad_});
  if (has_bias_) out.push_back({prefix + ".bias", &bias_, &bias_grad_});
}

}  // namespace dcnas::nn
