#include "dcnas/nn/metrics.hpp"

#include "dcnas/common/error.hpp"
#include "dcnas/tensor/ops.hpp"

namespace dcnas::nn {

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  DCNAS_CHECK(logits.ndim() == 2, "accuracy expects (N, classes) logits");
  DCNAS_CHECK(static_cast<std::int64_t>(labels.size()) == logits.dim(0),
              "label count mismatch");
  if (labels.empty()) return 0.0;
  const auto preds = argmax_rows(logits);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (static_cast<int>(preds[i]) == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double BinaryConfusion::precision() const {
  const auto denom = static_cast<double>(tp + fp);
  return denom > 0.0 ? static_cast<double>(tp) / denom : 0.0;
}

double BinaryConfusion::recall() const {
  const auto denom = static_cast<double>(tp + fn);
  return denom > 0.0 ? static_cast<double>(tp) / denom : 0.0;
}

double BinaryConfusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double BinaryConfusion::accuracy() const {
  const auto total = static_cast<double>(tp + fp + tn + fn);
  return total > 0.0 ? static_cast<double>(tp + tn) / total : 0.0;
}

BinaryConfusion binary_confusion(const std::vector<int>& predictions,
                                 const std::vector<int>& labels) {
  DCNAS_CHECK(predictions.size() == labels.size(),
              "prediction/label count mismatch");
  BinaryConfusion c;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    DCNAS_CHECK((labels[i] == 0 || labels[i] == 1) &&
                    (predictions[i] == 0 || predictions[i] == 1),
                "binary_confusion expects 0/1 values");
    if (labels[i] == 1) {
      (predictions[i] == 1 ? c.tp : c.fn)++;
    } else {
      (predictions[i] == 1 ? c.fp : c.tn)++;
    }
  }
  return c;
}

}  // namespace dcnas::nn
