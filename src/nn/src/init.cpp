#include "dcnas/nn/init.hpp"

#include <cmath>

namespace dcnas::nn {

void kaiming_normal(Tensor& w, std::int64_t fan_out, Rng& rng) {
  DCNAS_CHECK(fan_out > 0, "kaiming_normal requires positive fan_out");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_out));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng) {
  DCNAS_CHECK(fan_in > 0 && fan_out > 0, "xavier_uniform requires positive fans");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-a, a));
  }
}

void linear_default(Tensor& w, std::int64_t fan_in, Rng& rng) {
  DCNAS_CHECK(fan_in > 0, "linear_default requires positive fan_in");
  const float a = 1.0f / std::sqrt(static_cast<float>(fan_in));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-a, a));
  }
}

}  // namespace dcnas::nn
