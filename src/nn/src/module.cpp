#include "dcnas/nn/module.hpp"

namespace dcnas::nn {

void Module::collect_params(const std::string& /*prefix*/,
                            std::vector<ParamRef>& /*out*/) {
  // Parameter-free layers (ReLU, pooling) inherit this no-op.
}

void Module::collect_buffers(const std::string& /*prefix*/,
                             std::vector<ParamRef>& /*out*/) {
  // Most layers carry no non-learnable state.
}

std::vector<ParamRef> Module::parameters() {
  std::vector<ParamRef> out;
  collect_params(name(), out);
  return out;
}

std::vector<ParamRef> Module::buffers() {
  std::vector<ParamRef> out;
  collect_buffers(name(), out);
  return out;
}

void Module::zero_grad() {
  for (auto& p : parameters()) {
    if (p.grad) p.grad->zero();
  }
}

std::int64_t Module::num_params() {
  std::int64_t n = 0;
  for (const auto& p : parameters()) {
    if (p.value) n += p.value->numel();
  }
  return n;
}

}  // namespace dcnas::nn
