#include "dcnas/nn/trainer.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "dcnas/common/logging.hpp"
#include "dcnas/common/rng.hpp"
#include "dcnas/nn/metrics.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"
#include "dcnas/tensor/ops.hpp"

namespace dcnas::nn {

Tensor gather_batch(const Tensor& images,
                    const std::vector<std::int64_t>& indices) {
  DCNAS_CHECK(images.ndim() == 4, "gather_batch expects NCHW images");
  const std::int64_t chw = images.dim(1) * images.dim(2) * images.dim(3);
  Tensor batch({static_cast<std::int64_t>(indices.size()), images.dim(1),
                images.dim(2), images.dim(3)});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t src = indices[i];
    DCNAS_CHECK(src >= 0 && src < images.dim(0),
                "gather_batch index out of range");
    std::memcpy(batch.data() + static_cast<std::int64_t>(i) * chw,
                images.data() + src * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
  }
  return batch;
}

FitResult fit(Module& model, const Tensor& images,
              const std::vector<int>& labels, const TrainOptions& options) {
  DCNAS_CHECK(images.ndim() == 4, "fit expects NCHW images");
  const std::int64_t n = images.dim(0);
  DCNAS_CHECK(static_cast<std::int64_t>(labels.size()) == n,
              "fit label count mismatch");
  DCNAS_CHECK(options.epochs > 0 && options.batch_size > 0,
              "fit requires positive epochs and batch size");
  DCNAS_CHECK(n >= 2, "fit needs at least two samples (BatchNorm)");

  obs::Span fit_span("nn", "nn.fit");
  if (fit_span.armed()) {
    fit_span.arg("epochs", options.epochs);
    fit_span.arg("samples", n);
  }
  static obs::Counter& epoch_count =
      obs::MetricsRegistry::global().counter("nn.train.epoch.count");
  static obs::Counter& batch_count =
      obs::MetricsRegistry::global().counter("nn.train.batch.count");
  static obs::Counter& sample_count =
      obs::MetricsRegistry::global().counter("nn.train.samples.count");
  static obs::Counter& dropped_count =
      obs::MetricsRegistry::global().counter("nn.train.samples.dropped");

  Rng rng(options.seed);
  model.set_training(true);
  Sgd optimizer(model.parameters(), options.lr, options.momentum,
                options.weight_decay);
  SoftmaxCrossEntropy loss;

  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  FitResult result;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    obs::Span epoch_span("nn", "nn.epoch");
    if (epoch_span.armed()) epoch_span.arg("epoch", epoch);
    if (options.shuffle) rng.shuffle(order);
    // Epoch statistics are sample-weighted: a trailing partial batch
    // contributes proportionally to its size instead of counting as a full
    // batch, and any trailing sample dropped for BatchNorm (batches need
    // >= 2 samples) is recorded in nn.train.samples.dropped.
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    std::int64_t batches = 0;
    std::int64_t samples_seen = 0;
    for (std::int64_t start = 0; start + 1 < n; start += options.batch_size) {
      const std::int64_t end = std::min(start + options.batch_size, n);
      if (end - start < 2) break;  // BatchNorm needs >= 2 values per channel
      DCNAS_TRACE_SPAN("nn", "nn.batch");
      std::vector<std::int64_t> idx(order.begin() + start, order.begin() + end);
      const Tensor batch = gather_batch(images, idx);
      std::vector<int> batch_labels(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) {
        batch_labels[i] = labels[static_cast<std::size_t>(idx[i])];
      }
      const Tensor logits = model.forward(batch);
      const auto batch_n = static_cast<double>(end - start);
      loss_sum += loss.forward(logits, batch_labels) * batch_n;
      acc_sum += accuracy(logits, batch_labels) * batch_n;
      ++batches;
      samples_seen += end - start;
      optimizer.zero_grad();
      model.backward(loss.backward());
      optimizer.step();
    }
    DCNAS_ASSERT(batches > 0 && samples_seen > 0, "fit produced no batches");
    epoch_count.add(1);
    batch_count.add(batches);
    sample_count.add(samples_seen);
    dropped_count.add(n - samples_seen);
    result.epoch_loss.push_back(loss_sum / static_cast<double>(samples_seen));
    result.epoch_accuracy.push_back(acc_sum /
                                    static_cast<double>(samples_seen));
    if (options.verbose) {
      DCNAS_LOG_INFO << "epoch " << (epoch + 1) << "/" << options.epochs
                     << " loss=" << result.epoch_loss.back()
                     << " acc=" << result.epoch_accuracy.back();
    }
  }
  return result;
}

double evaluate_accuracy(Module& model, const Tensor& images,
                         const std::vector<int>& labels,
                         std::int64_t batch_size) {
  DCNAS_CHECK(images.ndim() == 4, "evaluate_accuracy expects NCHW images");
  const std::int64_t n = images.dim(0);
  DCNAS_CHECK(static_cast<std::int64_t>(labels.size()) == n,
              "label count mismatch");
  DCNAS_CHECK(batch_size > 0, "batch_size must be > 0");
  if (n == 0) return 0.0;
  obs::Span span("nn", "nn.evaluate");
  if (span.armed()) span.arg("samples", n);
  // Evaluation must not clobber the caller's mode: a model being served or
  // benchmarked between evaluations stays in eval mode instead of being
  // silently flipped back into training.
  const bool was_training = model.training();
  model.set_training(false);
  std::int64_t hits = 0;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const std::int64_t end = std::min(start + batch_size, n);
    std::vector<std::int64_t> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    const Tensor batch = gather_batch(images, idx);
    const Tensor logits = model.forward(batch);
    const auto preds = argmax_rows(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (static_cast<int>(preds[i]) ==
          labels[static_cast<std::size_t>(start) + i]) {
        ++hits;
      }
    }
  }
  model.set_training(was_training);
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace dcnas::nn
