#pragma once
/// \file trace_export.hpp
/// \brief Chrome-trace / Perfetto-compatible JSON export of recorded spans.
///
/// The emitted document is the Trace Event Format's object form:
///   {"traceEvents": [ {"name": ..., "cat": ..., "ph": "X", "ts": ...,
///                      "dur": ..., "pid": 1, "tid": ..., "args": {...}}, ...],
///    "displayTimeUnit": "ms"}
/// using complete ("X") events with microsecond timestamps, which both
/// chrome://tracing and https://ui.perfetto.dev load directly. Span args
/// are exported as string-valued entries of the per-event "args" object.

#include <string>
#include <vector>

#include "dcnas/obs/trace.hpp"

namespace dcnas::obs {

/// Renders \p events as a Chrome-trace JSON document.
std::string chrome_trace_json(const std::vector<SpanEvent>& events);

/// Writes \p events to \p path; throws dcnas::Error when the file cannot be
/// written.
void write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events);

/// write_chrome_trace(path, TraceRecorder::global().snapshot()).
void write_chrome_trace(const std::string& path);

}  // namespace dcnas::obs
