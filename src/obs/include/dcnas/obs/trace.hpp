#pragma once
/// \file trace.hpp
/// \brief Structured tracing: nestable RAII spans recorded into lock-cheap
/// per-thread ring buffers, exportable as Chrome-trace JSON.
///
/// The paper's §5 outlook asks for profiling NAS resource usage on real
/// hardware; HW-NAS-Bench argues hardware-aware NAS needs *measured*,
/// inspectable cost data. This layer answers "where did the search / the
/// serving stack actually spend its time" with a timeline instead of only
/// aggregate phase totals (see common/profiler.hpp, now a facade over the
/// sibling metrics registry).
///
/// Design constraints, in priority order:
///  1. **Zero overhead when disabled.** `Span` construction while tracing is
///     off is a single relaxed atomic load — no clock read, no allocation,
///     no locking. Production binaries keep their instrumentation compiled
///     in and pay nothing until someone flips the runtime switch.
///  2. **Lock-cheap when enabled.** Each thread writes completed spans into
///     its own fixed-capacity ring buffer guarded by a per-thread mutex that
///     is uncontended except while a snapshot is being taken. Nothing on the
///     record path allocates: span names/categories/attributes live in
///     fixed-size inline char arrays.
///  3. **Bounded memory.** A full ring overwrites its oldest event
///     (keep-latest drop policy) and counts the drop, so a long search can
///     trace forever without growing without bound.
///
/// Spans nest by construction order within a thread (RAII guarantees LIFO),
/// which is exactly the well-nestedness Chrome "complete" (ph:"X") events
/// require. See OBSERVABILITY.md for the span taxonomy and export workflow.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace dcnas::obs {

namespace detail {
/// Process-wide tracing switch. Inline so Span's disabled-path check
/// compiles to one relaxed load with no function call.
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

/// One completed span. Plain data with inline storage only, so ring-buffer
/// writes are memcpy-cheap and never allocate.
struct SpanEvent {
  static constexpr std::size_t kNameCapacity = 48;
  static constexpr std::size_t kCategoryCapacity = 16;
  static constexpr std::size_t kArgsCapacity = 64;

  char name[kNameCapacity] = {0};          ///< e.g. "nas.trial.evaluate"
  char category[kCategoryCapacity] = {0};  ///< e.g. "nas" (taxonomy in docs)
  char args[kArgsCapacity] = {0};          ///< "key=value,key=value", may be ""
  std::uint64_t start_ns = 0;     ///< steady-clock ns since process t0
  std::uint64_t duration_ns = 0;  ///< span wall time
  std::uint32_t thread_id = 0;    ///< dense recorder-assigned id, from 1
  std::uint32_t depth = 0;        ///< nesting depth within the thread, from 0
};

struct TraceOptions {
  /// Completed spans retained per thread; older spans are overwritten
  /// (and counted as dropped) once a thread's ring is full.
  std::size_t ring_capacity = 16384;
};

/// Process-wide span sink. All methods are thread-safe.
class TraceRecorder {
 public:
  static TraceRecorder& global();

  /// Turns tracing on, discarding previously recorded events. Spans already
  /// alive keep their pre-enable disarmed/armed state.
  void enable(const TraceOptions& options = {});

  /// Turns tracing off. Recorded events are kept and stay exportable until
  /// clear() or the next enable().
  void disable();

  static bool enabled() {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// All recorded events across threads, sorted by (start_ns, longer spans
  /// first) so parents precede their children.
  std::vector<SpanEvent> snapshot() const;

  /// Events overwritten by the keep-latest drop policy since enable/clear.
  std::uint64_t dropped_count() const;

  /// Threads that have recorded at least one event since enable/clear.
  std::size_t thread_count() const;

  /// Discards all recorded events and drop counts (tracing state unchanged).
  void clear();

  const TraceOptions& options() const { return options_; }

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  friend class Span;
  struct ThreadBuffer;

  TraceRecorder() = default;
  /// Appends one completed event to the calling thread's ring buffer.
  void commit(const SpanEvent& event);
  std::shared_ptr<ThreadBuffer> local_buffer();

  mutable std::mutex registry_mu_;  ///< guards buffers_ / options_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  TraceOptions options_;
  std::uint32_t next_thread_id_ = 1;
};

/// RAII tracing span. Construction while tracing is disabled is free (one
/// relaxed atomic load); while enabled it stamps the start time and the
/// destructor commits the completed event to the per-thread ring.
///
/// \p category must be a string with static storage duration (a literal);
/// \p name is copied into inline storage (truncated to
/// SpanEvent::kNameCapacity - 1 chars).
class Span {
 public:
  Span(const char* category, std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording. Use to gate building attribute
  /// values that would otherwise cost allocations:
  ///   if (span.armed()) span.arg("config", cfg.lattice_key());
  bool armed() const { return armed_; }

  /// Attaches "key=value" to the span (comma-separated, truncated once the
  /// inline args buffer is full). No-op when not armed.
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::int64_t value);

 private:
  bool armed_ = false;
  SpanEvent event_;
};

}  // namespace dcnas::obs

// Token-pasting helpers so two DCNAS_TRACE_SPAN on different lines coexist.
#define DCNAS_OBS_CONCAT_IMPL(a, b) a##b
#define DCNAS_OBS_CONCAT(a, b) DCNAS_OBS_CONCAT_IMPL(a, b)

/// Declares an anonymous scope-long span: DCNAS_TRACE_SPAN("nn", "nn.epoch");
#define DCNAS_TRACE_SPAN(category, name) \
  ::dcnas::obs::Span DCNAS_OBS_CONCAT(dcnas_trace_span_, __LINE__)((category), (name))
