#pragma once
/// \file metrics.hpp
/// \brief Named-metric registry: counters, gauges, fixed-boundary
/// histograms, and exact-quantile summaries, with JSON / aligned-text
/// export.
///
/// Metric names follow `subsystem.noun.verb` with a unit suffix where the
/// value is not a count (e.g. `serve.request.admitted.count`,
/// `serve.request.latency_ms`); per-model families append a label suffix
/// `{model=<name>}`. The full convention lives in OBSERVABILITY.md.
///
/// Update paths are designed for hot loops: Counter/Gauge/Histogram writes
/// are lock-free atomics; Summary (which keeps raw samples for exact
/// quantiles) takes a short uncontended mutex. Registration (name lookup)
/// takes the registry mutex — call sites on hot paths should cache the
/// returned reference, which stays valid for the registry's lifetime:
/// reset() zeroes metrics in place, it never deletes them.
///
/// `common/profiler.hpp` (phase accounting) and `serve/metrics.hpp`
/// (per-model serving stats) are thin facades over this registry.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dcnas::obs {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value. Lock-free.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram. For boundaries [b0, b1, ..., bn-1] there are
/// n+1 buckets: bucket 0 counts values < b0, bucket i counts [b(i-1), bi),
/// bucket n counts values >= bn-1. Also tracks count/sum/min/max exactly.
/// All updates are lock-free atomics.
class Histogram {
 public:
  /// \p boundaries must be non-empty and strictly increasing (throws
  /// dcnas::InvalidArgument otherwise).
  explicit Histogram(std::vector<double> boundaries);

  void observe(double value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  const std::vector<double>& boundaries() const { return boundaries_; }
  std::vector<std::int64_t> bucket_counts() const;

  void reset();

  /// n+1 exponentially spaced boundaries: lo, lo*r, ..., hi.
  static std::vector<double> exponential_boundaries(double lo, double hi,
                                                    int n);

 private:
  std::vector<double> boundaries_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Raw-sample accumulator with exact quantiles — the serving-latency
/// percentile metric (a fixed-boundary histogram would interpolate).
/// Retains up to \c kMaxSamples samples; beyond that new samples still
/// update count/sum but are not retained for quantiles.
class Summary {
 public:
  static constexpr std::size_t kMaxSamples = 1 << 20;

  void observe(double value);

  std::int64_t count() const;
  double sum() const;
  /// Linear-interpolated exact quantile over retained samples, the same
  /// estimator as dcnas::quantile (common/stats.hpp). Returns 0 when empty.
  double quantile(double q) const;
  /// Copy of the retained samples, in observation order.
  std::vector<double> samples() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

/// Point-in-time copies used by the exporters.
struct HistogramSnapshot {
  std::vector<double> boundaries;
  std::vector<std::int64_t> buckets;
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct SummarySnapshot {
  std::int64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, SummarySnapshot>> summaries;
};

/// Thread-safe name -> metric registry. `global()` is the process-wide
/// instance the pipeline instrumentation records into; subsystems that need
/// isolated scopes (e.g. one Server's ServingMetrics) own private
/// instances.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  static MetricsRegistry& global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. The reference is
  /// valid for the registry's lifetime. Re-registering a name as a
  /// different kind throws dcnas::InvalidArgument. For histogram(), the
  /// boundaries are fixed on first registration; later calls ignore them.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& boundaries);
  Summary& summary(std::string_view name);

  /// Lookup without creation; nullptr when absent or a different kind.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;
  const Summary* find_summary(std::string_view name) const;

  /// Registered names (sorted) whose name starts with \p prefix.
  std::vector<std::string> names_with_prefix(std::string_view prefix) const;

  /// Zeroes every metric (resp. every metric under \p prefix) in place.
  /// References returned by counter()/histogram()/... remain valid.
  void reset();
  void reset_prefix(std::string_view prefix);

  MetricsSnapshot snapshot() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "summaries": {...}} — stable key order, parseable JSON.
  std::string to_json() const;
  /// Aligned human-readable table, one section per metric kind.
  std::string to_text() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kSummary };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Summary> summary;
  };

  Entry& entry(std::string_view name, Kind kind,
               const std::vector<double>* boundaries);
  const Entry* find(std::string_view name, Kind kind) const;

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace dcnas::obs
