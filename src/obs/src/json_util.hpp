#pragma once
/// \file json_util.hpp
/// \brief Internal JSON-writing helpers shared by the metrics and trace
/// exporters. Not installed; the public surface is the exported strings.

#include <cstdio>
#include <string>
#include <string_view>

namespace dcnas::obs::detail {

/// Escapes \p s for inclusion inside a JSON string literal.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a finite double as a JSON number that round-trips exactly.
inline std::string json_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace dcnas::obs::detail
