#include "dcnas/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "dcnas/common/error.hpp"
#include "json_util.hpp"

namespace dcnas::obs {

namespace {

void atomic_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

std::string pad_name(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  DCNAS_CHECK(!boundaries_.empty(), "histogram needs at least one boundary");
  for (std::size_t i = 1; i < boundaries_.size(); ++i) {
    DCNAS_CHECK(boundaries_[i - 1] < boundaries_[i],
                "histogram boundaries must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(
      boundaries_.size() + 1);
  for (std::size_t i = 0; i <= boundaries_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  // upper_bound: first boundary > value, so bucket i holds [b(i-1), b(i)).
  const auto bucket = static_cast<std::size_t>(it - boundaries_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }
double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> counts(boundaries_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_boundaries(double lo, double hi,
                                                      int n) {
  DCNAS_CHECK(lo > 0.0 && hi > lo && n >= 1,
              "exponential_boundaries needs 0 < lo < hi and n >= 1");
  std::vector<double> boundaries;
  boundaries.reserve(static_cast<std::size_t>(n) + 1);
  const double ratio = std::pow(hi / lo, 1.0 / n);
  double b = lo;
  for (int i = 0; i <= n; ++i) {
    boundaries.push_back(b);
    b *= ratio;
  }
  boundaries.back() = hi;  // kill accumulated rounding on the last edge
  return boundaries;
}

void Summary::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += value;
  if (samples_.size() < kMaxSamples) samples_.push_back(value);
}

std::int64_t Summary::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Summary::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Summary::quantile(double q) const {
  DCNAS_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::vector<double> xs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    xs = samples_;
  }
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<double> Summary::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void Summary::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  count_ = 0;
  sum_ = 0.0;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry(
    std::string_view name, Kind kind, const std::vector<double>* boundaries) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>(*boundaries);
        break;
      case Kind::kSummary: e.summary = std::make_unique<Summary>(); break;
    }
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  }
  DCNAS_CHECK(it->second.kind == kind,
              "metric '" + std::string(name) +
                  "' already registered as a different kind");
  return it->second;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name,
                                                    Kind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry(name, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry(name, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& boundaries) {
  return *entry(name, Kind::kHistogram, &boundaries).histogram;
}

Summary& MetricsRegistry::summary(std::string_view name) {
  return *entry(name, Kind::kSummary, nullptr).summary;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const Entry* e = find(name, Kind::kCounter);
  return e ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const Entry* e = find(name, Kind::kGauge);
  return e ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const Entry* e = find(name, Kind::kHistogram);
  return e ? e->histogram.get() : nullptr;
}

const Summary* MetricsRegistry::find_summary(std::string_view name) const {
  const Entry* e = find(name, Kind::kSummary);
  return e ? e->summary.get() : nullptr;
}

std::vector<std::string> MetricsRegistry::names_with_prefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : metrics_) {
    if (name.size() >= prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      names.push_back(name);
    }
  }
  return names;
}

void MetricsRegistry::reset() { reset_prefix(""); }

void MetricsRegistry::reset_prefix(std::string_view prefix) {
  // Zero in place rather than erase: references handed out by
  // counter()/histogram()/... must stay valid across resets.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    if (name.size() < prefix.size() ||
        std::string_view(name).substr(0, prefix.size()) != prefix) {
      continue;
    }
    switch (e.kind) {
      case Kind::kCounter: e.counter->reset(); break;
      case Kind::kGauge: e.gauge->reset(); break;
      case Kind::kHistogram: e.histogram->reset(); break;
      case Kind::kSummary: e.summary->reset(); break;
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Copy the (name, metric pointer) view under the registry lock, then read
  // each metric through its own thread-safe accessors.
  std::vector<std::pair<std::string, const Entry*>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(metrics_.size());
    for (const auto& [name, e] : metrics_) entries.emplace_back(name, &e);
  }
  MetricsSnapshot snap;
  for (const auto& [name, e] : entries) {
    switch (e->kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(name, e->counter->value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(name, e->gauge->value());
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.boundaries = e->histogram->boundaries();
        h.buckets = e->histogram->bucket_counts();
        h.count = e->histogram->count();
        h.sum = e->histogram->sum();
        h.min = h.count > 0 ? e->histogram->min() : 0.0;
        h.max = h.count > 0 ? e->histogram->max() : 0.0;
        snap.histograms.emplace_back(name, std::move(h));
        break;
      }
      case Kind::kSummary: {
        SummarySnapshot s;
        const std::vector<double> xs = e->summary->samples();
        s.count = e->summary->count();
        s.sum = e->summary->sum();
        if (!xs.empty()) {
          s.mean = s.sum / static_cast<double>(s.count);
          s.p50 = e->summary->quantile(0.50);
          s.p95 = e->summary->quantile(0.95);
          s.p99 = e->summary->quantile(0.99);
          s.min = *std::min_element(xs.begin(), xs.end());
          s.max = *std::max_element(xs.begin(), xs.end());
        }
        snap.summaries.emplace_back(name, s);
        break;
      }
    }
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  using detail::json_escape;
  using detail::json_number;
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(snap.gauges[i].first)
       << "\": " << json_number(snap.gauges[i].second);
  }
  os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(name) << "\": {"
       << "\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
       << ", \"min\": " << json_number(h.min)
       << ", \"max\": " << json_number(h.max) << ", \"boundaries\": [";
    for (std::size_t b = 0; b < h.boundaries.size(); ++b) {
      os << (b ? ", " : "") << json_number(h.boundaries[b]);
    }
    os << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << h.buckets[b];
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "},\n  \"summaries\": {";
  for (std::size_t i = 0; i < snap.summaries.size(); ++i) {
    const auto& [name, s] = snap.summaries[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(name) << "\": {"
       << "\"count\": " << s.count << ", \"sum\": " << json_number(s.sum)
       << ", \"mean\": " << json_number(s.mean)
       << ", \"p50\": " << json_number(s.p50)
       << ", \"p95\": " << json_number(s.p95)
       << ", \"p99\": " << json_number(s.p99)
       << ", \"min\": " << json_number(s.min)
       << ", \"max\": " << json_number(s.max) << "}";
  }
  os << (snap.summaries.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string MetricsRegistry::to_text() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  char buf[160];
  if (!snap.counters.empty()) {
    os << "counters\n";
    for (const auto& [name, value] : snap.counters) {
      std::snprintf(buf, sizeof buf, "  %s %12lld\n",
                    pad_name(name, 44).c_str(),
                    static_cast<long long>(value));
      os << buf;
    }
  }
  if (!snap.gauges.empty()) {
    os << "gauges\n";
    for (const auto& [name, value] : snap.gauges) {
      std::snprintf(buf, sizeof buf, "  %s %12.4f\n",
                    pad_name(name, 44).c_str(), value);
      os << buf;
    }
  }
  if (!snap.histograms.empty()) {
    os << "histograms" << pad_name("", 38) << "count          sum"
       << "          min          max\n";
    for (const auto& [name, h] : snap.histograms) {
      std::snprintf(buf, sizeof buf, "  %s %7lld %12.4f %12.4f %12.4f\n",
                    pad_name(name, 44).c_str(),
                    static_cast<long long>(h.count), h.sum, h.min, h.max);
      os << buf;
    }
  }
  if (!snap.summaries.empty()) {
    os << "summaries" << pad_name("", 39) << "count         mean"
       << "          p50          p95          p99\n";
    for (const auto& [name, s] : snap.summaries) {
      std::snprintf(buf, sizeof buf,
                    "  %s %7lld %12.4f %12.4f %12.4f %12.4f\n",
                    pad_name(name, 44).c_str(),
                    static_cast<long long>(s.count), s.mean, s.p50, s.p95,
                    s.p99);
      os << buf;
    }
  }
  return os.str();
}

}  // namespace dcnas::obs
