#include "dcnas/obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "dcnas/common/error.hpp"
#include "json_util.hpp"

namespace dcnas::obs {

namespace {

using detail::json_escape;

/// "k1=v1,k2=v2" (the SpanEvent inline encoding) -> {"k1": "v1", ...}.
std::string args_object(std::string_view args) {
  std::string out = "{";
  std::size_t begin = 0;
  bool first = true;
  while (begin < args.size()) {
    std::size_t end = args.find(',', begin);
    if (end == std::string_view::npos) end = args.size();
    const std::string_view pair = args.substr(begin, end - begin);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      if (!first) out += ", ";
      first = false;
      out += '"';
      out += json_escape(pair.substr(0, eq));
      out += "\": \"";
      out += json_escape(pair.substr(eq + 1));
      out += '"';
    }
    begin = end + 1;
  }
  out += "}";
  return out;
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  // Metadata first: a process name and one name per recorded thread.
  os << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
        "\"process_name\", \"args\": {\"name\": \"dcnas\"}}";
  std::uint32_t max_tid = 0;
  for (const SpanEvent& e : events) max_tid = std::max(max_tid, e.thread_id);
  for (std::uint32_t tid = 1; tid <= max_tid; ++tid) {
    os << ",\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \"dcnas thread "
       << tid << "\"}}";
  }
  char num[48];
  for (const SpanEvent& e : events) {
    os << ",\n  {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
       << json_escape(e.category) << "\", \"ph\": \"X\"";
    // Trace-event timestamps are microseconds; keep ns resolution as the
    // fractional part.
    std::snprintf(num, sizeof num, "%.3f",
                  static_cast<double>(e.start_ns) / 1e3);
    os << ", \"ts\": " << num;
    std::snprintf(num, sizeof num, "%.3f",
                  static_cast<double>(e.duration_ns) / 1e3);
    os << ", \"dur\": " << num << ", \"pid\": 1, \"tid\": " << e.thread_id;
    if (e.args[0] != '\0') {
      os << ", \"args\": " << args_object(e.args);
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events) {
  const std::string json = chrome_trace_json(events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  DCNAS_CHECK(f != nullptr, "cannot open trace output file " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  DCNAS_CHECK(written == json.size(), "short write to " + path);
}

void write_chrome_trace(const std::string& path) {
  write_chrome_trace(path, TraceRecorder::global().snapshot());
}

}  // namespace dcnas::obs
