#include "dcnas/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace dcnas::obs {

namespace {

/// ns since the first call in this process; a process-local epoch keeps
/// timestamps small and export-friendly.
std::uint64_t now_ns() {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void copy_bounded(char* dst, std::size_t capacity, std::string_view src) {
  const std::size_t n = std::min(src.size(), capacity - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// Nesting depth of live armed spans on this thread.
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

/// Per-thread event ring. The mutex is only contended while a snapshot or
/// clear is in flight; the owning thread's commit path otherwise takes an
/// uncontended lock (a couple of atomic ops).
struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::vector<SpanEvent> ring;  ///< reserved to capacity up front
  std::size_t capacity = 0;
  std::size_t next = 0;  ///< overwrite cursor once the ring is full
  std::uint64_t dropped = 0;
  std::uint32_t thread_id = 0;

  void reset_locked(std::size_t new_capacity) {
    ring.clear();
    ring.reserve(new_capacity);
    capacity = new_capacity;
    next = 0;
    dropped = 0;
  }
};

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

std::shared_ptr<TraceRecorder::ThreadBuffer> TraceRecorder::local_buffer() {
  // The recorder keeps a shared_ptr to every buffer, so events survive the
  // recording thread's exit (server workers finish before the snapshot).
  thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  if (!t_buffer) {
    auto buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffer->thread_id = next_thread_id_++;
    buffer->reset_locked(options_.ring_capacity);
    buffers_.push_back(buffer);
    t_buffer = std::move(buffer);
  }
  return t_buffer;
}

void TraceRecorder::enable(const TraceOptions& options) {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    options_ = options;
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->reset_locked(options.ring_capacity);
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceRecorder::commit(const SpanEvent& event) {
  const std::shared_ptr<ThreadBuffer> buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  SpanEvent stamped = event;
  stamped.thread_id = buffer->thread_id;
  if (buffer->ring.size() < buffer->capacity) {
    buffer->ring.push_back(stamped);
  } else if (buffer->capacity > 0) {
    // Keep-latest drop policy: overwrite the oldest event in ring order.
    buffer->ring[buffer->next] = stamped;
    buffer->next = (buffer->next + 1) % buffer->capacity;
    ++buffer->dropped;
  }
}

std::vector<SpanEvent> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    // Chronological ring order: [next, end) is older than [0, next).
    for (std::size_t i = buffer->next; i < buffer->ring.size(); ++i) {
      events.push_back(buffer->ring[i]);
    }
    for (std::size_t i = 0; i < buffer->next; ++i) {
      events.push_back(buffer->ring[i]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.duration_ns > b.duration_ns;  // parents first
                   });
  return events;
}

std::uint64_t TraceRecorder::dropped_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::size_t TraceRecorder::thread_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::size_t threads = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    threads += buffer->ring.empty() ? 0 : 1;
  }
  return threads;
}

void TraceRecorder::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
    capacity = options_.ring_capacity;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->reset_locked(capacity);
  }
}

Span::Span(const char* category, std::string_view name) {
  if (!TraceRecorder::enabled()) return;  // the whole disabled-mode cost
  armed_ = true;
  copy_bounded(event_.name, SpanEvent::kNameCapacity, name);
  copy_bounded(event_.category, SpanEvent::kCategoryCapacity, category);
  event_.depth = t_span_depth++;
  event_.start_ns = now_ns();
}

Span::~Span() {
  if (!armed_) return;
  --t_span_depth;
  event_.duration_ns = now_ns() - event_.start_ns;
  TraceRecorder::global().commit(event_);
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!armed_) return;
  const std::size_t used = std::strlen(event_.args);
  // "key=value" plus a comma separator when args already holds pairs.
  const std::size_t needed = (used > 0 ? 1 : 0) + key.size() + 1 + value.size();
  if (used + needed + 1 > SpanEvent::kArgsCapacity) return;  // keep it whole
  char* cursor = event_.args + used;
  if (used > 0) *cursor++ = ',';
  std::memcpy(cursor, key.data(), key.size());
  cursor += key.size();
  *cursor++ = '=';
  std::memcpy(cursor, value.data(), value.size());
  cursor += value.size();
  *cursor = '\0';
}

void Span::arg(std::string_view key, std::int64_t value) {
  if (!armed_) return;
  char digits[24];
  std::snprintf(digits, sizeof digits, "%lld", static_cast<long long>(value));
  arg(key, std::string_view(digits));
}

}  // namespace dcnas::obs
