#include "dcnas/common/profiler.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "dcnas/common/strings.hpp"

namespace dcnas {

struct Profiler::Impl {
  struct Phase {
    double total = 0.0;
    std::int64_t calls = 0;
  };
  mutable std::mutex mu;
  std::map<std::string, Phase> phases;
};

Profiler::Impl& Profiler::impl() const {
  static Impl instance;
  return instance;
}

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

void Profiler::record(const std::string& phase, double seconds) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& p = i.phases[phase];
  p.total += seconds;
  p.calls += 1;
}

double Profiler::total_seconds(const std::string& phase) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  const auto it = i.phases.find(phase);
  return it == i.phases.end() ? 0.0 : it->second.total;
}

std::int64_t Profiler::call_count(const std::string& phase) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  const auto it = i.phases.find(phase);
  return it == i.phases.end() ? 0 : it->second.calls;
}

std::string Profiler::report() const {
  Impl& i = impl();
  std::vector<std::pair<std::string, Impl::Phase>> rows;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    rows.assign(i.phases.begin(), i.phases.end());
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total > b.second.total;
  });
  std::ostringstream os;
  os << pad("phase", 32) << pad("total(s)", 12, true)
     << pad("calls", 10, true) << pad("mean(ms)", 12, true) << "\n";
  for (const auto& [name, p] : rows) {
    os << pad(name, 32) << pad(format_fixed(p.total, 3), 12, true)
       << pad(std::to_string(p.calls), 10, true)
       << pad(format_fixed(1e3 * p.total / static_cast<double>(p.calls), 3),
              12, true)
       << "\n";
  }
  return os.str();
}

void Profiler::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.phases.clear();
}

}  // namespace dcnas
