#include "dcnas/common/profiler.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "dcnas/common/strings.hpp"
#include "dcnas/obs/metrics.hpp"

namespace dcnas {

namespace {

constexpr std::string_view kPrefix = "profiler.";

/// Shared duration boundaries for every phase histogram: 1 µs .. 100 s,
/// one bucket per decade.
const std::vector<double>& phase_boundaries() {
  static const std::vector<double> boundaries =
      obs::Histogram::exponential_boundaries(1e-6, 100.0, 8);
  return boundaries;
}

std::string metric_name(const std::string& phase) {
  return std::string(kPrefix) + phase;
}

}  // namespace

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

void Profiler::record(const std::string& phase, double seconds) {
  obs::MetricsRegistry::global()
      .histogram(metric_name(phase), phase_boundaries())
      .observe(seconds);
}

double Profiler::total_seconds(const std::string& phase) const {
  const obs::Histogram* h =
      obs::MetricsRegistry::global().find_histogram(metric_name(phase));
  return h == nullptr ? 0.0 : h->sum();
}

std::int64_t Profiler::call_count(const std::string& phase) const {
  const obs::Histogram* h =
      obs::MetricsRegistry::global().find_histogram(metric_name(phase));
  return h == nullptr ? 0 : h->count();
}

std::string Profiler::report() const {
  struct Row {
    std::string phase;
    double total = 0.0;
    std::int64_t calls = 0;
  };
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  std::vector<Row> rows;
  for (const std::string& name : registry.names_with_prefix(kPrefix)) {
    const obs::Histogram* h = registry.find_histogram(name);
    if (h == nullptr) continue;
    Row row;
    row.phase = name.substr(kPrefix.size());
    row.total = h->sum();
    row.calls = h->count();
    // A reset phase keeps its registry slot but has nothing to report.
    if (row.calls > 0) rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.total != b.total) return a.total > b.total;
    return a.phase < b.phase;  // deterministic order for equal totals
  });
  std::ostringstream os;
  os << pad("phase", 32) << pad("total(s)", 12, true)
     << pad("calls", 10, true) << pad("mean(ms)", 12, true) << "\n";
  for (const Row& row : rows) {
    os << pad(row.phase, 32) << pad(format_fixed(row.total, 3), 12, true)
       << pad(std::to_string(row.calls), 10, true)
       << pad(format_fixed(1e3 * row.total / static_cast<double>(row.calls),
                           3),
              12, true)
       << "\n";
  }
  return os.str();
}

void Profiler::reset() {
  obs::MetricsRegistry::global().reset_prefix(kPrefix);
}

}  // namespace dcnas
