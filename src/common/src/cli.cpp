#include "dcnas/common/cli.hpp"

#include "dcnas/common/error.hpp"
#include "dcnas/common/strings.hpp"

namespace dcnas {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!starts_with(tok, "--")) {
      positional_.push_back(std::move(tok));
      continue;
    }
    if (starts_with(tok, "--benchmark_")) {
      positional_.push_back(std::move(tok));  // pass through to gbench
      continue;
    }
    std::string body = tok.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not another option; else a flag.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long CliArgs::get_int(const std::string& key, long long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + key + " expects an integer, got '" +
                          it->second + "'");
  }
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + key + " expects a number, got '" +
                          it->second + "'");
  }
}

bool CliArgs::get_flag(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("option --" + key + " expects a boolean, got '" + v +
                        "'");
}

}  // namespace dcnas
