#include "dcnas/common/thread_pool.hpp"

#include <algorithm>
#include <limits>

#include "dcnas/common/error.hpp"

namespace dcnas {

namespace {
// Which pool (if any) owns the calling thread. Nested parallel_for calls
// from a *global*-pool worker run inline (re-entering the pool the caller
// occupies could deadlock when every worker blocks on sub-tasks queued
// behind the tasks occupying them). Workers of *other* pools (e.g. the NAS
// trial scheduler's) may fan out onto the global pool, bounded by the
// thread-local kernel budget below.
thread_local const ThreadPool* t_worker_pool = nullptr;

// Kernel-thread budget for parallel_for* issued from this thread. Inside a
// pool worker the default is 1 (inline); outside, unlimited.
constexpr std::size_t kUnlimitedBudget =
    std::numeric_limits<std::size_t>::max();
thread_local std::size_t t_kernel_budget = kUnlimitedBudget;

std::size_t default_budget() {
  return t_worker_pool != nullptr ? 1 : kUnlimitedBudget;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  DCNAS_CHECK(static_cast<bool>(task), "ThreadPool::submit requires a task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    DCNAS_CHECK(!stopping_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::pending_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_ != nullptr;
}

bool ThreadPool::in_worker() const { return t_worker_pool == this; }

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      // Each task starts from the in-worker default budget; a task-scoped
      // KernelBudgetScope must not leak into the next task on this worker.
      t_kernel_budget = default_budget();
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (error && !first_error_) first_error_ = error;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;  // sized to hardware_concurrency
  return pool;
}

KernelBudgetScope::KernelBudgetScope(std::size_t max_threads)
    : previous_(t_kernel_budget) {
  t_kernel_budget = std::max<std::size_t>(1, max_threads);
}

KernelBudgetScope::~KernelBudgetScope() { t_kernel_budget = previous_; }

std::size_t KernelBudgetScope::current() { return t_kernel_budget; }

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  ThreadPool& pool = ThreadPool::global();
  // Fan-out width: the pool size capped by the caller's kernel budget.
  // Global-pool workers always run inline regardless of budget (hard
  // deadlock-avoidance rule); other pools' workers default to inline
  // (budget 1) unless a KernelBudgetScope raised their budget.
  std::int64_t width = static_cast<std::int64_t>(
      std::min<std::size_t>(pool.size(), KernelBudgetScope::current()));
  if (pool.in_worker()) width = 1;
  if (width <= 1 || n == 1) {
    fn(begin, end);
    return;
  }
  // Under a finite budget, one chunk per permitted thread keeps concurrent
  // occupancy <= budget; the usual ~4 chunks/worker oversplit would let up
  // to 4x budget workers pick up chunks at once.
  const bool budgeted =
      KernelBudgetScope::current() < pool.size() || t_worker_pool != nullptr;
  const std::int64_t chunks =
      std::min<std::int64_t>(n, budgeted ? width : width * 4);
  const std::int64_t step = (n + chunks - 1) / chunks;
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::int64_t remaining = 0;        // guarded by done_mu
  std::exception_ptr first_error;    // guarded by done_mu
  for (std::int64_t c = begin; c < end; c += step) ++remaining;
  for (std::int64_t c = begin; c < end; c += step) {
    const std::int64_t lo = c;
    const std::int64_t hi = std::min<std::int64_t>(c + step, end);
    pool.submit(std::function<void()>([&, lo, hi] {
      std::exception_ptr error;
      try {
        fn(lo, hi);
      } catch (...) {
        error = std::current_exception();
      }
      // Decrement and notify while holding the lock. With an atomic counter
      // decremented outside it, the waiting thread could observe zero and
      // return — destroying done_mu/done_cv on its stack — while this
      // worker is still about to lock them (use-after-free under load).
      std::lock_guard<std::mutex> lock(done_mu);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_all();
    }));
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
    error = first_error;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn) {
  parallel_for_chunked(begin, end, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace dcnas
