#include "dcnas/common/thread_pool.hpp"

#include <algorithm>

#include "dcnas/common/error.hpp"

namespace dcnas {

namespace {
// Set inside worker threads so nested parallel_for calls run inline instead
// of re-entering the pool (which could deadlock when every worker blocks on
// sub-tasks queued behind the tasks occupying them).
thread_local bool t_inside_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  DCNAS_CHECK(static_cast<bool>(task), "ThreadPool::submit requires a task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    DCNAS_CHECK(!stopping_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;  // sized to hardware_concurrency
  return pool;
}

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  ThreadPool& pool = ThreadPool::global();
  const std::int64_t workers = static_cast<std::int64_t>(pool.size());
  if (workers <= 1 || n == 1 || t_inside_pool_worker) {
    fn(begin, end);
    return;
  }
  const std::int64_t chunks = std::min<std::int64_t>(n, workers * 4);
  const std::int64_t step = (n + chunks - 1) / chunks;
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::int64_t remaining = 0;  // guarded by done_mu
  for (std::int64_t c = begin; c < end; c += step) ++remaining;
  for (std::int64_t c = begin; c < end; c += step) {
    const std::int64_t lo = c;
    const std::int64_t hi = std::min<std::int64_t>(c + step, end);
    pool.submit([&, lo, hi] {
      fn(lo, hi);
      // Decrement and notify while holding the lock. With an atomic counter
      // decremented outside it, the waiting thread could observe zero and
      // return — destroying done_mu/done_cv on its stack — while this
      // worker is still about to lock them (use-after-free under load).
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn) {
  parallel_for_chunked(begin, end, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace dcnas
