#include "dcnas/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dcnas/common/error.hpp"

namespace dcnas {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

namespace {
double sum_sq_dev(std::span<const double> xs, double m) {
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s;
}
}  // namespace

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  return std::sqrt(sum_sq_dev(xs, m) / static_cast<double>(xs.size() - 1));
}

double population_stddev(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  return std::sqrt(sum_sq_dev(xs, m) / static_cast<double>(xs.size()));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = sample_stddev(xs);
  auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  return s;
}

double quantile(std::vector<double> xs, double q) {
  DCNAS_CHECK(!xs.empty(), "quantile of empty sample");
  DCNAS_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  DCNAS_CHECK(xs.size() == ys.size(), "pearson needs equal-length samples");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  DCNAS_CHECK(xs.size() == ys.size(), "spearman needs equal-length samples");
  if (xs.size() < 2) return 0.0;
  const auto rx = average_ranks(xs);
  const auto ry = average_ranks(ys);
  return pearson(rx, ry);
}

double within_relative_tolerance(std::span<const double> truth,
                                 std::span<const double> pred, double tol) {
  DCNAS_CHECK(truth.size() == pred.size(), "size mismatch");
  DCNAS_CHECK(tol > 0.0, "tolerance must be positive");
  if (truth.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double denom = std::abs(truth[i]);
    if (denom <= 0.0) {
      hits += (std::abs(pred[i]) <= tol) ? 1 : 0;
      continue;
    }
    if (std::abs(pred[i] - truth[i]) / denom <= tol) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double rmspe(std::span<const double> truth, std::span<const double> pred) {
  DCNAS_CHECK(truth.size() == pred.size(), "size mismatch");
  if (truth.empty()) return 0.0;
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) <= 0.0) continue;
    const double e = (pred[i] - truth[i]) / truth[i];
    s += e * e;
    ++n;
  }
  if (n == 0) return 0.0;
  return std::sqrt(s / static_cast<double>(n));
}

}  // namespace dcnas
