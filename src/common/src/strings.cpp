#include "dcnas/common/strings.hpp"

#include <cmath>
#include <cstdio>

#include "dcnas/common/error.hpp"

namespace dcnas {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return std::string(s.substr(b, e - b));
}

std::string format_fixed(double value, int decimals) {
  DCNAS_CHECK(decimals >= 0 && decimals <= 12, "decimals out of range");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

std::string pad(std::string s, std::size_t width, bool right) {
  if (s.size() >= width) return s;
  const std::string spaces(width - s.size(), ' ');
  return right ? spaces + s : s + spaces;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace dcnas
