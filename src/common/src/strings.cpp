#include "dcnas/common/strings.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "dcnas/common/error.hpp"

namespace dcnas {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return std::string(s.substr(b, e - b));
}

std::string format_fixed(double value, int decimals) {
  DCNAS_CHECK(decimals >= 0 && decimals <= 12, "decimals out of range");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

std::string pad(std::string s, std::size_t width, bool right) {
  if (s.size() >= width) return s;
  const std::string spaces(width - s.size(), ' ');
  return right ? spaces + s : s + spaces;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {
[[noreturn]] void throw_parse_failure(const char* kind, std::string_view s,
                                      std::string_view context) {
  throw InvalidArgument("cannot parse " + std::string(kind) + " from '" +
                        std::string(s) + "' (" + std::string(context) + ")");
}
}  // namespace

double parse_double(std::string_view s, std::string_view context) {
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{} || result.ptr != end || s.empty()) {
    throw_parse_failure("double", s, context);
  }
  return value;
}

long long parse_int(std::string_view s, std::string_view context) {
  long long value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{} || result.ptr != end || s.empty()) {
    throw_parse_failure("integer", s, context);
  }
  return value;
}

std::string format_double_roundtrip(double value) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  DCNAS_ASSERT(result.ec == std::errc{}, "to_chars failed");
  return std::string(buf, result.ptr);
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace dcnas
