#include "dcnas/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "dcnas/common/error.hpp"
#include "dcnas/common/strings.hpp"

namespace dcnas {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

/// Splits one logical CSV record honoring quotes. \p pos advances past the
/// record's trailing newline.
std::vector<std::string> parse_record(const std::string& text,
                                      std::size_t& pos) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          cur += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n') {
      ++pos;
      break;
    } else if (c != '\r') {
      cur += c;
    }
    ++pos;
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DCNAS_CHECK(!header_.empty(), "CSV header must not be empty");
  for (std::size_t i = 0; i < header_.size(); ++i) {
    const bool inserted = index_.emplace(header_[i], i).second;
    DCNAS_CHECK(inserted, "duplicate CSV column name: " + header_[i]);
  }
}

void CsvTable::add_row(std::vector<std::string> row) {
  DCNAS_CHECK(row.size() == header_.size(),
              "CSV row width does not match header");
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  DCNAS_CHECK(i < rows_.size(), "CSV row index out of range");
  return rows_[i];
}

std::size_t CsvTable::col_index(const std::string& col) const {
  auto it = index_.find(col);
  DCNAS_CHECK(it != index_.end(), "unknown CSV column: " + col);
  return it->second;
}

const std::string& CsvTable::at(std::size_t r, const std::string& col) const {
  return row(r)[col_index(col)];
}

double CsvTable::at_double(std::size_t r, const std::string& col) const {
  return parse_double(at(r, col),
                      "CSV row " + std::to_string(r) + ", column " + col);
}

long long CsvTable::at_int(std::size_t r, const std::string& col) const {
  return parse_int(at(r, col),
                   "CSV row " + std::to_string(r) + ", column " + col);
}

bool CsvTable::has_column(const std::string& col) const {
  return index_.count(col) > 0;
}

std::string CsvTable::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << quote(header_[i]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      os << quote(r[i]);
    }
    os << '\n';
  }
  return os.str();
}

void CsvTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  DCNAS_CHECK(out.good(), "cannot open file for writing: " + path);
  out << to_string();
  DCNAS_CHECK(out.good(), "write failed: " + path);
}

CsvTable CsvTable::parse(const std::string& text) {
  DCNAS_CHECK(!text.empty(), "cannot parse empty CSV text");
  std::size_t pos = 0;
  CsvTable table(parse_record(text, pos));
  while (pos < text.size()) {
    auto fields = parse_record(text, pos);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    table.add_row(std::move(fields));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCNAS_CHECK(in.good(), "cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace dcnas
