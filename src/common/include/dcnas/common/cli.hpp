#pragma once
/// \file cli.hpp
/// \brief Tiny command-line option parser for examples and bench binaries.
///
/// Supports `--key=value`, `--key value`, and boolean `--flag` forms.
/// Unrecognized google-benchmark options (`--benchmark_*`) are passed
/// through untouched so bench binaries can mix both.

#include <map>
#include <string>
#include <vector>

namespace dcnas {

class CliArgs {
 public:
  /// Parses argv; consumes recognized `--key...` tokens, keeps the rest in
  /// positional().
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dcnas
