#pragma once
/// \file profiler.hpp
/// \brief Lightweight scoped-timer profiler — the §5 suggestion of
/// profiling NAS resource usage (Nsight-style), scaled to this codebase.
/// Phases accumulate wall time and call counts; report() renders an
/// aligned summary.
///
/// Since the obs layer landed, Profiler is a thin facade over the
/// process-wide obs::MetricsRegistry: each phase is the duration histogram
/// `profiler.<phase>` (total = sum, calls = count), so phase totals appear
/// in every metrics export alongside the rest of the system's metrics.
/// Existing call sites are unchanged. For *timeline* data (who called what
/// when, per thread) use obs::Span / DCNAS_TRACE_SPAN instead — see
/// OBSERVABILITY.md.

#include <chrono>
#include <string>

namespace dcnas {

class Profiler {
 public:
  /// Process-wide instance (thread-safe accumulation).
  static Profiler& global();

  /// Adds one sample to a named phase.
  void record(const std::string& phase, double seconds);

  /// Total seconds / call count for a phase (0 when absent).
  double total_seconds(const std::string& phase) const;
  std::int64_t call_count(const std::string& phase) const;

  /// Aligned text summary sorted by descending total time; phases with
  /// equal totals are ordered by name, so the report is deterministic.
  std::string report() const;

  /// Clears all accumulated phases.
  void reset();

 private:
  Profiler() = default;
};

/// RAII timer: adds the scope's wall time to \p phase on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string phase)
      : phase_(std::move(phase)), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    Profiler::global().record(phase_, sec);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dcnas
