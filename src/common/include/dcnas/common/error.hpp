#pragma once
/// \file error.hpp
/// \brief Error handling primitives shared by every dcnas module.
///
/// The library reports contract violations through exceptions derived from
/// dcnas::Error so that callers (tests, examples, the NAS pipeline) can
/// distinguish internal invariant failures from user configuration mistakes.

#include <stdexcept>
#include <string>

namespace dcnas {

/// Base class of all exceptions thrown by dcnas libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input value violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is broken (a dcnas bug, not user error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  if (kind[0] == 'D') throw InternalError(full);  // DCNAS_ASSERT
  throw InvalidArgument(full);
}
}  // namespace detail

}  // namespace dcnas

/// Precondition check: throws dcnas::InvalidArgument when \p cond is false.
#define DCNAS_CHECK(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::dcnas::detail::throw_check_failure("CHECK", #cond, __FILE__,         \
                                           __LINE__, (msg));                 \
    }                                                                        \
  } while (false)

/// Internal invariant check: throws dcnas::InternalError when false.
#define DCNAS_ASSERT(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::dcnas::detail::throw_check_failure("DCNAS_ASSERT", #cond, __FILE__,  \
                                           __LINE__, (msg));                 \
    }                                                                        \
  } while (false)
