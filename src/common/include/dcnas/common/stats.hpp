#pragma once
/// \file stats.hpp
/// \brief Descriptive statistics used across the NAS, latency, and Pareto
/// reporting layers (objective ranges, latency spread, predictor accuracy).

#include <cstddef>
#include <span>
#include <vector>

namespace dcnas {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

double mean(std::span<const double> xs);

/// Sample standard deviation (Bessel-corrected). Returns 0 for n < 2.
/// The paper's `lat_std` column uses exactly this over the four predictors.
double sample_stddev(std::span<const double> xs);

/// Population standard deviation (n denominator). Returns 0 for n < 1.
double population_stddev(std::span<const double> xs);

Summary summarize(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Input need not be sorted.
double quantile(std::vector<double> xs, double q);

/// Pearson correlation; returns 0 when either side has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Fraction of predictions within +/- tol (relative) of the truth — the
/// "±10% accuracy" metric reported by nn-Meter's Table 2.
double within_relative_tolerance(std::span<const double> truth,
                                 std::span<const double> pred, double tol);

/// Root-mean-square percentage error.
double rmspe(std::span<const double> truth, std::span<const double> pred);

}  // namespace dcnas
