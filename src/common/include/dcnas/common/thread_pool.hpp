#pragma once
/// \file thread_pool.hpp
/// \brief A lightweight work-sharing thread pool plus parallel_for helpers.
///
/// dcnas targets resource-limited build/run environments (this reproduction
/// runs on a single core), so every parallel path degrades gracefully: when
/// the pool has one worker, parallel_for executes inline with zero
/// synchronization overhead. The pool follows the C++ Core Guidelines advice
/// of joining threads in the destructor (gsl::joining_thread semantics).
///
/// Exception contract:
///  - The future-returning submit() delivers the task's exception through
///    the returned std::future (std::packaged_task semantics).
///  - Fire-and-forget submit(std::function<void()>) captures the first
///    escaping exception; the next wait_idle() rethrows it (later ones are
///    dropped, counted via pending_error()). Exceptions never kill workers.
///  - parallel_for / parallel_for_chunked rethrow the first iteration
///    exception in the calling thread after every chunk has finished.
///
/// Nested-execution rule (two-level schedulers — see DESIGN.md §9):
///  - A parallel_for* call made from a worker of the *global* pool always
///    runs inline: re-enqueueing on the pool the caller occupies is a
///    deadlock/oversubscription hazard.
///  - A call made from a worker of any *other* pool (e.g. the NAS trial
///    scheduler's dedicated pool) runs inline by default, but may fan out
///    onto the global pool up to the caller's kernel-thread budget when a
///    KernelBudgetScope raised it. This is how T concurrent trials avoid
///    multiplying into T x full-kernel-fan-out thread thrash.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dcnas {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Creates a pool with \p num_threads workers; 0 means
  /// hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Fire-and-forget enqueue. An escaping exception is captured (first one
  /// wins) and rethrown from the next wait_idle(); it never terminates the
  /// process or the worker.
  void submit(std::function<void()> task);

  /// Future-returning enqueue: the task's return value — or the exception
  /// it threw — is delivered through the returned future. Discarding the
  /// future discards the exception with it, so fire-and-forget callers
  /// should use the std::function overload instead.
  template <class F, class R = std::invoke_result_t<std::decay_t<F>&>,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, std::function<void()>>, int> = 0>
  [[nodiscard]] std::future<R> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    submit(std::function<void()>([task]() mutable { (*task)(); }));
    return future;
  }

  /// Blocks until every queued and running task has completed, then
  /// rethrows the first exception a fire-and-forget task leaked (if any),
  /// clearing it. The pool stays usable after the throw.
  void wait_idle();

  /// True when a fire-and-forget task has thrown since the last wait_idle.
  bool pending_error() const;

  std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers.
  bool in_worker() const;

  /// Process-wide pool shared by parallel_for; sized to the machine.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;  ///< guarded by mu_
  bool stopping_ = false;
};

/// RAII thread-local cap on how many global-pool workers a parallel_for*
/// issued from the current thread may fan out over. Inside a pool worker
/// the default budget is 1 (run inline); a scheduler that wants its tasks
/// to use some kernel parallelism raises it for the task's duration:
///
///   KernelBudgetScope budget(2);   // this task may use <= 2 kernel threads
///   gemm(...);                     // parallel_for fans out over <= 2
///
/// Outside any pool worker the default is unlimited (the global pool size).
/// Scopes nest; each restores the previous budget on destruction. The
/// budget never overrides the hard inline rule for global-pool workers.
class KernelBudgetScope {
 public:
  explicit KernelBudgetScope(std::size_t max_threads);
  ~KernelBudgetScope();

  KernelBudgetScope(const KernelBudgetScope&) = delete;
  KernelBudgetScope& operator=(const KernelBudgetScope&) = delete;

  /// The budget in effect for the calling thread.
  static std::size_t current();

 private:
  std::size_t previous_;
};

/// Runs fn(i) for i in [begin, end) potentially in parallel, blocking until
/// all iterations finish. Iterations must be independent. Work is split into
/// contiguous chunks (~4 per worker) to amortize scheduling. The first
/// exception thrown by an iteration is rethrown in the calling thread once
/// every chunk has finished (remaining chunks still run).
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn);

/// Chunked variant: fn(chunk_begin, chunk_end) — preferred in hot loops so
/// the callee can keep its own locals across iterations.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace dcnas
