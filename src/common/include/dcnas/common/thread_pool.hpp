#pragma once
/// \file thread_pool.hpp
/// \brief A lightweight work-sharing thread pool plus parallel_for helpers.
///
/// dcnas targets resource-limited build/run environments (this reproduction
/// runs on a single core), so every parallel path degrades gracefully: when
/// the pool has one worker, parallel_for executes inline with zero
/// synchronization overhead. The pool follows the C++ Core Guidelines advice
/// of joining threads in the destructor (gsl::joining_thread semantics).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcnas {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Creates a pool with \p num_threads workers; 0 means
  /// hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; exceptions terminate the run.
  void submit(std::function<void()> task);

  /// Blocks until every queued and running task has completed.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Process-wide pool shared by parallel_for; sized to the machine.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [begin, end) potentially in parallel, blocking until
/// all iterations finish. Iterations must be independent. Work is split into
/// contiguous chunks (~4 per worker) to amortize scheduling.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn);

/// Chunked variant: fn(chunk_begin, chunk_end) — preferred in hot loops so
/// the callee can keep its own locals across iterations.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace dcnas
