#pragma once
/// \file strings.hpp
/// \brief Small string utilities (splitting, trimming, fixed-point
/// formatting) used by the CSV layer and the table report printers.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcnas {

std::vector<std::string> split(std::string_view s, char delim);

std::string trim(std::string_view s);

/// Formats a double with a fixed number of decimals ("%.2f" style) without
/// locale dependence; the report tables rely on this for stable output.
std::string format_fixed(double value, int decimals);

/// Left-pads or right-pads \p s with spaces to \p width (right-align when
/// \p right is true). Strings longer than width are returned unchanged.
std::string pad(std::string s, std::size_t width, bool right = false);

bool starts_with(std::string_view s, std::string_view prefix);

/// Locale-independent strict double parse (std::from_chars): the whole
/// string must be one finite or inf/nan numeric token. Throws
/// dcnas::InvalidArgument naming \p context ("row 3, column accuracy")
/// — unlike std::stod, which honors the global locale's decimal point and
/// reports nothing about where the bad cell came from.
double parse_double(std::string_view s, std::string_view context);

/// Locale-independent strict integer parse; same contract as parse_double.
long long parse_int(std::string_view s, std::string_view context);

/// Shortest decimal representation that parses back to exactly \p value
/// (std::to_chars round-trip guarantee) — used where persisted doubles must
/// survive a save/load cycle bit-for-bit (e.g. the NAS resume journal).
std::string format_double_roundtrip(double value);

/// FNV-1a 64-bit hash — journal line checksums and bench parity hashes.
std::uint64_t fnv1a64(std::string_view s);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace dcnas
