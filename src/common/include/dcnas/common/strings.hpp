#pragma once
/// \file strings.hpp
/// \brief Small string utilities (splitting, trimming, fixed-point
/// formatting) used by the CSV layer and the table report printers.

#include <string>
#include <string_view>
#include <vector>

namespace dcnas {

std::vector<std::string> split(std::string_view s, char delim);

std::string trim(std::string_view s);

/// Formats a double with a fixed number of decimals ("%.2f" style) without
/// locale dependence; the report tables rely on this for stable output.
std::string format_fixed(double value, int decimals);

/// Left-pads or right-pads \p s with spaces to \p width (right-align when
/// \p right is true). Strings longer than width are returned unchanged.
std::string pad(std::string s, std::size_t width, bool right = false);

bool starts_with(std::string_view s, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace dcnas
