#pragma once
/// \file csv.hpp
/// \brief Minimal CSV table reader/writer used to persist NAS trial
/// databases and to export figure data (Pareto scatter, radar plots).
///
/// Only the subset of RFC 4180 dcnas emits is supported: comma separation,
/// double-quote quoting when a field contains a comma/quote/newline.

#include <map>
#include <string>
#include <vector>

namespace dcnas {

/// In-memory rectangular table with a header row.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  const std::vector<std::string>& row(std::size_t i) const;

  /// Cell access by column name; throws InvalidArgument for unknown names.
  const std::string& at(std::size_t row, const std::string& col) const;
  double at_double(std::size_t row, const std::string& col) const;
  long long at_int(std::size_t row, const std::string& col) const;

  bool has_column(const std::string& col) const;

  /// Serializes the table, quoting as needed.
  std::string to_string() const;

  /// Writes to a file; throws on I/O failure.
  void save(const std::string& path) const;

  /// Parses CSV text (first line = header).
  static CsvTable parse(const std::string& text);

  /// Loads from a file; throws on I/O failure.
  static CsvTable load(const std::string& path);

 private:
  std::size_t col_index(const std::string& col) const;

  std::vector<std::string> header_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcnas
