#pragma once
/// \file rng.hpp
/// \brief Deterministic, counter-friendly random number generation.
///
/// Every stochastic component in dcnas (terrain synthesis, weight init,
/// bootstrap sampling, the accuracy oracle's trial noise) derives its stream
/// from explicit 64-bit seeds so that all tables and figures regenerate
/// bit-identically across runs and machines. We avoid std::mt19937 for
/// results because its distributions are not specified identically across
/// standard libraries; SplitMix64 plus hand-rolled transforms are.

#include <cmath>
#include <cstdint>
#include <vector>

#include "dcnas/common/error.hpp"

namespace dcnas {

/// One SplitMix64 scrambling step. Useful on its own as a hash of a counter.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes two 64-bit values into one; used to derive child seeds from a
/// parent seed plus a stream identifier without correlation between streams.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  return splitmix64(seed ^ splitmix64(stream + 0x632be59bd9b4e019ULL));
}

/// Stateless hash of a counter to a float in [0, 1). This is the primitive
/// behind "deterministic noise keyed on a configuration": hash the config's
/// canonical integer encoding and obtain a reproducible pseudo-sample.
constexpr double hash_unit(std::uint64_t key) {
  // 53 high bits -> double mantissa.
  return static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53;
}

/// A small, fast, deterministic PRNG (xoshiro256** seeded via SplitMix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x = splitmix64(x);
      w = x;
    }
  }

  /// Derives an independent child generator, e.g. one per worker thread or
  /// per cross-validation fold.
  Rng fork(std::uint64_t stream) const {
    return Rng(mix_seed(s_[0] ^ s_[3], stream));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    DCNAS_CHECK(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Lemire-style rejection-free mapping is fine here; modulo bias is
    // negligible for the spans dcnas uses (< 2^32), but reject to be exact.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Standard normal via Box–Muller (deterministic across platforms).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability \p p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(v[i], v[j]);
    }
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  std::size_t categorical(const std::vector<double>& weights) {
    DCNAS_CHECK(!weights.empty(), "categorical needs at least one weight");
    double total = 0.0;
    for (double w : weights) {
      DCNAS_CHECK(w >= 0.0, "categorical weights must be non-negative");
      total += w;
    }
    DCNAS_CHECK(total > 0.0, "categorical weights must not all be zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace dcnas
