#pragma once
/// \file thread_annotations.hpp
/// \brief Clang thread-safety analysis annotations + an annotated mutex.
///
/// std::mutex carries no capability attributes, so clang's -Wthread-safety
/// analysis cannot see through it. Mutex/MutexLock below are drop-in
/// replacements (same lock()/unlock()/RAII shape) that declare the
/// capability, letting GUARDED_BY/REQUIRES turn lock-discipline mistakes
/// into compile errors under clang. On compilers without the attributes
/// (GCC) every macro expands to nothing and Mutex degrades to a plain
/// std::mutex wrapper — zero overhead either way.
///
/// Usage:
///   dcnas::Mutex mu_;
///   int value_ GUARDED_BY(mu_);
///   void touch() { MutexLock lock(mu_); ++value_; }
///   void touch_locked() REQUIRES(mu_);   // caller must hold mu_

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DCNAS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DCNAS_THREAD_ANNOTATION
#define DCNAS_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) DCNAS_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY DCNAS_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) DCNAS_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) DCNAS_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  DCNAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) DCNAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DCNAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EXCLUDES(...) DCNAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define NO_THREAD_SAFETY_ANALYSIS \
  DCNAS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dcnas {

/// std::mutex with the capability attribute the analysis needs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex (std::lock_guard cannot carry SCOPED_CAPABILITY).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace dcnas
