#pragma once
/// \file logging.hpp
/// \brief Leveled logging to stderr. Results never depend on log output;
/// benches lower the level to keep table output clean.

#include <sstream>
#include <string>

namespace dcnas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level (default kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line at \p level if enabled. Thread-safe.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dcnas

#define DCNAS_LOG_DEBUG ::dcnas::detail::LogLine(::dcnas::LogLevel::kDebug)
#define DCNAS_LOG_INFO ::dcnas::detail::LogLine(::dcnas::LogLevel::kInfo)
#define DCNAS_LOG_WARN ::dcnas::detail::LogLine(::dcnas::LogLevel::kWarn)
#define DCNAS_LOG_ERROR ::dcnas::detail::LogLine(::dcnas::LogLevel::kError)
