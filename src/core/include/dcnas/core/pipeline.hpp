#pragma once
/// \file pipeline.hpp
/// \brief The paper's end-to-end HW-NAS pipeline: enumerate the Figure 2
/// lattice, evaluate every trial (5-fold accuracy), predict latency on the
/// four nn-Meter devices, account serialized memory, and extract the
/// Pareto front over (accuracy ↑, latency ↓, memory ↓).

#include <memory>
#include <string>
#include <vector>

#include "dcnas/nas/experiment.hpp"
#include "dcnas/nas/scheduler.hpp"
#include "dcnas/nas/store/multiproc.hpp"
#include "dcnas/pareto/pareto.hpp"

namespace dcnas::core {

struct PipelineOptions {
  /// true: calibrated surrogate (full 1,728-trial sweep in seconds);
  /// false: genuine 5-fold training on the synthetic dataset (slow; used
  /// by examples and the real-training ablation).
  bool use_oracle = true;
  nas::OracleOptions oracle;

  /// Real-training path parameters (only used when use_oracle is false).
  double dataset_scale = 1.0 / 256.0;
  std::int64_t chip_size = 24;
  std::int64_t scene_size = 160;
  std::uint64_t dataset_seed = 2023;
  nas::TrainingEvaluator::Options training;

  /// Dominance relation for the front. kWeak (textbook) is the default:
  /// with byte-quantized memory values, kStrictAll keeps every memory-tied
  /// trial and the front explodes to 100+ members (see pareto.hpp for why
  /// the paper's Table 4 nevertheless contains weakly-dominated rows).
  pareto::DominanceMode dominance = pareto::DominanceMode::kWeak;

  nas::ExperimentOptions experiment;

  /// Route sweeps through the parallel TrialScheduler instead of the serial
  /// Experiment::run_all loop. Off by default; when on, the database is
  /// byte-identical to the serial path as long as scheduler.pruner stays
  /// disabled (see scheduler.hpp for the determinism contract).
  bool use_scheduler = false;
  nas::SchedulerOptions scheduler;
};

/// A completed sweep with its Pareto analysis.
struct SweepResult {
  nas::TrialDatabase trials;
  std::vector<pareto::Objectives> objectives;   ///< aligned with trials
  std::vector<std::size_t> front_indices;       ///< non-dominated trials
};

class HwNasPipeline {
 public:
  explicit HwNasPipeline(const PipelineOptions& options = {});
  ~HwNasPipeline();

  /// Runs the full 1,728-point lattice (the paper's six NNI experiments)
  /// and the Pareto analysis.
  SweepResult run_full_sweep() const;

  /// Runs an arbitrary trial list (e.g. a sampled subset) + Pareto.
  SweepResult run_sweep(const std::vector<nas::TrialConfig>& configs) const;

  /// Sweeps \p spec's lattice across \p workers processes sharing
  /// \p store_dir (see store/multiproc.hpp), then assembles the Pareto
  /// analysis from the store in lattice order — byte-identical trials CSV
  /// to the serial run over spec.enumerate(). workers == 0 uses a single
  /// in-process streamed scheduler run (still through the store, so a
  /// partially complete store resumes either way). options_.scheduler
  /// supplies the per-worker scheduler knobs; use_scheduler is implied.
  SweepResult run_store_sweep(const nas::SearchSpaceSpec& spec,
                              const std::string& store_dir,
                              int workers) const;

  /// Stock ResNet-18 on the six input variants — Table 5.
  nas::TrialDatabase run_baselines() const;

  /// Objective extraction and front computation (also usable standalone).
  static std::vector<pareto::Objectives> objectives_of(
      const nas::TrialDatabase& db);
  static std::vector<std::size_t> front_of(const nas::TrialDatabase& db,
                                           pareto::DominanceMode mode);

  const PipelineOptions& options() const { return options_; }
  nas::Evaluator& evaluator() const { return *evaluator_; }

 private:
  PipelineOptions options_;
  // Own the datasets (real-training mode) and the evaluator.
  std::unique_ptr<geodata::DrainageDataset> dataset5_, dataset7_;
  std::unique_ptr<nas::Evaluator> evaluator_;
};

}  // namespace dcnas::core
