#pragma once
/// \file report.hpp
/// \brief Text renderers reproducing every table and figure of the paper.
/// Each function returns the finished block so benches can print it and
/// tests can assert on it.

#include <string>

#include "dcnas/core/pipeline.hpp"
#include "dcnas/latency/predictor.hpp"
#include "dcnas/pareto/export.hpp"

namespace dcnas::core {

/// Table 1: data sources and study regions.
std::string table1_text();

/// Table 2: per-device predictor ±10% accuracy (held-out kernels).
std::string table2_text(const latency::NnMeter& meter,
                        int samples_per_kind = 150,
                        std::uint64_t seed = 424242);

/// Table 3: objective value ranges over a sweep.
std::string table3_text(const SweepResult& sweep);

/// Table 4: the non-dominated solutions with full configurations.
std::string table4_text(const SweepResult& sweep);

/// Table 5: stock ResNet-18 evaluation on the six input variants.
std::string table5_text(const nas::TrialDatabase& baselines);

/// Figure 1: layer-by-layer ResNet-18 summaries for 5 and 7 channels.
std::string fig1_text();

/// Figure 2: the search-space inventory with lattice/dedup counts.
std::string fig2_text();

/// Figure 3: ASCII projections of the objective scatter (CSV via
/// pareto::scatter_csv).
std::string fig3_text(const SweepResult& sweep);

/// Figure 4 radar rows for the front (normalized objectives + config axes).
std::vector<pareto::RadarRow> fig4_rows(const SweepResult& sweep);
std::string fig4_text(const SweepResult& sweep);

}  // namespace dcnas::core
