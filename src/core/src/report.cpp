#include "dcnas/core/report.hpp"

#include <algorithm>
#include <sstream>

#include "dcnas/common/stats.hpp"
#include "dcnas/common/strings.hpp"
#include "dcnas/geodata/region.hpp"
#include "dcnas/graph/serialize.hpp"
#include "dcnas/nn/resnet.hpp"

namespace dcnas::core {

namespace {

std::string rule(std::size_t width) { return std::string(width, '-') + "\n"; }

std::string cell(const std::string& s, std::size_t w) {
  return pad(s, w, /*right=*/true) + "  ";
}

}  // namespace

std::string table1_text() {
  std::ostringstream os;
  os << "Table 1: Data Sources and Study Regions (synthetic reproduction)\n";
  os << rule(100);
  os << cell("Location", 14) << cell("DEM source", 40) << cell("DEM res", 8)
     << cell("True", 6) << cell("False", 6) << cell("Total", 6) << "\n";
  os << rule(100);
  for (const auto& r : geodata::region_catalog()) {
    os << cell(r.name, 14) << cell(r.dem_source, 40)
       << cell(format_fixed(r.dem_resolution_m, 2) + "m", 8)
       << cell(std::to_string(r.true_samples), 6)
       << cell(std::to_string(r.false_samples), 6)
       << cell(std::to_string(r.total_samples()), 6) << "\n";
  }
  os << rule(100);
  os << "Total samples: " << geodata::catalog_total_samples()
     << "  |  Aerial orthophoto source: "
     << geodata::region_catalog().front().ortho_source << "\n";
  return os.str();
}

std::string table2_text(const latency::NnMeter& meter, int samples_per_kind,
                        std::uint64_t seed) {
  std::ostringstream os;
  os << "Table 2: Hardware Performance Comparison of nn-Meter Predictors\n";
  os << rule(86);
  os << cell("Hardware name", 14) << cell("Device", 20) << cell("Framework", 16)
     << cell("Processor", 16) << cell("+/-10% Acc", 10) << "\n";
  os << rule(86);
  for (const auto& p : meter.predictors()) {
    const auto acc = p.evaluate_kernel_level(samples_per_kind, seed);
    os << cell(p.device().name, 14) << cell(p.device().device_label, 20)
       << cell(p.device().framework, 16) << cell(p.device().processor, 16)
       << cell(format_fixed(100.0 * acc.hit_rate_10pct, 2) + "%", 10) << "\n";
  }
  os << rule(86);
  os << "(paper: 99.00% / 99.10% / 99.00% / 83.40%)\n";
  return os.str();
}

std::string table3_text(const SweepResult& sweep) {
  std::vector<double> acc, lat, mem;
  for (const auto& o : sweep.objectives) {
    acc.push_back(o.accuracy);
    lat.push_back(o.latency_ms);
    mem.push_back(o.memory_mb);
  }
  const auto sa = summarize(acc);
  const auto sl = summarize(lat);
  const auto sm = summarize(mem);
  std::ostringstream os;
  os << "Table 3: The objective value ranges (" << sweep.trials.size()
     << " trials)\n";
  os << rule(72);
  os << cell("", 5) << cell("Inference Accuracy", 20)
     << cell("Inference Latency", 20) << cell("Memory Usage", 14) << "\n";
  os << rule(72);
  os << cell("Min", 5) << cell(format_fixed(sa.min, 2) + " %", 20)
     << cell(format_fixed(sl.min, 2) + " ms", 20)
     << cell(format_fixed(sm.min, 2) + " MB", 14) << "\n";
  os << cell("Max", 5) << cell(format_fixed(sa.max, 2) + " %", 20)
     << cell(format_fixed(sl.max, 2) + " ms", 20)
     << cell(format_fixed(sm.max, 2) + " MB", 14) << "\n";
  os << rule(72);
  os << "(paper: accuracy 76.19-96.13 %, latency 8.13-249.56 ms, memory "
        "11.18-44.69 MB)\n";
  return os.str();
}

namespace {

std::string trial_row(const nas::TrialRecord& r) {
  std::ostringstream os;
  os << cell(std::to_string(r.config.channels), 8)
     << cell(std::to_string(r.config.batch), 5)
     << cell(format_fixed(r.accuracy, 2), 8)
     << cell(format_fixed(r.latency_ms, 2), 8)
     << cell(format_fixed(r.lat_std, 2), 7)
     << cell(format_fixed(r.memory_mb, 2), 7)
     << cell(std::to_string(r.config.kernel_size), 11)
     << cell(std::to_string(r.config.stride), 6)
     << cell(std::to_string(r.config.padding), 7)
     << cell(std::to_string(r.config.pool_choice), 11)
     << cell(std::to_string(r.config.kernel_size_pool), 16)
     << cell(std::to_string(r.config.stride_pool), 11)
     << cell(std::to_string(r.config.initial_output_feature), 22);
  return os.str();
}

std::string trial_header() {
  std::ostringstream os;
  os << cell("channels", 8) << cell("batch", 5) << cell("accuracy", 8)
     << cell("latency", 8) << cell("lat_std", 7) << cell("memory", 7)
     << cell("kernel_size", 11) << cell("stride", 6) << cell("padding", 7)
     << cell("pool_choice", 11) << cell("kernel_size_pool", 16)
     << cell("stride_pool", 11) << cell("initial_output_feature", 22);
  return os.str();
}

}  // namespace

std::string table4_text(const SweepResult& sweep) {
  std::ostringstream os;
  os << "Table 4: Pareto optimal solutions (accuracy, latency, memory) — "
     << sweep.front_indices.size() << " non-dominated of "
     << sweep.trials.size() << " trials\n";
  os << rule(150);
  os << trial_header() << "\n" << rule(150);
  // Present by descending accuracy like the paper.
  std::vector<std::size_t> order = sweep.front_indices;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sweep.trials.record(a).accuracy > sweep.trials.record(b).accuracy;
  });
  for (std::size_t i : order) {
    os << trial_row(sweep.trials.record(i)) << "\n";
  }
  os << rule(150);
  return os.str();
}

std::string table5_text(const nas::TrialDatabase& baselines) {
  std::ostringstream os;
  os << "Table 5: Evaluation on six ResNet-18 benchmark variants\n";
  os << rule(60);
  os << cell("channels", 8) << cell("batch", 5) << cell("accuracy", 8)
     << cell("latency(ms)", 11) << cell("lat_std", 8) << cell("memory(MB)", 10)
     << "\n";
  os << rule(60);
  for (const auto& r : baselines.records()) {
    os << cell(std::to_string(r.config.channels), 8)
       << cell(std::to_string(r.config.batch), 5)
       << cell(format_fixed(r.accuracy, 2), 8)
       << cell(format_fixed(r.latency_ms, 2), 11)
       << cell(format_fixed(r.lat_std, 2), 8)
       << cell(format_fixed(r.memory_mb, 2), 10) << "\n";
  }
  os << rule(60);
  return os.str();
}

std::string fig1_text() {
  std::ostringstream os;
  os << "Figure 1: ResNet-18 model architecture (5- and 7-channel inputs)\n\n";
  for (int channels : {5, 7}) {
    Rng rng(1);
    nn::ConfigurableResNet model(nn::ResNetConfig::baseline(channels), rng);
    os << model.summary(graph::kDeploymentInputSize);
    os << "  parameters: " << model.num_params() << "\n\n";
  }
  return os.str();
}

std::string fig2_text() {
  std::ostringstream os;
  os << "Figure 2: NAS search space for ResNet-18 adaptations\n";
  auto list = [&os](const std::string& name, const std::vector<int>& v) {
    os << "  " << pad(name, 26) << "{";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ", ";
      os << v[i];
    }
    os << "}\n";
  };
  list("input channels", nas::SearchSpace::channel_options());
  list("batch size", nas::SearchSpace::batch_options());
  list("conv1 kernel_size", nas::SearchSpace::kernel_options());
  list("conv1 stride", nas::SearchSpace::stride_options());
  list("conv1 padding", nas::SearchSpace::padding_options());
  list("pool_choice (0=pool)", nas::SearchSpace::pool_choice_options());
  list("kernel_size_pool", nas::SearchSpace::pool_kernel_options());
  list("stride_pool", nas::SearchSpace::pool_stride_options());
  list("initial_output_feature", nas::SearchSpace::width_options());
  os << "  architectures per input combination: "
     << nas::SearchSpace::architectures_per_combo() << " lattice points ("
     << nas::SearchSpace::unique_architectures_per_combo()
     << " unique after no-pool collapse)\n";
  os << "  full lattice: " << nas::SearchSpace::lattice_size()
     << " trials over 6 input combinations (paper reports 1,717 valid "
        "outcomes)\n";
  return os.str();
}

std::string fig3_text(const SweepResult& sweep) {
  std::ostringstream os;
  os << "Figure 3: Pareto front analysis result (" << sweep.trials.size()
     << " trials, " << sweep.front_indices.size() << " non-dominated)\n\n";
  for (const char* proj :
       {"latency-accuracy", "memory-accuracy", "latency-memory"}) {
    os << pareto::ascii_scatter(sweep.objectives, sweep.front_indices, proj)
       << "\n";
  }
  return os.str();
}

std::vector<pareto::RadarRow> fig4_rows(const SweepResult& sweep) {
  DCNAS_CHECK(!sweep.front_indices.empty(), "empty Pareto front");
  const auto norm = pareto::normalize(sweep.objectives);
  // Axes are scaled against the paper's option ranges; wide-lattice fronts
  // (SearchSpaceSpec::wide) carry values outside them, so clamp — the radar
  // pegs at the rim rather than rejecting the sweep.
  auto norm_option = [](int value, const std::vector<int>& options) {
    const auto lo = static_cast<double>(options.front());
    const auto hi = static_cast<double>(options.back());
    const double t =
        hi > lo ? (static_cast<double>(value) - lo) / (hi - lo) : 0.5;
    return std::min(1.0, std::max(0.0, t));
  };
  std::vector<pareto::RadarRow> rows;
  for (std::size_t i : sweep.front_indices) {
    const auto& r = sweep.trials.record(i);
    pareto::RadarRow row;
    row.label = "ch=" + std::to_string(r.config.channels) +
                " batch=" + std::to_string(r.config.batch) +
                (r.config.with_pool() ? " [pool]" : " [no pool]") +
                " acc=" + format_fixed(r.accuracy, 2);
    row.axes = {
        {"accuracy", norm[i].accuracy},
        {"latency (1-norm)", 1.0 - norm[i].latency},
        {"memory (1-norm)", 1.0 - norm[i].memory},
        {"kernel_size", norm_option(r.config.kernel_size,
                                    nas::SearchSpace::kernel_options())},
        {"stride",
         norm_option(r.config.stride, nas::SearchSpace::stride_options())},
        {"padding",
         norm_option(r.config.padding, nas::SearchSpace::padding_options())},
        {"kernel_size_pool",
         norm_option(r.config.kernel_size_pool,
                     nas::SearchSpace::pool_kernel_options())},
        {"stride_pool", norm_option(r.config.stride_pool,
                                    nas::SearchSpace::pool_stride_options())},
        {"initial_output_feature",
         norm_option(r.config.initial_output_feature,
                     nas::SearchSpace::width_options())},
    };
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string fig4_text(const SweepResult& sweep) {
  std::ostringstream os;
  os << "Figure 4: Radar plots of the non-dominated solutions\n"
     << "(red/no-pool vs green/pool in the paper; labels carry [pool])\n\n";
  os << pareto::radar_text(fig4_rows(sweep));
  return os.str();
}

}  // namespace dcnas::core
