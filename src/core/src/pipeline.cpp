#include "dcnas/core/pipeline.hpp"

#include "dcnas/common/logging.hpp"

namespace dcnas::core {

HwNasPipeline::HwNasPipeline(const PipelineOptions& options)
    : options_(options) {
  if (options_.use_oracle) {
    evaluator_ = std::make_unique<nas::OracleEvaluator>(options_.oracle);
  } else {
    geodata::DatasetOptions ds;
    ds.scale = options_.dataset_scale;
    ds.chip_size = options_.chip_size;
    ds.scene_size = options_.scene_size;
    ds.seed = options_.dataset_seed;
    ds.channels = 5;
    dataset5_ =
        std::make_unique<geodata::DrainageDataset>(geodata::build_dataset(ds));
    ds.channels = 7;
    dataset7_ =
        std::make_unique<geodata::DrainageDataset>(geodata::build_dataset(ds));
    DCNAS_LOG_INFO << "built training datasets: " << dataset5_->size()
                   << " chips x " << options_.chip_size << "px";
    evaluator_ = std::make_unique<nas::TrainingEvaluator>(
        *dataset5_, *dataset7_, options_.training);
  }
}

HwNasPipeline::~HwNasPipeline() = default;

SweepResult HwNasPipeline::run_sweep(
    const std::vector<nas::TrialConfig>& configs) const {
  const nas::Experiment experiment(*evaluator_, latency::NnMeter::shared(),
                                   options_.experiment);
  SweepResult result;
  if (options_.use_scheduler) {
    nas::TrialScheduler scheduler(experiment, options_.scheduler);
    result.trials = scheduler.run(configs);
  } else {
    result.trials = experiment.run_all(configs);
  }
  result.objectives = objectives_of(result.trials);
  result.front_indices =
      pareto::non_dominated_indices(result.objectives, options_.dominance);
  return result;
}

SweepResult HwNasPipeline::run_full_sweep() const {
  return run_sweep(nas::SearchSpace::enumerate_all());
}

SweepResult HwNasPipeline::run_store_sweep(const nas::SearchSpaceSpec& spec,
                                           const std::string& store_dir,
                                           int workers) const {
  const nas::Experiment experiment(*evaluator_, latency::NnMeter::shared(),
                                   options_.experiment);
  nas::SchedulerOptions sched = options_.scheduler;
  sched.journal_path.clear();  // the store subsumes the journal
  sched.store_dir = store_dir;
  sched.store_fingerprint = spec.fingerprint();
  if (workers <= 1) {
    nas::TrialScheduler scheduler(experiment, sched);
    nas::LatticeStream stream(spec);
    scheduler.run_streamed(stream);
  } else {
    nas::MultiProcSweepOptions mp;
    mp.workers = workers;
    mp.scheduler = sched;
    nas::run_multiprocess_sweep(experiment, spec, store_dir, mp);
  }
  // Read view in lattice order — the same order a serial
  // run_sweep(spec.enumerate()) would produce, so the CSVs match byte for
  // byte (pruned trials excepted, exactly like the scheduler contract).
  nas::TrialStoreOptions sopt;
  sopt.lattice_fingerprint = spec.fingerprint();
  const nas::TrialStore store(store_dir, sopt);
  SweepResult result;
  result.trials = store.assemble(spec.enumerate());
  result.objectives = objectives_of(result.trials);
  result.front_indices =
      pareto::non_dominated_indices(result.objectives, options_.dominance);
  return result;
}

nas::TrialDatabase HwNasPipeline::run_baselines() const {
  const nas::Experiment experiment(*evaluator_, latency::NnMeter::shared(),
                                   options_.experiment);
  nas::TrialDatabase db;
  for (int channels : nas::SearchSpace::channel_options()) {
    for (int batch : nas::SearchSpace::batch_options()) {
      db.add(experiment.run_trial(nas::TrialConfig::baseline(channels, batch)));
    }
  }
  return db;
}

std::vector<pareto::Objectives> HwNasPipeline::objectives_of(
    const nas::TrialDatabase& db) {
  std::vector<pareto::Objectives> out;
  out.reserve(db.size());
  for (const auto& r : db.records()) {
    out.push_back({r.accuracy, r.latency_ms, r.memory_mb});
  }
  return out;
}

std::vector<std::size_t> HwNasPipeline::front_of(const nas::TrialDatabase& db,
                                                 pareto::DominanceMode mode) {
  return pareto::non_dominated_indices(objectives_of(db), mode);
}

}  // namespace dcnas::core
