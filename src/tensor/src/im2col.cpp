#include "dcnas/tensor/im2col.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "dcnas/common/error.hpp"

namespace dcnas {

std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t padding) {
  DCNAS_CHECK(in > 0 && kernel > 0 && stride > 0 && padding >= 0,
              "invalid conv geometry");
  const std::int64_t out = (in + 2 * padding - kernel) / stride + 1;
  DCNAS_CHECK(out > 0, "convolution output collapses to zero: in=" +
                           std::to_string(in) + " k=" + std::to_string(kernel) +
                           " s=" + std::to_string(stride) +
                           " p=" + std::to_string(padding));
  return out;
}

void im2col(const float* im, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, float* col) {
  const std::int64_t out_h = conv_out_size(height, kernel, stride, padding);
  const std::int64_t out_w = conv_out_size(width, kernel, stride, padding);
  const std::int64_t out_hw = out_h * out_w;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* im_c = im + c * height * width;
    for (std::int64_t kh = 0; kh < kernel; ++kh) {
      for (std::int64_t kw = 0; kw < kernel; ++kw) {
        float* col_row = col + ((c * kernel + kh) * kernel + kw) * out_hw;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride - padding + kh;
          float* col_out = col_row + oh * out_w;
          if (ih < 0 || ih >= height) {
            std::memset(col_out, 0,
                        static_cast<std::size_t>(out_w) * sizeof(float));
            continue;
          }
          const float* im_row = im_c + ih * width;
          if (stride == 1) {
            // iw = ow + (kw - padding) is contiguous: zero-fill the padded
            // prefix/suffix and bulk-copy the in-bounds run.
            const std::int64_t shift = kw - padding;
            const std::int64_t lo =
                std::clamp<std::int64_t>(-shift, 0, out_w);
            const std::int64_t hi =
                std::clamp<std::int64_t>(width - shift, lo, out_w);
            if (lo > 0) {
              std::memset(col_out, 0,
                          static_cast<std::size_t>(lo) * sizeof(float));
            }
            if (hi > lo) {
              std::memcpy(col_out + lo, im_row + lo + shift,
                          static_cast<std::size_t>(hi - lo) * sizeof(float));
            }
            if (out_w > hi) {
              std::memset(col_out + hi, 0,
                          static_cast<std::size_t>(out_w - hi) * sizeof(float));
            }
            continue;
          }
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride - padding + kw;
            col_out[ow] =
                (iw >= 0 && iw < width) ? im_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, float* im) {
  const std::int64_t out_h = conv_out_size(height, kernel, stride, padding);
  const std::int64_t out_w = conv_out_size(width, kernel, stride, padding);
  const std::int64_t out_hw = out_h * out_w;
  for (std::int64_t c = 0; c < channels; ++c) {
    float* im_c = im + c * height * width;
    for (std::int64_t kh = 0; kh < kernel; ++kh) {
      for (std::int64_t kw = 0; kw < kernel; ++kw) {
        const float* col_row = col + ((c * kernel + kh) * kernel + kw) * out_hw;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride - padding + kh;
          if (ih < 0 || ih >= height) continue;
          const float* col_in = col_row + oh * out_w;
          float* im_row = im_c + ih * width;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride - padding + kw;
            if (iw >= 0 && iw < width) im_row[iw] += col_in[ow];
          }
        }
      }
    }
  }
}

}  // namespace dcnas
