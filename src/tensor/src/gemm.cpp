#include "dcnas/tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "dcnas/common/thread_pool.hpp"
#include "dcnas/tensor/im2col.hpp"

namespace dcnas {

namespace {

// BLIS-style blocking. The micro-kernel computes an MR x NR tile of C from an
// MR x KC packed A panel and a KC x NR packed B sliver; KC keeps both resident
// in L1/L2 while the tile accumulates in registers. MC bounds the packed A
// working set per thread. Correctness does not depend on any of these values.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kMc = 128;
static_assert(kMc % kMr == 0, "A blocks must hold whole micro-panels");

inline std::int64_t round_up(std::int64_t x, std::int64_t q) {
  return (x + q - 1) / q * q;
}

/// out(MRxNR, leading dim ldo) += alpha * Ap * Bp.
///
/// Ap is an MR x kc panel stored column-major (ap[p*MR + i]); Bp is a kc x NR
/// sliver stored row-major (bp[p*NR + j]). The accumulators are true locals
/// (not an out-param array) and all pointers are restrict-qualified so the
/// compiler keeps the 4x16 tile in vector registers and fuses the j-loop into
/// FMAs; with -march=native this is one zmm (or two ymm) per row.
void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float alpha,
                  float* __restrict out, std::int64_t ldo) {
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict b = bp + p * kNr;
    const float a0 = ap[p * kMr + 0];
    const float a1 = ap[p * kMr + 1];
    const float a2 = ap[p * kMr + 2];
    const float a3 = ap[p * kMr + 3];
    for (int j = 0; j < kNr; ++j) {
      const float bv = b[j];
      acc0[j] += a0 * bv;
      acc1[j] += a1 * bv;
      acc2[j] += a2 * bv;
      acc3[j] += a3 * bv;
    }
  }
  for (int j = 0; j < kNr; ++j) out[0 * ldo + j] += alpha * acc0[j];
  for (int j = 0; j < kNr; ++j) out[1 * ldo + j] += alpha * acc1[j];
  for (int j = 0; j < kNr; ++j) out[2 * ldo + j] += alpha * acc2[j];
  for (int j = 0; j < kNr; ++j) out[3 * ldo + j] += alpha * acc3[j];
}

// ---- A-panel packing -------------------------------------------------------
// Destination layout: micro-panels of kMr rows, each stored column-major
// (dst[i0*kc + p*kMr + i]); short tails are zero-padded so the micro-kernel
// never branches on the row count. Zero padding is benign for NaN propagation:
// padded lanes only feed padded tile slots, which are never copied to C.

/// A(i, p) = a[i * lda + p] (plain row-major A, used by gemm / gemm_bt).
void pack_a_rowmajor(const float* a, std::int64_t lda, std::int64_t rows,
                     std::int64_t kc, float* dst) {
  for (std::int64_t i0 = 0; i0 < rows; i0 += kMr) {
    float* panel = dst + i0 * kc;
    const std::int64_t mi = std::min(kMr, rows - i0);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t i = 0; i < mi; ++i) {
        panel[p * kMr + i] = a[(i0 + i) * lda + p];
      }
      for (std::int64_t i = mi; i < kMr; ++i) panel[p * kMr + i] = 0.0f;
    }
  }
}

/// A(i, p) = a_t[p * lda + i] (A supplied transposed, used by gemm_at).
void pack_a_transposed(const float* a_t, std::int64_t lda, std::int64_t rows,
                       std::int64_t kc, float* dst) {
  for (std::int64_t i0 = 0; i0 < rows; i0 += kMr) {
    float* panel = dst + i0 * kc;
    const std::int64_t mi = std::min(kMr, rows - i0);
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* src = a_t + p * lda + i0;
      for (std::int64_t i = 0; i < mi; ++i) panel[p * kMr + i] = src[i];
      for (std::int64_t i = mi; i < kMr; ++i) panel[p * kMr + i] = 0.0f;
    }
  }
}

// ---- B-panel packing -------------------------------------------------------
// Destination layout: slivers of kNr columns, each stored row-major
// (dst[j0*kc + p*kNr + j]); short column tails are zero-padded.

/// B(p, j) = b[p * ldb + j] — contiguous rows, sliver interior is a memcpy.
void pack_b_rowmajor(const float* b, std::int64_t ldb, std::int64_t kc,
                     std::int64_t j0, std::int64_t j1, float* dst) {
  for (std::int64_t js = j0; js < j1; js += kNr) {
    float* sliver = dst + js * kc;
    const std::int64_t jn = std::min(kNr, j1 - js);
    if (jn == kNr) {
      for (std::int64_t p = 0; p < kc; ++p) {
        std::memcpy(sliver + p * kNr, b + p * ldb + js,
                    kNr * sizeof(float));
      }
    } else {
      for (std::int64_t p = 0; p < kc; ++p) {
        for (std::int64_t j = 0; j < jn; ++j) {
          sliver[p * kNr + j] = b[p * ldb + js + j];
        }
        for (std::int64_t j = jn; j < kNr; ++j) sliver[p * kNr + j] = 0.0f;
      }
    }
  }
}

/// B(p, j) = b_t[j * ldb + p] (B supplied transposed, used by gemm_bt);
/// each destination column is a contiguous read of b_t.
void pack_b_transposed(const float* b_t, std::int64_t ldb, std::int64_t kc,
                       std::int64_t j0, std::int64_t j1, float* dst) {
  for (std::int64_t js = j0; js < j1; js += kNr) {
    float* sliver = dst + js * kc;
    const std::int64_t jn = std::min(kNr, j1 - js);
    for (std::int64_t j = 0; j < jn; ++j) {
      const float* col = b_t + (js + j) * ldb;
      for (std::int64_t p = 0; p < kc; ++p) sliver[p * kNr + j] = col[p];
    }
    for (std::int64_t j = jn; j < kNr; ++j) {
      for (std::int64_t p = 0; p < kc; ++p) sliver[p * kNr + j] = 0.0f;
    }
  }
}

/// B(p, j) = im2col(image)(p, j) materialized on the fly (fused conv
/// forward): row p of the virtual column matrix selects (channel, kh, kw),
/// column j selects the output pixel (oh, ow). Zero padding is synthesized
/// in place, so the dense CKK x OHW buffer never exists.
void pack_b_im2col(const float* im, const Im2colSpec& spec, std::int64_t pc,
                   std::int64_t kc, std::int64_t j0, std::int64_t j1,
                   float* dst) {
  const std::int64_t h = spec.height, w = spec.width, k = spec.kernel;
  const std::int64_t stride = spec.stride, pad = spec.padding;
  const std::int64_t out_w = spec.out_w();
  for (std::int64_t js = j0; js < j1; js += kNr) {
    float* sliver = dst + js * kc;
    const std::int64_t jn = std::min(kNr, j1 - js);
    for (std::int64_t p = 0; p < kc; ++p) {
      const std::int64_t r = pc + p;
      const std::int64_t c = r / (k * k);
      const std::int64_t kh = (r / k) % k;
      const std::int64_t kw = r % k;
      const float* im_c = im + c * h * w;
      float* row = sliver + p * kNr;
      std::int64_t oh = js / out_w;
      std::int64_t ow = js % out_w;
      for (std::int64_t j = 0; j < jn; ++j) {
        if (ow == out_w) {
          ow = 0;
          ++oh;
        }
        const std::int64_t ih = oh * stride - pad + kh;
        const std::int64_t iw = ow * stride - pad + kw;
        row[j] = (ih >= 0 && ih < h && iw >= 0 && iw < w)
                     ? im_c[ih * w + iw]
                     : 0.0f;
        ++ow;
      }
      for (std::int64_t j = jn; j < kNr; ++j) row[j] = 0.0f;
    }
  }
}

void scale_c(std::int64_t m, std::int64_t n, float beta, float* c) {
  const std::int64_t total = m * n;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(total) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

// Per-thread packing scratch. Workers reuse their buffers across calls;
// nested gemm calls (e.g. inside a parallel conv loop) run inline on the
// caller's thread, so a single pair per thread suffices. The B panel is
// owned by the driver's calling thread (workers only write through its
// pointer), so it is per-thread scratch too — keeping it thread_local
// removes the last per-call heap allocation from the inference hot path.
thread_local std::vector<float> t_pack_a;
thread_local std::vector<float> t_pack_b;

/// Shared driver: packs B once per K-block (parallel over slivers), then
/// sweeps M-blocks in parallel; each worker packs its own A block and runs
/// the register-tiled macro loop. Every C element is produced by exactly one
/// tile chain with a fixed K-block order, so results are bitwise identical
/// regardless of thread count or schedule.
template <typename PackA, typename PackB>
void gemm_driver(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const PackA& pack_a, const PackB& pack_b, float* c) {
  const std::int64_t n_round = round_up(n, kNr);
  if (t_pack_b.size() < static_cast<std::size_t>(kKc * n_round)) {
    t_pack_b.resize(static_cast<std::size_t>(kKc * n_round));
  }
  std::vector<float>& bp = t_pack_b;
  const std::int64_t m_blocks = (m + kMc - 1) / kMc;
  for (std::int64_t pc = 0; pc < k; pc += kKc) {
    const std::int64_t kc = std::min(kKc, k - pc);
    const std::int64_t n_slivers = n_round / kNr;
    parallel_for_chunked(0, n_slivers, [&](std::int64_t lo, std::int64_t hi) {
      pack_b(pc, kc, lo * kNr, std::min(hi * kNr, n), bp.data());
    });
    parallel_for_chunked(0, m_blocks, [&](std::int64_t blo, std::int64_t bhi) {
      if (t_pack_a.size() < static_cast<std::size_t>(kMc * kKc)) {
        t_pack_a.resize(static_cast<std::size_t>(kMc * kKc));
      }
      float* ap = t_pack_a.data();
      float tile[kMr * kNr];
      for (std::int64_t blk = blo; blk < bhi; ++blk) {
        const std::int64_t ic = blk * kMc;
        const std::int64_t mc = std::min(kMc, m - ic);
        pack_a(pc, kc, ic, mc, ap);
        for (std::int64_t i0 = 0; i0 < mc; i0 += kMr) {
          const std::int64_t mi = std::min(kMr, mc - i0);
          for (std::int64_t js = 0; js < n; js += kNr) {
            const std::int64_t jn = std::min(kNr, n - js);
            if (mi == kMr && jn == kNr) {
              micro_kernel(kc, ap + i0 * kc, bp.data() + js * kc, alpha,
                           c + (ic + i0) * n + js, n);
            } else {
              // Edge tile: accumulate into a full-size scratch tile, then
              // add only the live region into C.
              std::memset(tile, 0, sizeof(tile));
              micro_kernel(kc, ap + i0 * kc, bp.data() + js * kc, 1.0f, tile,
                           kNr);
              for (std::int64_t i = 0; i < mi; ++i) {
                float* crow = c + (ic + i0 + i) * n + js;
                for (std::int64_t j = 0; j < jn; ++j) {
                  crow[j] += alpha * tile[i * kNr + j];
                }
              }
            }
          }
        }
      }
    });
  }
}

}  // namespace

std::int64_t Im2colSpec::out_h() const {
  return conv_out_size(height, kernel, stride, padding);
}

std::int64_t Im2colSpec::out_w() const {
  return conv_out_size(width, kernel, stride, padding);
}

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  DCNAS_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm dimensions must be >= 0");
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c);
  if (k == 0 || alpha == 0.0f) return;
  gemm_driver(
      m, n, k, alpha,
      [&](std::int64_t pc, std::int64_t kc, std::int64_t ic, std::int64_t mc,
          float* dst) { pack_a_rowmajor(a + ic * k + pc, k, mc, kc, dst); },
      [&](std::int64_t pc, std::int64_t kc, std::int64_t j0, std::int64_t j1,
          float* dst) { pack_b_rowmajor(b + pc * n, n, kc, j0, j1, dst); },
      c);
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b_t, float beta, float* c) {
  DCNAS_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm_bt dimensions must be >= 0");
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c);
  if (k == 0 || alpha == 0.0f) return;
  gemm_driver(
      m, n, k, alpha,
      [&](std::int64_t pc, std::int64_t kc, std::int64_t ic, std::int64_t mc,
          float* dst) { pack_a_rowmajor(a + ic * k + pc, k, mc, kc, dst); },
      [&](std::int64_t pc, std::int64_t kc, std::int64_t j0, std::int64_t j1,
          float* dst) { pack_b_transposed(b_t + pc, k, kc, j0, j1, dst); },
      c);
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a_t, const float* b, float beta, float* c) {
  DCNAS_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm_at dimensions must be >= 0");
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c);
  if (k == 0 || alpha == 0.0f) return;
  // A^T is K x M row-major: element A(i, p) = a_t[p * m + i].
  gemm_driver(
      m, n, k, alpha,
      [&](std::int64_t pc, std::int64_t kc, std::int64_t ic, std::int64_t mc,
          float* dst) {
        pack_a_transposed(a_t + pc * m + ic, m, mc, kc, dst);
      },
      [&](std::int64_t pc, std::int64_t kc, std::int64_t j0, std::int64_t j1,
          float* dst) { pack_b_rowmajor(b + pc * n, n, kc, j0, j1, dst); },
      c);
}

void gemm_im2col(std::int64_t m, float alpha, const float* a, const float* im,
                 const Im2colSpec& spec, float beta, float* c) {
  DCNAS_CHECK(m >= 0 && spec.channels > 0, "gemm_im2col bad dimensions");
  const std::int64_t k = spec.channels * spec.kernel * spec.kernel;
  const std::int64_t n = spec.out_h() * spec.out_w();
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c);
  if (alpha == 0.0f) return;
  gemm_driver(
      m, n, k, alpha,
      [&](std::int64_t pc, std::int64_t kc, std::int64_t ic, std::int64_t mc,
          float* dst) { pack_a_rowmajor(a + ic * k + pc, k, mc, kc, dst); },
      [&](std::int64_t pc, std::int64_t kc, std::int64_t j0, std::int64_t j1,
          float* dst) { pack_b_im2col(im, spec, pc, kc, j0, j1, dst); },
      c);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  DCNAS_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul requires 2-D tensors");
  DCNAS_CHECK(a.dim(1) == b.dim(0), "matmul inner dimension mismatch: " +
                                        shape_to_string(a.shape()) + " x " +
                                        shape_to_string(b.shape()));
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

}  // namespace dcnas
