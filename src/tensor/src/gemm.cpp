#include "dcnas/tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "dcnas/common/thread_pool.hpp"

namespace dcnas {

namespace {

// Block sizes tuned for typical L1/L2 on commodity cores; correctness does
// not depend on them.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockK = 256;

/// Serial kernel for a row range [m0, m1): C rows += alpha * A rows * B.
void gemm_rows(std::int64_t m0, std::int64_t m1, std::int64_t n,
               std::int64_t k, float alpha, const float* a, const float* b,
               float* c) {
  for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
    const std::int64_t k_end = std::min(kk + kBlockK, k);
    for (std::int64_t i = m0; i < m1; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (std::int64_t p = kk; p < k_end; ++p) {
        const float aip = alpha * a_row[p];
        if (aip == 0.0f) continue;
        const float* b_row = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) {
          c_row[j] += aip * b_row[j];
        }
      }
    }
  }
}

void scale_c(std::int64_t m, std::int64_t n, float beta, float* c) {
  const std::int64_t total = m * n;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(total) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  DCNAS_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm dimensions must be >= 0");
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c);
  if (k == 0 || alpha == 0.0f) return;
  if (m >= 2 * kBlockM) {
    parallel_for_chunked(0, (m + kBlockM - 1) / kBlockM,
                         [&](std::int64_t lo, std::int64_t hi) {
                           const std::int64_t m0 = lo * kBlockM;
                           const std::int64_t m1 = std::min(hi * kBlockM, m);
                           gemm_rows(m0, m1, n, k, alpha, a, b, c);
                         });
  } else {
    gemm_rows(0, m, n, k, alpha, a, b, c);
  }
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b_t, float beta, float* c) {
  DCNAS_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm_bt dimensions must be >= 0");
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c);
  if (k == 0 || alpha == 0.0f) return;
  parallel_for_chunked(0, m, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* b_row = b_t + j * k;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        c_row[j] += alpha * acc;
      }
    }
  });
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a_t, const float* b, float beta, float* c) {
  DCNAS_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm_at dimensions must be >= 0");
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c);
  if (k == 0 || alpha == 0.0f) return;
  // A^T is K x M row-major: element A(i, p) = a_t[p * m + i].
  for (std::int64_t p = 0; p < k; ++p) {
    const float* at_row = a_t + p * m;
    const float* b_row = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aip = alpha * at_row[i];
      if (aip == 0.0f) continue;
      float* c_row = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += aip * b_row[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  DCNAS_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul requires 2-D tensors");
  DCNAS_CHECK(a.dim(1) == b.dim(0), "matmul inner dimension mismatch: " +
                                        shape_to_string(a.shape()) + " x " +
                                        shape_to_string(b.shape()));
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.dim(0), b.dim(1), a.dim(1), 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

}  // namespace dcnas
